"""Exception hierarchy for the :mod:`repro` RDF analytics library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses are
grouped by subsystem (RDF model, parsing, BGP queries, analytics, OLAP).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """The library was configured inconsistently with the environment.

    Raised, for instance, when ``REPRO_ENGINE=columnar`` (or an explicit
    ``engine="columnar"``) demands the vectorized execution engine but numpy
    is not installed — instead of silently degrading to the row engine, the
    error names the ``[fast]`` extra that provides it.
    """


# ---------------------------------------------------------------------------
# RDF model / store
# ---------------------------------------------------------------------------


class RDFError(ReproError):
    """Base class for errors related to the RDF data model or triple store."""


class InvalidTermError(RDFError):
    """A malformed RDF term was constructed (bad IRI, bad literal, ...)."""


class InvalidTripleError(RDFError):
    """A triple violates RDF positional constraints.

    For instance a literal in subject position, or a literal / blank node in
    predicate position.
    """


class DictionaryError(RDFError):
    """A term-dictionary lookup failed (unknown identifier or term)."""


class ParseError(RDFError):
    """Raised by the N-Triples / Turtle parsers on malformed input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")


class SerializationError(RDFError):
    """Raised when a graph cannot be serialized in the requested syntax."""


# ---------------------------------------------------------------------------
# On-disk columnar snapshots
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for errors of the on-disk snapshot subsystem."""


class SnapshotFormatError(StorageError):
    """A snapshot file is malformed: bad magic, truncated header or payload,
    unreadable table of contents, or sections that do not fit the file."""


class SnapshotVersionError(StorageError):
    """A snapshot was written with an incompatible format version."""


class ReadOnlyGraphError(StorageError):
    """A mutation was attempted on a memory-mapped (read-only) snapshot graph.

    Snapshot-backed graphs are immutable by construction: their fact columns
    and term dictionary are mmap views into the snapshot file.  Load with
    ``mmap=False`` (or :meth:`~repro.rdf.graph.Graph.copy` the mapped graph)
    to obtain a mutable heap instance.
    """


# ---------------------------------------------------------------------------
# Relational algebra
# ---------------------------------------------------------------------------


class AlgebraError(ReproError):
    """Base class for bag-relational-algebra errors."""


class SchemaMismatchError(AlgebraError):
    """Two relations have incompatible schemas for the attempted operation."""


class UnknownColumnError(AlgebraError):
    """A referenced column does not exist in the relation's schema."""


class AggregationError(AlgebraError):
    """An aggregation function was misused (empty input, bad type, unknown name)."""


# ---------------------------------------------------------------------------
# BGP queries
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for BGP / conjunctive query errors."""


class QueryParseError(QueryError):
    """The textual query syntax could not be parsed."""


class QueryNotRootedError(QueryError):
    """A query required to be rooted (every variable reachable from the root)
    is not rooted."""


class HomomorphismError(QueryError):
    """A query is not homomorphic to the analytical schema it targets."""


class EvaluationError(QueryError):
    """A query could not be evaluated over the given graph."""


# ---------------------------------------------------------------------------
# Analytics (AnS / AnQ)
# ---------------------------------------------------------------------------


class AnalyticsError(ReproError):
    """Base class for analytical-schema / analytical-query errors."""


class SchemaDefinitionError(AnalyticsError):
    """An analytical schema is ill-formed (duplicate node, dangling edge, ...)."""


class QueryDefinitionError(AnalyticsError):
    """An analytical query is ill-formed.

    Examples: classifier and measure rooted in different variables, unknown
    aggregation function, dimension variables missing from the classifier head.
    """


class SigmaError(AnalyticsError):
    """The Σ dimension-restriction function of an extended AnQ is invalid."""


# ---------------------------------------------------------------------------
# OLAP operations and rewriting
# ---------------------------------------------------------------------------


class OLAPError(ReproError):
    """Base class for OLAP-operation errors."""


class InvalidOperationError(OLAPError):
    """An OLAP operation is not applicable to the given query.

    For instance slicing a dimension that is not in the classifier head, or
    drilling in along a variable that is not a non-distinguished variable of
    the classifier body.
    """


class RewritingError(OLAPError):
    """The rewriting engine could not produce an equivalent rewriting."""


class MaterializationError(OLAPError):
    """A required materialized input (``ans(Q)`` or ``pres(Q)``) is missing."""


# ---------------------------------------------------------------------------
# Concurrent serving layer
# ---------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for errors of the concurrent serving layer."""


class AdmissionError(ServingError):
    """Base class for *typed* admission rejections.

    The service rejects rather than queues unboundedly; every rejection
    subclass carries enough context for the client to decide whether to
    back off and retry.  Rejections are counted per type in
    :class:`~repro.serving.service.ServiceStats`.
    """


class QueueFullError(AdmissionError):
    """The service-wide admission queue is at its depth bound."""

    def __init__(self, depth: int, bound: int):
        self.depth = depth
        self.bound = bound
        super().__init__(
            f"admission queue is full ({depth} waiting, bound {bound}); retry later"
        )


class TenantBusyError(AdmissionError):
    """One tenant is at its per-tenant concurrency cap."""

    def __init__(self, tenant: str, inflight: int, limit: int):
        self.tenant = tenant
        self.inflight = inflight
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r} is at its concurrency cap "
            f"({inflight} in flight, limit {limit}); retry later"
        )


class ServiceClosedError(AdmissionError):
    """The service is shut down (or shutting down) and admits no queries."""

    def __init__(self, message: str = "the serving layer is closed"):
        super().__init__(message)


# ---------------------------------------------------------------------------
# Streaming ingestion
# ---------------------------------------------------------------------------


class IngestError(ReproError):
    """Base class for errors of the streaming-ingestion layer."""


class IngestBackpressureError(IngestError):
    """The ingest buffer is at capacity and the caller chose not to block.

    Raised by the synchronous submit paths (and by the asynchronous ones
    under ``backpressure="error"``) when accepting the mutation would grow
    the pending buffer past its bound.  Carries the observed depth and the
    bound so callers can implement typed back-off.
    """

    def __init__(self, pending: int, capacity: int):
        self.pending = pending
        self.capacity = capacity
        super().__init__(
            f"ingest buffer is full ({pending} pending mutations, capacity "
            f"{capacity}); flush or retry later"
        )


class IngestClosedError(IngestError):
    """The ingestor is closed and accepts no further mutations."""

    def __init__(self, message: str = "the stream ingestor is closed"):
        super().__init__(message)


class IngestPumpError(IngestError):
    """The ingestor's background pump task died on a flush failure.

    Raised by the submit paths after the pump swallows a non-cancellation
    exception: the cadence is no longer enforced, so accepting more input
    would only grow an unflushed buffer.  The failed batch's mutations were
    re-queued (nothing is lost); callers can still ``adrain()``/``flush``
    manually, and :meth:`~repro.ingest.stream.StreamIngestor.start_pump`
    clears the error and resumes.  The original failure is both chained
    (``__cause__``) and kept in :attr:`cause`.
    """

    def __init__(self, cause: BaseException):
        self.cause = cause
        super().__init__(
            f"the background pump task failed ({cause!r}); pending mutations "
            f"were re-queued — drain manually or call start_pump() to resume"
        )
