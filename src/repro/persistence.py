"""Persistence of materialized query results (``ans(Q)`` and ``pres(Q)``).

The whole point of the paper's approach is to *reuse* materialized results;
in a real deployment those results outlive the process that computed them.
This module stores relations, cube answers, partial results and whole
:class:`~repro.analytics.answer.MaterializedQueryResults` bundles on disk and
loads them back, so an :class:`~repro.olap.session.OLAPSession` can be
re-hydrated without touching the AnS instance.

Format
------
A *result directory* contains:

* ``manifest.json`` — the query name, column roles (fact / dimensions / key /
  measure), aggregate name and which parts are present;
* ``answer.tsv`` / ``partial.tsv`` — one relation each, tab-separated, one
  header line with the column names, one line per row.

Cell encoding: RDF terms are written in their N-Triples form (``<iri>``,
``"literal"^^<datatype>``, ``_:label``); Python ints/floats/bools are written
as JSON scalars; ``None`` as an empty field.  This keeps files human-readable
and diff-able while round-tripping exactly.

The AnS **instance** itself persists through the binary columnar snapshot
format of :mod:`repro.storage` (:func:`save_graph_snapshot` /
:func:`load_graph_snapshot` below re-export it), so a session can be fully
re-hydrated — instance by mmap, materialized results from a result
directory — without re-parsing any source syntax.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import MaterializationError, ParseError
from repro.algebra.relation import Relation
from repro.analytics.answer import CubeAnswer, MaterializedQueryResults, PartialResult
from repro.rdf.ntriples import _parse_term  # reuse the strict N-Triples term grammar
from repro.rdf.terms import Term

__all__ = [
    "save_relation",
    "load_relation",
    "save_materialized_results",
    "load_materialized_results",
    "save_cache_entry",
    "load_cache_entry",
    "save_graph_snapshot",
    "load_graph_snapshot",
]


def save_graph_snapshot(graph, path: str) -> None:
    """Persist an AnS instance as an on-disk columnar snapshot.

    Convenience re-export of :func:`repro.storage.save_snapshot`, so the
    persistence module covers both halves of a session: materialized
    results (TSV directories, above) and the instance itself.
    """
    from repro.storage.snapshot import save_snapshot

    save_snapshot(graph, path)


def load_graph_snapshot(path: str, mmap: bool = True):
    """Load an AnS instance snapshot (mmap-backed by default).

    Convenience re-export of :func:`repro.storage.load_snapshot`.
    """
    from repro.storage.snapshot import load_snapshot

    return load_snapshot(path, mmap=mmap)

_MANIFEST_NAME = "manifest.json"
_ANSWER_NAME = "answer.tsv"
_PARTIAL_NAME = "partial.tsv"


# ---------------------------------------------------------------------------
# cell encoding
# ---------------------------------------------------------------------------


def _encode_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, Term):
        return value.n3()
    if isinstance(value, bool):
        return "json:true" if value else "json:false"
    if isinstance(value, (int, float)):
        return f"json:{json.dumps(value)}"
    if isinstance(value, str):
        return "str:" + value
    raise MaterializationError(
        f"cannot persist value {value!r} of type {type(value).__name__}"
    )


def _decode_cell(text: str) -> object:
    if text == "":
        return None
    if text.startswith("json:"):
        return json.loads(text[len("json:") :])
    if text.startswith("str:"):
        return text[len("str:") :]
    term, _ = _parse_term(text, 0, 0)
    return term


# ---------------------------------------------------------------------------
# relations
# ---------------------------------------------------------------------------


def save_relation(relation: Relation, path: str) -> None:
    """Write a relation to a TSV file (header line + one line per row)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\t".join(relation.columns) + "\n")
        for row in relation:
            handle.write("\t".join(_encode_cell(value) for value in row) + "\n")


def load_relation(path: str) -> Relation:
    """Read a relation previously written by :func:`save_relation`."""
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if not header:
            raise MaterializationError(f"{path} is empty; expected a TSV header line")
        columns = header.split("\t")
        rows: List[tuple] = []
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line and line_number == 2 and not rows:
                continue
            cells = line.split("\t")
            if len(cells) != len(columns):
                raise MaterializationError(
                    f"{path}:{line_number}: expected {len(columns)} cells, found {len(cells)}"
                )
            try:
                rows.append(tuple(_decode_cell(cell) for cell in cells))
            except ParseError as exc:
                raise MaterializationError(f"{path}:{line_number}: {exc}") from exc
    return Relation(columns, rows)


# ---------------------------------------------------------------------------
# materialized query results
# ---------------------------------------------------------------------------


def save_materialized_results(
    materialized: MaterializedQueryResults,
    directory: str,
    extra_manifest: Optional[Dict[str, object]] = None,
) -> None:
    """Persist a query's materialized results into ``directory`` (created if needed).

    ``extra_manifest`` entries are merged into ``manifest.json`` — the result
    cache uses this to stamp entries with their canonical query key and the
    size of the instance they were computed against.
    """
    os.makedirs(directory, exist_ok=True)
    query = materialized.query
    manifest: Dict[str, object] = {
        "query_name": query.name,
        "aggregate": query.aggregate.name,
        "fact_column": query.fact_variable.name,
        "dimension_columns": list(query.dimension_names),
        "measure_column": query.measure_variable.name,
        "has_answer": materialized.has_answer(),
        "has_partial": materialized.has_partial(),
    }
    if materialized.has_answer():
        save_relation(materialized.answer.relation, os.path.join(directory, _ANSWER_NAME))
    if materialized.has_partial():
        partial = materialized.partial
        manifest["partial_key_column"] = partial.key_column
        manifest["partial_dimension_columns"] = list(partial.dimension_columns)
        save_relation(partial.relation, os.path.join(directory, _PARTIAL_NAME))
    if extra_manifest:
        manifest.update(extra_manifest)
    with open(os.path.join(directory, _MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_materialized_results(directory: str, query, check_name: bool = True) -> MaterializedQueryResults:
    """Load materialized results saved by :func:`save_materialized_results`.

    ``query`` is the :class:`~repro.analytics.query.AnalyticalQuery` the
    results belong to; the manifest is checked against it (name, aggregate
    and column roles) so stale directories are rejected rather than silently
    producing wrong cubes.  ``check_name=False`` skips the display-name
    check — used by the result cache, whose canonical keys already prove
    semantic equality while session-assigned names may differ.
    """
    manifest_path = os.path.join(directory, _MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise MaterializationError(f"no manifest found in {directory!r}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)

    expected = {
        "aggregate": query.aggregate.name,
        "fact_column": query.fact_variable.name,
        "dimension_columns": list(query.dimension_names),
        "measure_column": query.measure_variable.name,
    }
    if check_name:
        expected["query_name"] = query.name
    for key, value in expected.items():
        if manifest.get(key) != value:
            raise MaterializationError(
                f"materialized results in {directory!r} were saved for "
                f"{key}={manifest.get(key)!r}, but the query has {key}={value!r}"
            )

    answer: Optional[CubeAnswer] = None
    partial: Optional[PartialResult] = None
    if manifest.get("has_answer"):
        relation = load_relation(os.path.join(directory, _ANSWER_NAME))
        answer = CubeAnswer(relation, tuple(manifest["dimension_columns"]), manifest["measure_column"])
    if manifest.get("has_partial"):
        relation = load_relation(os.path.join(directory, _PARTIAL_NAME))
        partial = PartialResult(
            relation,
            fact_column=manifest["fact_column"],
            dimension_columns=tuple(manifest["partial_dimension_columns"]),
            key_column=manifest["partial_key_column"],
            measure_column=manifest["measure_column"],
        )
    return MaterializedQueryResults(query, answer=answer, partial=partial)


# ---------------------------------------------------------------------------
# result-cache entries (warm start across sessions)
# ---------------------------------------------------------------------------


def save_cache_entry(
    materialized: MaterializedQueryResults,
    directory: str,
    canonical_key: str,
    instance_triples: int,
    instance_fingerprint: str,
) -> None:
    """Persist one result-cache entry (see :mod:`repro.olap.cache`).

    On top of the plain materialized results the manifest records the
    canonical query key the cache indexed the entry under, the size of the
    AnS instance the results were computed against, and the instance's
    content fingerprint (:func:`repro.olap.cache.graph_fingerprint`), so a
    later session can validate the entry before trusting it.
    """
    save_materialized_results(
        materialized,
        directory,
        extra_manifest={
            "canonical_key": canonical_key,
            "instance_triples": int(instance_triples),
            "instance_fingerprint": instance_fingerprint,
        },
    )


def load_cache_entry(
    directory: str,
    query,
    canonical_key: str,
    instance_triples: int,
    instance_fingerprint: str,
) -> Optional[MaterializedQueryResults]:
    """Load a persisted cache entry, or None when absent or stale.

    The entry must carry the expected canonical key and have been computed
    against an instance with the same triple count *and* the same content
    fingerprint — a graph whose mutations cancel out in size (one triple
    removed, another added) is still detected as different content.  A
    corrupt directory (unreadable manifest / relations) raises
    :class:`~repro.errors.MaterializationError` as usual.
    """
    manifest_path = os.path.join(directory, _MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        return None
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("canonical_key") != canonical_key:
        return None
    if manifest.get("instance_triples") != int(instance_triples):
        return None
    if manifest.get("instance_fingerprint") != instance_fingerprint:
        return None
    return load_materialized_results(directory, query, check_name=False)
