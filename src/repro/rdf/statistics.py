"""Graph statistics used for cardinality estimation.

The BGP evaluator orders joins greedily by estimated output cardinality.
These estimates come from :class:`GraphStatistics`, which summarizes a graph
with the classical lightweight statistics of RDF engines:

* total triple count;
* per-predicate triple counts;
* per-predicate distinct subject / object counts;
* counts of ``rdf:type`` instances per class.

Statistics are stamped with the graph's change counter
(:attr:`~repro.rdf.graph.Graph.version`) and re-derive themselves on the
next read after a mutation — exactly like the result caches — so a
cardinality estimate can never be served against a graph that has since
changed.  :meth:`GraphStatistics.refresh` remains available to force a
recount eagerly (e.g. to move the cost out of a timed region).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF
from repro.rdf.terms import IRI, Term, Variable
from repro.rdf.triples import TriplePattern

__all__ = ["GraphStatistics"]

_TYPE = RDF.term("type")


class GraphStatistics:
    """Summary statistics of a :class:`~repro.rdf.graph.Graph`."""

    def __init__(self, graph: Graph):
        self._graph = graph
        self._version: Optional[int] = None
        self.triple_count = 0
        self.predicate_counts: Dict[Term, int] = {}
        self.predicate_distinct_subjects: Dict[Term, int] = {}
        self.predicate_distinct_objects: Dict[Term, int] = {}
        self.class_counts: Dict[Term, int] = {}
        self.refresh()

    def _sync(self) -> None:
        """Re-derive the statistics when the graph has mutated since.

        Every estimation entry point calls this first: the stored version
        stamp is compared against the graph's change counter (an int
        compare — free on the hot path) and a mismatch triggers a
        :meth:`refresh`.  This is what lets planner cost estimates stay
        honest across interleaved reads and writes without anyone
        remembering to refresh manually.
        """
        if getattr(self._graph, "version", None) != self._version:
            self.refresh()

    def refresh(self) -> None:
        """Recompute all statistics from the current graph contents.

        Graphs that carry a precomputed summary (memory-mapped snapshots,
        whose headers store the per-predicate and per-class counts) are
        served from it directly — no instance scan, no term decoding — so
        building statistics on a mapped graph is O(#predicates + #classes),
        not O(#triples).
        """
        self._version = getattr(self._graph, "version", None)
        summary = self._graph.statistics_summary()
        if summary is not None:
            self.triple_count = summary["triple_count"]
            self.predicate_counts = dict(summary["predicate_counts"])
            self.predicate_distinct_subjects = dict(
                summary["predicate_distinct_subjects"]
            )
            self.predicate_distinct_objects = dict(
                summary["predicate_distinct_objects"]
            )
            self.class_counts = dict(summary["class_counts"])
            return
        graph = self._graph
        self.triple_count = len(graph)
        predicate_counts: Dict[Term, int] = {}
        distinct_subjects: Dict[Term, set] = {}
        distinct_objects: Dict[Term, set] = {}
        class_counts: Dict[Term, int] = {}

        for triple in graph:
            predicate = triple.predicate
            predicate_counts[predicate] = predicate_counts.get(predicate, 0) + 1
            distinct_subjects.setdefault(predicate, set()).add(triple.subject)
            distinct_objects.setdefault(predicate, set()).add(triple.object)
            if predicate == _TYPE:
                class_counts[triple.object] = class_counts.get(triple.object, 0) + 1

        self.predicate_counts = predicate_counts
        self.predicate_distinct_subjects = {
            predicate: len(values) for predicate, values in distinct_subjects.items()
        }
        self.predicate_distinct_objects = {
            predicate: len(values) for predicate, values in distinct_objects.items()
        }
        self.class_counts = class_counts

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def predicate_cardinality(self, predicate: Term) -> int:
        """Number of triples with the given predicate (0 when unknown)."""
        self._sync()
        return self.predicate_counts.get(predicate, 0)

    def class_cardinality(self, klass: Term) -> int:
        """Number of ``rdf:type`` triples with the given class as object."""
        self._sync()
        return self.class_counts.get(klass, 0)

    def estimate_pattern(self, pattern: TriplePattern) -> float:
        """Estimate the number of triples matching ``pattern``.

        Uses exact counts when the pattern's constants allow an index-backed
        count (the common case for classifier/measure triples); otherwise
        applies independence assumptions over per-predicate statistics.
        """
        self._sync()
        subject, predicate, object_ = pattern.as_tuple()
        subject_is_var = isinstance(subject, Variable)
        predicate_is_var = isinstance(predicate, Variable)
        object_is_var = isinstance(object_, Variable)

        if not predicate_is_var:
            total = self.predicate_counts.get(predicate, 0)
            if total == 0:
                return 0.0
            if subject_is_var and object_is_var:
                return float(total)
            if not subject_is_var and not object_is_var:
                return self._exact_count(pattern)
            if not object_is_var:
                # (?, p, o): on average total / distinct objects.
                distinct = max(self.predicate_distinct_objects.get(predicate, 1), 1)
                if predicate == _TYPE and object_ in self.class_counts:
                    return float(self.class_counts[object_])
                return max(total / distinct, 1.0)
            # (s, p, ?): on average total / distinct subjects.
            distinct = max(self.predicate_distinct_subjects.get(predicate, 1), 1)
            return max(total / distinct, 1.0)

        # Variable predicate: rare in analytical queries.  Fall back to a
        # fraction of the graph proportional to how many positions are bound.
        bound_positions = sum(1 for is_var in (subject_is_var, object_is_var) if not is_var)
        if bound_positions == 0:
            return float(self.triple_count)
        return self._exact_count(pattern)

    def estimate_bgp_cardinality(self, query) -> float:
        """Estimate the answer cardinality of a BGP query.

        Classical lightweight model: start from the most selective pattern
        and treat each further pattern as a filter whose selectivity is its
        own match fraction of the graph (independence assumption).  Rooted
        star-shaped classifier/measure queries — the shape every analytical
        query in this repo uses — are joined on a shared variable, so each
        extra pattern can only keep or shrink the running cardinality, which
        this model reflects.
        """
        self._sync()
        estimates = sorted(self.estimate_pattern(pattern) for pattern in query.body)
        if not estimates:
            return 0.0
        if estimates[0] == 0.0:
            return 0.0
        cardinality = estimates[0]
        total = max(float(self.triple_count), 1.0)
        for estimate in estimates[1:]:
            cardinality *= min(estimate / total, 1.0)
        return max(cardinality, 1.0)

    def estimate_evaluation_cost(self, query) -> float:
        """Estimate the work (rows touched) of evaluating a BGP query.

        The evaluator scans each pattern's index entries and builds join
        results, so the cost is modelled as the sum of per-pattern match
        estimates plus the estimated output cardinality.  The unit is
        "rows", directly comparable with the reuse costs of
        :mod:`repro.olap.planner` (which count rows of materialized inputs).
        """
        self._sync()
        scan_cost = sum(self.estimate_pattern(pattern) for pattern in query.body)
        return scan_cost + self.estimate_bgp_cardinality(query)

    def _exact_count(self, pattern: TriplePattern) -> float:
        graph = self._graph
        ids = []
        for term in pattern.as_tuple():
            if isinstance(term, Variable):
                ids.append(None)
            else:
                term_id = graph.encode_term(term)
                ids.append(-1 if term_id is None else term_id)
        return float(graph.count_ids(ids[0], ids[1], ids[2]))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GraphStatistics({self.triple_count} triples, "
            f"{len(self.predicate_counts)} predicates, {len(self.class_counts)} classes)"
        )
