"""Namespace helpers and well-known vocabularies (RDF, RDFS, XSD).

A :class:`Namespace` builds :class:`~repro.rdf.terms.IRI` terms by attribute
or item access::

    EX = Namespace("http://example.org/")
    EX.Blogger            # IRI("http://example.org/Blogger")
    EX["hasAge"]          # IRI("http://example.org/hasAge")

A :class:`PrefixMap` maintains prefix -> namespace bindings for parsing and
serializing prefixed names (``ex:Blogger``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import InvalidTermError
from repro.rdf.terms import IRI

__all__ = ["Namespace", "PrefixMap", "RDF", "RDFS", "XSD", "EX", "ANS"]


class Namespace:
    """A factory of IRIs sharing a common prefix string."""

    def __init__(self, base: str):
        if not base:
            raise InvalidTermError("namespace base must be a non-empty string")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        """Return the IRI obtained by appending ``local`` to the base."""
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def local_part(self, iri: IRI) -> str:
        """Return the part of ``iri`` after the namespace base.

        Raises :class:`InvalidTermError` when the IRI is not in this namespace.
        """
        if iri not in self:
            raise InvalidTermError(f"{iri.n3()} is not in namespace {self._base}")
        return iri.value[len(self._base) :]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: Default namespace used by the examples and synthetic data generators.
EX = Namespace("http://example.org/")

#: Namespace in which analytical-schema classes and properties live.
ANS = Namespace("http://example.org/ans/")


class PrefixMap:
    """Mutable mapping of prefixes to namespaces, with CURIE expansion.

    The default construction binds ``rdf``, ``rdfs`` and ``xsd``.
    """

    def __init__(self, bind_defaults: bool = True):
        self._prefixes: Dict[str, Namespace] = {}
        if bind_defaults:
            self.bind("rdf", RDF)
            self.bind("rdfs", RDFS)
            self.bind("xsd", XSD)

    def bind(self, prefix: str, namespace: Namespace | str) -> None:
        """Bind ``prefix`` to ``namespace`` (replacing any previous binding)."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        self._prefixes[prefix] = namespace

    def namespace(self, prefix: str) -> Namespace:
        if prefix not in self._prefixes:
            raise InvalidTermError(f"unknown prefix: {prefix!r}")
        return self._prefixes[prefix]

    def expand(self, curie: str) -> IRI:
        """Expand a ``prefix:local`` compact IRI into a full IRI."""
        if ":" not in curie:
            raise InvalidTermError(f"not a prefixed name: {curie!r}")
        prefix, _, local = curie.partition(":")
        return self.namespace(prefix).term(local)

    def shrink(self, iri: IRI) -> str | None:
        """Return the shortest prefixed form of ``iri``, or None if unbound.

        The longest matching namespace wins so that e.g. a sub-namespace
        binding takes precedence over its parent.
        """
        best: Tuple[int, str] | None = None
        for prefix, namespace in self._prefixes.items():
            if iri in namespace:
                length = len(namespace.base)
                if best is None or length > best[0]:
                    best = (length, f"{prefix}:{namespace.local_part(iri)}")
        return best[1] if best else None

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefixes

    def __iter__(self) -> Iterator[Tuple[str, Namespace]]:
        return iter(self._prefixes.items())

    def __len__(self) -> int:
        return len(self._prefixes)

    def copy(self) -> "PrefixMap":
        clone = PrefixMap(bind_defaults=False)
        for prefix, namespace in self._prefixes.items():
            clone.bind(prefix, namespace)
        return clone
