"""In-memory RDF graph (triple store) with dictionary encoding and indexes.

The store keeps every triple as a tuple of integer term identifiers and
maintains three permutation indexes (SPO, POS, OSP), so that any triple
pattern with at least one constant can be answered by index lookup rather
than a scan.  This is the classical design of in-memory RDF engines and is
sufficient for the workloads of the paper's evaluation (hundreds of
thousands of triples).

Two access levels are offered:

* a **term-level API** (:meth:`Graph.add`, :meth:`Graph.triples`,
  :meth:`Graph.subjects`, ...) convenient for data loading and tests;
* an **id-level API** (:meth:`Graph.match_ids`, :meth:`Graph.encode_term`,
  ...) used by the BGP evaluator's hot loops to avoid re-encoding terms.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import InvalidTripleError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.namespaces import RDF
from repro.rdf.terms import IRI, BlankNode, Literal, Term, TermOrVariable, Variable
from repro.rdf.triples import Triple, TriplePattern

__all__ = ["Graph", "GraphDelta", "GraphShard", "DEFAULT_CHANGE_LOG_LIMIT"]

#: Encoded triple: (subject id, predicate id, object id).
EncodedTriple = Tuple[int, int, int]

_RDF_TYPE = RDF.term("type")

#: Default bound on the number of retained change-log records.
DEFAULT_CHANGE_LOG_LIMIT = 4096


class GraphDelta:
    """The coalesced triple-level difference between two graph versions.

    ``added`` holds the encoded triples present at ``to_version`` but not at
    ``from_version``; ``removed`` the converse.  A triple added *and*
    removed inside the window coalesces away entirely — consumers only ever
    see the net effect, which is what incremental view maintenance needs.
    """

    __slots__ = ("added", "removed", "from_version", "to_version")

    def __init__(
        self,
        added: Tuple[EncodedTriple, ...],
        removed: Tuple[EncodedTriple, ...],
        from_version: int,
        to_version: int,
    ):
        self.added = added
        self.removed = removed
        self.from_version = from_version
        self.to_version = to_version

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GraphDelta(+{len(self.added)}/-{len(self.removed)}, "
            f"v{self.from_version}->v{self.to_version})"
        )


class GraphShard:
    """One fact-id-range shard of a partitioned graph (see :meth:`Graph.partition`).

    A shard does not copy triples: it is a half-open id interval
    ``[lo, hi)`` over the shared term dictionary's id space.  Evaluating a
    rooted query "on a shard" means evaluating it on the *whole* graph with
    the fact variable restricted to ids in the interval — every fact then
    belongs to exactly one shard, so per-shard ``pres(Q)`` relations are
    disjoint and per-shard γ states merge into the exact serial answer.
    The last shard of a partition is open-ended (``hi is None``), so ids
    assigned after partitioning still map to a shard.

    Shard specs are tiny, immutable and picklable by design: they are what
    the parallel executor ships to worker processes.
    """

    __slots__ = ("index", "count", "lo", "hi")

    def __init__(self, index: int, count: int, lo: int, hi: Optional[int]):
        self.index = index
        self.count = count
        self.lo = lo
        self.hi = hi

    def contains(self, term_id: int) -> bool:
        """True when ``term_id`` falls in this shard's id range."""
        if term_id < self.lo:
            return False
        return self.hi is None or term_id < self.hi

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphShard):
            return NotImplemented
        return (self.index, self.count, self.lo, self.hi) == (
            other.index,
            other.count,
            other.lo,
            other.hi,
        )

    def __hash__(self) -> int:
        return hash((self.index, self.count, self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover
        upper = "∞" if self.hi is None else self.hi
        return f"GraphShard({self.index + 1}/{self.count}, ids [{self.lo}, {upper}))"


class Graph:
    """A mutable set of RDF triples with pattern-matching access paths.

    Parameters
    ----------
    triples:
        Optional iterable of :class:`Triple` (or ``(s, p, o)`` term tuples)
        to load at construction time.
    name:
        Optional human-readable name, used in ``repr`` and benchmark reports.
    change_log_limit:
        Bound on the ring-buffer change log powering :meth:`deltas_since`
        (default 4096 records).  Overflow evicts the oldest record, so the
        log always answers for the most recent ``change_log_limit``
        mutations; only versions older than that window degrade to the
        full-invalidation answer (``deltas_since`` returns None).

    Examples
    --------
    >>> from repro.rdf.terms import IRI, Literal
    >>> from repro.rdf.triples import Triple
    >>> graph = Graph()
    >>> graph.add(Triple(IRI("http://example.org/alice"),
    ...                  IRI("http://example.org/age"), Literal(30)))
    True
    >>> len(graph)
    1

    Every effective mutation bumps :attr:`version` and is recorded in the
    change log, the basis of incremental cube maintenance:

    >>> seen = graph.version
    >>> _ = graph.add(Triple(IRI("http://example.org/bob"),
    ...               IRI("http://example.org/age"), Literal(28)))
    >>> delta = graph.deltas_since(seen)
    >>> (len(delta.added), len(delta.removed))
    (1, 0)
    """

    def __init__(
        self,
        triples: Optional[Iterable] = None,
        name: str | None = None,
        change_log_limit: int = DEFAULT_CHANGE_LOG_LIMIT,
    ):
        if change_log_limit < 0:
            raise ValueError(f"change_log_limit must be >= 0, got {change_log_limit}")
        self.name = name
        self._dictionary = TermDictionary()
        self._triples: Set[EncodedTriple] = set()
        # Permutation indexes. Each maps first-component id to a dict of
        # second-component id to a set of third-component ids.
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        self._version = 0
        # Bounded ring buffer of effective mutations: (version after the
        # mutation, +1 / -1, encoded triple).  Overflow evicts the *oldest*
        # record and advances ``_log_base`` — the oldest version the log can
        # still reconstruct deltas from; anything older degrades to the
        # full-invalidation answer (deltas_since -> None).
        self._change_log_limit = change_log_limit
        self._change_log: Deque[Tuple[int, int, EncodedTriple]] = deque()
        self._log_base = 0
        # Single-slot memo for deltas_since: refresh waves ask for the same
        # window once per cached entry.  Keyed by (asked-for version,
        # current version), so any mutation naturally invalidates it.
        self._delta_memo: Optional[Tuple[int, int, GraphDelta]] = None
        if triples is not None:
            for triple in triples:
                self.add(triple)

    @property
    def version(self) -> int:
        """Monotonic change counter: bumped by every effective mutation.

        Results computed against a graph snapshot (materialized ``pres(Q)``
        / ``ans(Q)`` cache entries, statistics) are stamped with the version
        they were built at; a stamp mismatch means the graph has been
        mutated since and the derived result can no longer be trusted.
        """
        return self._version

    # ------------------------------------------------------------------
    # dictionary access
    # ------------------------------------------------------------------

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary backing this graph."""
        return self._dictionary

    def encode_term(self, term: Term) -> Optional[int]:
        """Return the id of ``term`` in this graph, or None when unseen."""
        return self._dictionary.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        """Return the term for an id previously produced by this graph."""
        return self._dictionary.decode(term_id)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, triple) -> bool:
        """Add a triple; return True when it was not already present.

        ``triple`` may be a :class:`Triple` or a plain ``(s, p, o)`` tuple of
        terms (converted, with positional validation).
        """
        if not isinstance(triple, Triple):
            try:
                subject, predicate, object_ = triple
            except (TypeError, ValueError) as exc:
                raise InvalidTripleError(f"cannot interpret {triple!r} as a triple") from exc
            triple = Triple(subject, predicate, object_)
        encode = self._dictionary.encode
        encoded = (encode(triple.subject), encode(triple.predicate), encode(triple.object))
        if encoded in self._triples:
            return False
        self._triples.add(encoded)
        self._index_add(encoded)
        self._version += 1
        self._log_change(1, encoded)
        return True

    def add_all(self, triples: Iterable) -> int:
        """Add every triple from ``triples``; return the number actually added."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, triple) -> bool:
        """Remove a triple; return True when it was present."""
        if not isinstance(triple, Triple):
            subject, predicate, object_ = triple
            triple = Triple(subject, predicate, object_)
        lookup = self._dictionary.lookup
        ids = (lookup(triple.subject), lookup(triple.predicate), lookup(triple.object))
        if None in ids:
            return False
        encoded = (ids[0], ids[1], ids[2])  # type: ignore[assignment]
        if encoded not in self._triples:
            return False
        self._triples.discard(encoded)
        self._index_remove(encoded)
        self._version += 1
        self._log_change(-1, encoded)
        return True

    def clear(self) -> None:
        """Remove all triples (the term dictionary is kept).

        Clearing degrades the change log to the full-invalidation sentinel:
        logging one removal per triple would usually blow the log bound
        anyway, and consumers patching derived results from deltas are
        better served by an honest "recompute from scratch" answer.
        """
        if self._triples:
            self._version += 1
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._change_log.clear()
        self._log_base = self._version

    def _index_add(self, encoded: EncodedTriple) -> None:
        s, p, o = encoded
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)

    def _index_remove(self, encoded: EncodedTriple) -> None:
        s, p, o = encoded
        self._discard_from_index(self._spo, s, p, o)
        self._discard_from_index(self._pos, p, o, s)
        self._discard_from_index(self._osp, o, s, p)

    @staticmethod
    def _discard_from_index(index: Dict[int, Dict[int, Set[int]]], a: int, b: int, c: int) -> None:
        second = index.get(a)
        if second is None:
            return
        third = second.get(b)
        if third is None:
            return
        third.discard(c)
        if not third:
            del second[b]
            if not second:
                del index[a]

    # ------------------------------------------------------------------
    # change log (incremental-maintenance support)
    # ------------------------------------------------------------------

    def _log_change(self, sign: int, encoded: EncodedTriple) -> None:
        if self._change_log_limit == 0:
            self._log_base = self._version
            return
        log = self._change_log
        log.append((self._version, sign, encoded))
        while len(log) > self._change_log_limit:
            # Ring-buffer eviction: drop the *oldest* record only.  Under a
            # sustained write stream the log always retains the most recent
            # ``change_log_limit`` mutations, so consumers a few versions
            # behind keep getting deltas; only consumers older than the
            # window degrade to full invalidation.
            log.popleft()
        # Effective mutations bump the version by exactly 1 and log exactly
        # once, so the retained records cover (oldest version - 1, current].
        self._log_base = log[0][0] - 1

    @property
    def change_log_limit(self) -> int:
        """Maximum number of retained change records (0 disables the log)."""
        return self._change_log_limit

    @property
    def change_log_length(self) -> int:
        """Number of change records currently retained."""
        return len(self._change_log)

    @property
    def change_log_base(self) -> int:
        """The oldest version :meth:`deltas_since` can still answer for."""
        return self._log_base

    def deltas_since(self, version: int) -> Optional[GraphDelta]:
        """The coalesced triple deltas between ``version`` and now, or None.

        ``None`` is the **full-invalidation sentinel**: the graph cannot
        reconstruct the difference (the log overflowed past ``version``, the
        graph was cleared, or ``version`` is from the future), so derived
        results stamped at ``version`` must be recomputed, not patched.
        Opposite mutations of the same triple inside the window coalesce to
        nothing.
        """
        if version > self._version:
            return None
        if version == self._version:
            return GraphDelta((), (), version, self._version)
        if version < self._log_base:
            return None
        memo = self._delta_memo
        if memo is not None and memo[0] == version and memo[1] == self._version:
            return memo[2]
        net: Dict[EncodedTriple, int] = {}
        for logged_version, sign, encoded in self._change_log:
            if logged_version > version:
                net[encoded] = net.get(encoded, 0) + sign
        added = tuple(triple for triple, balance in net.items() if balance > 0)
        removed = tuple(triple for triple, balance in net.items() if balance < 0)
        delta = GraphDelta(added, removed, version, self._version)
        self._delta_memo = (version, self._version, delta)
        return delta

    # ------------------------------------------------------------------
    # size / membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple) -> bool:
        if not isinstance(triple, Triple):
            subject, predicate, object_ = triple
            triple = Triple(subject, predicate, object_)
        lookup = self._dictionary.lookup
        s = lookup(triple.subject)
        p = lookup(triple.predicate)
        o = lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        return (s, p, o) in self._triples

    def __iter__(self) -> Iterator[Triple]:
        decode = self._dictionary.decode
        for s, p, o in self._triples:
            yield Triple(decode(s), decode(p), decode(o))  # type: ignore[arg-type]

    def __bool__(self) -> bool:
        return bool(self._triples)

    # ------------------------------------------------------------------
    # pattern matching (term level)
    # ------------------------------------------------------------------

    def triples(
        self,
        subject: Optional[TermOrVariable] = None,
        predicate: Optional[TermOrVariable] = None,
        object: Optional[TermOrVariable] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given (possibly open) pattern.

        ``None`` or a :class:`Variable` in a position means "any term".
        """
        decode = self._dictionary.decode
        for s, p, o in self.match_ids(
            self._position_id(subject), self._position_id(predicate), self._position_id(object)
        ):
            yield Triple(decode(s), decode(p), decode(o))  # type: ignore[arg-type]

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate over triples matching a :class:`TriplePattern`.

        Repeated variables in the pattern (e.g. ``?x ?p ?x``) are honoured.
        """
        seen_vars = {}
        positions = pattern.as_tuple()
        for index, term in enumerate(positions):
            if isinstance(term, Variable):
                seen_vars.setdefault(term, []).append(index)
        for triple in self.triples(*(None if isinstance(t, Variable) else t for t in positions)):
            components = triple.as_tuple()
            if all(
                len({components[i] for i in occurrences}) == 1
                for occurrences in seen_vars.values()
            ):
                yield triple

    def _position_id(self, term: Optional[TermOrVariable]) -> Optional[int]:
        """Map a pattern position to an id constraint (None = unconstrained).

        A constant term that is not in the dictionary yields ``-1``, a
        sentinel id matching nothing, so that patterns over unknown terms
        return empty results instead of raising.
        """
        if term is None or isinstance(term, Variable):
            return None
        term_id = self._dictionary.lookup(term)
        return -1 if term_id is None else term_id

    # ------------------------------------------------------------------
    # pattern matching (id level) — the BGP evaluator's entry point
    # ------------------------------------------------------------------

    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[EncodedTriple]:
        """Iterate over encoded triples matching the id-level pattern.

        Each position is either an integer id, ``-1`` (a constant unknown to
        the dictionary: matches nothing) or ``None`` (unconstrained).  The
        most selective available index is used.
        """
        if s == -1 or p == -1 or o == -1:
            return
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, {}).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield (s, pred, o)
                return
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, o)
            return
        yield from self._triples

    def match_single_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int], position: int
    ) -> Iterable[int]:
        """The ids appearing at one unconstrained ``position`` of the pattern.

        For patterns whose other two positions are both constrained this
        returns the terminal index set **directly** (no triple tuples are
        allocated) — the BGP evaluator's hottest access path, e.g. all
        objects of ``(s, p, ?)`` or all subjects of ``(?, p, o)``.  Callers
        must treat the result as read-only and must pass a ``position``
        whose value is ``None``.
        """
        if s == -1 or p == -1 or o == -1:
            return ()
        if position == 2 and s is not None and p is not None:
            return self._spo.get(s, {}).get(p, ())
        if position == 0 and p is not None and o is not None:
            return self._pos.get(p, {}).get(o, ())
        if position == 1 and s is not None and o is not None:
            return self._osp.get(o, {}).get(s, ())
        return (triple[position] for triple in self.match_ids(s, p, o))

    def count_ids(self, s: Optional[int], p: Optional[int], o: Optional[int]) -> int:
        """Return the number of triples matching the id-level pattern.

        Cheap (index-size based) for the common shapes used by the join
        optimizer; falls back to counting matches otherwise.
        """
        if s == -1 or p == -1 or o == -1:
            return 0
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is None and o is None:
            return sum(len(objects) for objects in self._spo.get(s, {}).values())
        if p is not None and s is None and o is None:
            return sum(len(subjects) for subjects in self._pos.get(p, {}).values())
        if o is not None and s is None and p is None:
            return sum(len(predicates) for predicates in self._osp.get(o, {}).values())
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        return sum(1 for _ in self.match_ids(s, p, o))

    # ------------------------------------------------------------------
    # snapshot persistence / columnar hooks
    # ------------------------------------------------------------------

    #: Path of the backing snapshot file.  ``None`` on heap graphs; set (as
    #: a property) on :class:`repro.storage.mapped.SnapshotGraph`.  The
    #: parallel executor keys its worker attach mode off this: a non-None
    #: path means workers can re-open the snapshot by mmap instead of
    #: receiving a pickled graph.
    snapshot_path: Optional[str] = None

    def encoded_triples(self) -> Iterable[EncodedTriple]:
        """All triples as encoded ``(s, p, o)`` id tuples (read-only view).

        Heap graphs return their triple set directly (no copy); mapped
        graphs yield from their fact columns.  Callers must not mutate the
        result and should materialize it before iterating more than once.
        """
        return self._triples

    def columnar_predicate_pairs(self, p_id: int):
        """Pre-built ``(subjects, objects)`` arrays for one predicate, or None.

        Storage backends that already hold the fact columns in array form
        (mapped snapshots) override this so
        :class:`repro.bgp.evaluator.ColumnarTripleIndex` can skip its
        Python build pass and slice the columns zero-copy.  The base heap
        graph has no such arrays and returns ``None``.
        """
        return None

    def columnar_sorted_pairs(self, p_id: int, sort_position: int):
        """Pre-sorted pair arrays for one predicate, or None (see above).

        ``sort_position`` 0 requests ``(subjects, objects)`` sorted by
        subject; 2 requests ``(objects, subjects)`` sorted by object.
        """
        return None

    def statistics_summary(self):
        """Precomputed summary counts for :class:`~repro.rdf.statistics.GraphStatistics`.

        Returns ``None`` on heap graphs (statistics scan the instance);
        mapped snapshots return the counts stored in their header so the
        scan — and the term decoding it implies — is skipped entirely.
        """
        return None

    def save_snapshot(self, path: str) -> None:
        """Serialize this graph into an on-disk columnar snapshot file.

        See :mod:`repro.storage` for the format.  Requires numpy (the
        ``[fast]`` extra); raises
        :class:`~repro.errors.ConfigurationError` without it.
        """
        from repro.storage.snapshot import save_snapshot

        save_snapshot(self, path)

    @staticmethod
    def load_snapshot(path: str, mmap: bool = True) -> "Graph":
        """Load a snapshot file previously written by :meth:`save_snapshot`.

        With ``mmap=True`` (default) returns a read-only memory-mapped
        :class:`repro.storage.mapped.SnapshotGraph` that opens in O(header)
        time; with ``mmap=False`` decodes into a plain mutable heap graph.
        """
        from repro.storage.snapshot import load_snapshot

        return load_snapshot(path, mmap=mmap)

    # ------------------------------------------------------------------
    # navigation helpers
    # ------------------------------------------------------------------

    def subjects(self, predicate: Optional[Term] = None, object: Optional[Term] = None) -> Iterator[Term]:
        """Iterate over distinct subjects of triples matching ``(_, p, o)``."""
        seen: Set[Term] = set()
        for triple in self.triples(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self, subject: Optional[Term] = None, object: Optional[Term] = None) -> Iterator[Term]:
        """Iterate over distinct predicates of triples matching ``(s, _, o)``."""
        seen: Set[Term] = set()
        for triple in self.triples(subject, None, object):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(self, subject: Optional[Term] = None, predicate: Optional[Term] = None) -> Iterator[Term]:
        """Iterate over distinct objects of triples matching ``(s, p, _)``."""
        seen: Set[Term] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(self, subject: Term, predicate: Term) -> Optional[Term]:
        """Return one object of ``(subject, predicate, _)`` or None."""
        for obj in self.objects(subject, predicate):
            return obj
        return None

    def instances_of(self, klass: IRI) -> Iterator[Term]:
        """Iterate over subjects with ``rdf:type klass``."""
        return self.subjects(_RDF_TYPE, klass)

    # ------------------------------------------------------------------
    # partitioning (parallel execution support)
    # ------------------------------------------------------------------

    def partition(self, count: int) -> Tuple[GraphShard, ...]:
        """Split the term-id space into ``count`` contiguous fact shards.

        Shards share this graph's dictionary and copy nothing; they are
        id-interval specs consumed by the per-shard evaluation paths
        (:meth:`repro.bgp.evaluator.BGPEvaluator.evaluate_ids` with a
        ``fact_range``, and :mod:`repro.olap.parallel` above it).  The
        intervals are equal-width over the ids assigned so far, disjoint,
        and jointly cover the whole id space — the last shard is open-ended
        so terms encoded after partitioning still land in it.

        ``count`` may exceed the dictionary size; the surplus shards are
        simply empty, which the merge algebra handles (an empty shard
        contributes no γ states and no ``pres(Q)`` rows).
        """
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        size = len(self._dictionary)
        boundaries = [(index * size) // count for index in range(count)]
        boundaries.append(None)  # the last shard is open-ended
        return tuple(
            GraphShard(index, count, boundaries[index], boundaries[index + 1])
            for index in range(count)
        )

    # ------------------------------------------------------------------
    # set-style operations
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "Graph":
        """Return an independent copy of this graph (shared nothing).

        The copy keeps this graph's ``change_log_limit`` (but not its log:
        a fresh graph starts its own history).
        """
        clone = Graph(name=name or self.name, change_log_limit=self._change_log_limit)
        clone.add_all(self)
        return clone

    def union(self, other: "Graph", name: str | None = None) -> "Graph":
        """Return a new graph holding the triples of both graphs."""
        result = self.copy(name=name)
        result.add_all(other)
        return result

    def __eq__(self, other: object) -> bool:
        """Graphs are equal when they hold the same set of (ground) triples.

        Note: blank nodes are compared by label, not by graph isomorphism;
        this is sufficient for the deterministic generators and tests used
        in this project.
        """
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(triple in other for triple in self)

    # Graphs are mutable and compare by triple-set contents, so they must
    # not be hashable; assigning None (rather than a raising method) makes
    # them fail isinstance(graph, collections.abc.Hashable) checks too.
    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover
        label = f" {self.name!r}" if self.name else ""
        return f"Graph({label} {len(self)} triples)"
