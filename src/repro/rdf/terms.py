"""RDF terms: IRIs, literals, blank nodes and query variables.

The term model follows the RDF 1.1 abstract syntax.  Terms are immutable,
hashable value objects so that they can be used freely as dictionary keys,
set members and columns of bag relations.

Design notes
------------
* ``IRI`` wraps a plain string; no network resolution is ever attempted.
* ``Literal`` carries an optional datatype IRI and an optional language tag
  (mutually exclusive per RDF 1.1).  A small set of XSD datatypes is mapped
  to native Python values (int, float, Decimal, bool) for use by aggregation
  functions; see :meth:`Literal.to_python`.
* ``BlankNode`` identity is its label within a single document / graph scope.
* ``Variable`` is not an RDF term proper but shares the same interface so
  that triple *patterns* can hold either terms or variables uniformly.
"""

from __future__ import annotations

import re
import threading
from decimal import Decimal, InvalidOperation
from typing import Union

from repro.errors import InvalidTermError

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "TermOrVariable",
    "fresh_blank_node",
]


_IRI_FORBIDDEN = re.compile(r"[\x00-\x20<>\"{}|^`\\]")
_LANG_TAG = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")
_VARIABLE_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_BNODE_LABEL = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")


class Term:
    """Abstract base class of all RDF terms (and of :class:`Variable`)."""

    __slots__ = ()

    def __reduce__(self):
        # Terms are immutable (every subclass blocks __setattr__), which
        # breaks the default slots unpickling; restore through
        # object.__setattr__ instead.  Picklable terms are what lets graphs
        # and queries cross process boundaries (the parallel executor ships
        # both to its worker pool).
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        return (_restore_term, (type(self), state))

    def n3(self) -> str:
        """Return the term in N-Triples / Turtle surface syntax."""
        raise NotImplementedError

    @property
    def is_iri(self) -> bool:
        return isinstance(self, IRI)

    @property
    def is_literal(self) -> bool:
        return isinstance(self, Literal)

    @property
    def is_blank(self) -> bool:
        return isinstance(self, BlankNode)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.n3()})"


class IRI(Term):
    """An IRI reference, e.g. ``IRI("http://example.org/user1")``.

    The constructor performs a light well-formedness check: the IRI must be a
    non-empty string without whitespace, angle brackets or other characters
    forbidden by the N-Triples grammar.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise InvalidTermError(f"IRI value must be a string, got {type(value).__name__}")
        if not value:
            raise InvalidTermError("IRI value must be a non-empty string")
        if _IRI_FORBIDDEN.search(value):
            raise InvalidTermError(f"IRI contains forbidden characters: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, val):  # immutability guard
        raise AttributeError("IRI instances are immutable")

    def n3(self) -> str:
        return f"<{self.value}>"

    def local_name(self) -> str:
        """Return the fragment / last path segment, a convenience for display."""
        value = self.value
        for separator in ("#", "/", ":"):
            index = value.rfind(separator)
            if index != -1 and index + 1 < len(value):
                return value[index + 1 :]
        return value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("IRI", self.value))

    def __lt__(self, other: "IRI") -> bool:
        if not isinstance(other, IRI):
            return NotImplemented
        return self.value < other.value

    def __str__(self) -> str:
        return self.value


# Datatype IRIs used for literal <-> Python conversion.  Kept here (rather
# than importing from namespaces.py) to avoid a circular import; the
# namespaces module re-exports richer constants.
_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_FLOAT = _XSD + "float"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

_NUMERIC_DATATYPES = {XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(value: str) -> str:
    return "".join(_ESCAPES.get(char, char) for char in value)


class Literal(Term):
    """An RDF literal with optional datatype or language tag.

    Parameters
    ----------
    lexical:
        The lexical form.  Non-string Python values (int, float, bool,
        Decimal) are accepted and converted: the datatype is inferred when
        not given explicitly.
    datatype:
        Datatype IRI (as :class:`IRI` or string).  Mutually exclusive with
        ``language``.
    language:
        BCP-47 language tag; implies datatype ``rdf:langString``.
    """

    __slots__ = ("lexical", "datatype", "language")

    def __init__(
        self,
        lexical: Union[str, int, float, bool, Decimal],
        datatype: Union["IRI", str, None] = None,
        language: str | None = None,
    ):
        if language is not None and datatype is not None:
            raise InvalidTermError("a literal cannot have both a language tag and a datatype")

        inferred: str | None = None
        if isinstance(lexical, bool):  # bool before int: bool is a subclass of int
            lexical = "true" if lexical else "false"
            inferred = XSD_BOOLEAN
        elif isinstance(lexical, int):
            lexical = str(lexical)
            inferred = XSD_INTEGER
        elif isinstance(lexical, float):
            lexical = repr(lexical)
            inferred = XSD_DOUBLE
        elif isinstance(lexical, Decimal):
            lexical = str(lexical)
            inferred = XSD_DECIMAL
        elif not isinstance(lexical, str):
            raise InvalidTermError(
                f"literal lexical form must be str/int/float/bool/Decimal, got {type(lexical).__name__}"
            )

        if language is not None:
            if not _LANG_TAG.match(language):
                raise InvalidTermError(f"invalid language tag: {language!r}")
            datatype_value = RDF_LANGSTRING
            language = language.lower()
        else:
            if datatype is None:
                datatype_value = inferred or XSD_STRING
            elif isinstance(datatype, IRI):
                datatype_value = datatype.value
            elif isinstance(datatype, str):
                datatype_value = datatype
            else:
                raise InvalidTermError("datatype must be an IRI or a string")

        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype_value)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name, val):
        raise AttributeError("Literal instances are immutable")

    # -- conversion --------------------------------------------------------

    def to_python(self):
        """Return the closest native Python value for this literal.

        Numeric XSD datatypes map to ``int``/``float``/``Decimal``, booleans
        to ``bool``; everything else (including dates) stays a string.
        Malformed numeric lexical forms fall back to the string form rather
        than raising, mirroring SPARQL's lenient treatment of ill-typed
        literals in aggregation inputs.
        """
        datatype = self.datatype
        lexical = self.lexical
        try:
            if datatype == XSD_INTEGER:
                return int(lexical)
            if datatype in (XSD_DOUBLE, XSD_FLOAT):
                return float(lexical)
            if datatype == XSD_DECIMAL:
                return Decimal(lexical)
            if datatype == XSD_BOOLEAN:
                if lexical in ("true", "1"):
                    return True
                if lexical in ("false", "0"):
                    return False
        except (ValueError, InvalidOperation):
            return lexical
        return lexical

    @property
    def is_numeric(self) -> bool:
        """True when the literal's datatype is one of the XSD numeric types."""
        return self.datatype in _NUMERIC_DATATYPES

    # -- presentation ------------------------------------------------------

    def n3(self) -> str:
        quoted = f'"{_escape_literal(self.lexical)}"'
        if self.language is not None:
            return f"{quoted}@{self.language}"
        if self.datatype == XSD_STRING:
            return quoted
        return f"{quoted}^^<{self.datatype}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.lexical, self.datatype, self.language))

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        if self.is_numeric and other.is_numeric:
            return float(self.to_python()) < float(other.to_python())
        return (self.lexical, self.datatype) < (other.lexical, other.datatype)

    def __str__(self) -> str:
        return self.lexical


class BlankNode(Term):
    """A blank node, identified by a label that is scoped to a document/graph."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        if not isinstance(label, str) or not label:
            raise InvalidTermError("blank node label must be a non-empty string")
        if not _BNODE_LABEL.match(label):
            raise InvalidTermError(f"invalid blank node label: {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, val):
        raise AttributeError("BlankNode instances are immutable")

    def n3(self) -> str:
        return f"_:{self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("BlankNode", self.label))

    def __lt__(self, other: "BlankNode") -> bool:
        if not isinstance(other, BlankNode):
            return NotImplemented
        return self.label < other.label

    def __str__(self) -> str:
        return self.label


class Variable(Term):
    """A query variable, used in triple patterns and query heads.

    Variables compare by name only; ``Variable("x") == Variable("x")``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if isinstance(name, Variable):
            name = name.name
        if not isinstance(name, str) or not name:
            raise InvalidTermError("variable name must be a non-empty string")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not _VARIABLE_NAME.match(name):
            raise InvalidTermError(f"invalid variable name: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, val):
        raise AttributeError("Variable instances are immutable")

    def n3(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name

    def __str__(self) -> str:
        return self.name


def _restore_term(cls, state):
    """Unpickling helper: rebuild an immutable term without re-validating."""
    instance = cls.__new__(cls)
    for name, value in state.items():
        object.__setattr__(instance, name, value)
    return instance


TermOrVariable = Union[IRI, Literal, BlankNode, Variable]


_blank_counter_lock = threading.Lock()
_blank_counter = 0


def fresh_blank_node(prefix: str = "b") -> BlankNode:
    """Return a new blank node with a process-unique label.

    Used by the Turtle parser for anonymous nodes and by the data generators.
    """
    global _blank_counter
    with _blank_counter_lock:
        _blank_counter += 1
        count = _blank_counter
    return BlankNode(f"{prefix}{count}")
