"""Term dictionary: bidirectional mapping between RDF terms and integer ids.

RDF stores conventionally encode terms into fixed-size integers so that the
triple indexes and join processing operate on machine words instead of
strings.  :class:`TermDictionary` provides that encoding layer for
:class:`~repro.rdf.graph.Graph`.

Identifiers are dense, starting at 0, and are assigned in first-seen order,
which makes encoded datasets deterministic for a deterministic insertion
order — a property the benchmarks rely on for reproducibility.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import DictionaryError
from repro.rdf.terms import Term

__all__ = ["TermDictionary"]


class TermDictionary:
    """Bidirectional term <-> integer id mapping.

    The dictionary is append-only: terms are never removed, even when the
    triples mentioning them are deleted from the graph.  This keeps encoded
    relations valid across graph mutations.
    """

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the id of ``term``, assigning a fresh id when unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def encode_existing(self, term: Term) -> int:
        """Return the id of ``term``; raise when the term was never encoded."""
        existing = self._term_to_id.get(term)
        if existing is None:
            raise DictionaryError(f"term not in dictionary: {term.n3()}")
        return existing

    def lookup(self, term: Term) -> int | None:
        """Return the id of ``term`` or None when unknown (no assignment)."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term with the given id."""
        if not 0 <= term_id < len(self._id_to_term):
            raise DictionaryError(f"unknown term id: {term_id}")
        return self._id_to_term[term_id]

    def decode_many(self, ids: Tuple[int, ...]) -> Tuple[Term, ...]:
        """Decode a tuple of ids in one call (hot path of result decoding)."""
        table = self._id_to_term
        try:
            return tuple(table[i] for i in ids)
        except IndexError as exc:
            raise DictionaryError(f"unknown term id in {ids!r}") from exc

    def items(self) -> Iterator[Tuple[Term, int]]:
        return iter(self._term_to_id.items())

    def terms(self) -> Iterator[Term]:
        return iter(self._id_to_term)

    def copy(self) -> "TermDictionary":
        clone = TermDictionary()
        clone._term_to_id = dict(self._term_to_id)
        clone._id_to_term = list(self._id_to_term)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return f"TermDictionary({len(self)} terms)"
