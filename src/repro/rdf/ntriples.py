"""N-Triples parser and serializer.

Implements the line-oriented N-Triples syntax (a subset of Turtle): one
triple per line, full IRIs in angle brackets, quoted literals with optional
``@lang`` or ``^^<datatype>``, ``_:label`` blank nodes, ``#`` comments.

The parser is intentionally strict about structure (three terms and a final
dot per statement) but lenient about surrounding whitespace.
"""

from __future__ import annotations

import re
from typing import IO, Iterable, Iterator, List, Union

from repro.errors import InvalidTermError, ParseError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, BlankNode, Literal, Term
from repro.rdf.triples import Triple

__all__ = ["parse_ntriples", "parse_ntriples_line", "serialize_ntriples", "load_ntriples", "dump_ntriples"]


_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}

_TERM_RE = re.compile(
    r"""
    \s*
    (?:
        <(?P<iri>[^>]*)>
      | _:(?P<bnode>[A-Za-z0-9_][A-Za-z0-9_.-]*)
      | "(?P<literal>(?:[^"\\]|\\.)*)"
        (?:
            @(?P<lang>[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*)
          | \^\^<(?P<datatype>[^>]*)>
        )?
    )
    """,
    re.VERBOSE,
)


def _unescape(value: str) -> str:
    result = value
    for escaped, plain in _UNESCAPES.items():
        result = result.replace(escaped, plain)
    # Unicode escapes \uXXXX and \UXXXXXXXX.
    def decode_unicode(match: re.Match) -> str:
        return chr(int(match.group(1) or match.group(2), 16))

    return re.sub(r"\\u([0-9A-Fa-f]{4})|\\U([0-9A-Fa-f]{8})", decode_unicode, result)


def _parse_term(text: str, position: int, line_number: int) -> tuple[Term, int]:
    match = _TERM_RE.match(text, position)
    if not match:
        raise ParseError(f"expected an RDF term at: {text[position:position + 40]!r}", line=line_number)
    try:
        if match.group("iri") is not None:
            return IRI(_unescape(match.group("iri"))), match.end()
        if match.group("bnode") is not None:
            return BlankNode(match.group("bnode")), match.end()
        lexical = _unescape(match.group("literal"))
        language = match.group("lang")
        datatype = match.group("datatype")
        if language:
            return Literal(lexical, language=language), match.end()
        if datatype:
            return Literal(lexical, datatype=datatype), match.end()
        return Literal(lexical), match.end()
    except InvalidTermError as exc:
        # e.g. an unclosed IRI swallowing the rest of the line: report it as
        # a parse failure with the line number, not a bare term error.
        raise ParseError(str(exc), line=line_number) from exc


def parse_ntriples_line(line: str, line_number: int = 0) -> Triple | None:
    """Parse one N-Triples statement; return None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    subject, position = _parse_term(line, 0, line_number)
    predicate, position = _parse_term(line, position, line_number)
    object_, position = _parse_term(line, position, line_number)
    remainder = line[position:].strip()
    if remainder not in (".", ". "):
        if not remainder.startswith("."):
            raise ParseError("statement does not end with '.'", line=line_number)
        trailing = remainder[1:].strip()
        if trailing and not trailing.startswith("#"):
            raise ParseError(f"unexpected trailing content: {trailing!r}", line=line_number)
    try:
        return Triple(subject, predicate, object_)  # type: ignore[arg-type]
    except Exception as exc:
        raise ParseError(str(exc), line=line_number) from exc


def parse_ntriples(source: Union[str, Iterable[str], IO[str]], graph: Graph | None = None) -> Graph:
    """Parse N-Triples from a string (whole document) or iterable of lines.

    Returns ``graph`` (a new :class:`Graph` when not supplied) with the
    parsed triples added.
    """
    if graph is None:
        graph = Graph()
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    for line_number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, line_number)
        if triple is not None:
            graph.add(triple)
    return graph


def serialize_ntriples(graph: Graph, sort: bool = True) -> str:
    """Serialize a graph to an N-Triples string.

    With ``sort=True`` (the default) statements are emitted in lexicographic
    order of their N3 form, yielding a canonical text for diffing in tests.
    """
    statements: List[str] = [triple.n3() for triple in graph]
    if sort:
        statements.sort()
    return "\n".join(statements) + ("\n" if statements else "")


def load_ntriples(path: str, graph: Graph | None = None) -> Graph:
    """Load an N-Triples file from disk."""
    if graph is None:
        graph = Graph(name=path)
    with open(path, "r", encoding="utf-8") as handle:
        return parse_ntriples(handle, graph)


def dump_ntriples(graph: Graph, path: str, sort: bool = True) -> None:
    """Write a graph to an N-Triples file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize_ntriples(graph, sort=sort))


def iter_ntriples(source: Iterable[str]) -> Iterator[Triple]:
    """Stream triples from an iterable of N-Triples lines without building a graph."""
    for line_number, line in enumerate(source, start=1):
        triple = parse_ntriples_line(line, line_number)
        if triple is not None:
            yield triple
