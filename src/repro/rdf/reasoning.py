"""RDFS reasoning by saturation.

Analytical-schema instances are "semantic-rich" RDF graphs: their answers
must account for implicit triples entailed by RDF Schema statements.  The
standard way to make BGP query answering complete in this setting — the one
used by the RDF analytics framework the paper builds on — is *saturation*:
materialize the entailed triples once, then evaluate queries on the closed
graph.

This module implements the four RDFS entailment rules that matter for BGP
answering over instance data (the ρdf fragment):

=========  ======================================================
rule       entailment
=========  ======================================================
rdfs2      ``p rdfs:domain c`` and ``s p o``      ⟹  ``s rdf:type c``
rdfs3      ``p rdfs:range c`` and ``s p o``       ⟹  ``o rdf:type c``
rdfs5      transitivity of ``rdfs:subPropertyOf``
rdfs7      ``p rdfs:subPropertyOf q`` and ``s p o`` ⟹  ``s q o``
rdfs9      ``c rdfs:subClassOf d`` and ``s rdf:type c`` ⟹ ``s rdf:type d``
rdfs11     transitivity of ``rdfs:subClassOf``
=========  ======================================================

Saturation runs to a fixpoint; the input graph is not modified unless
``in_place=True``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triples import Triple

__all__ = ["RDFSRules", "saturate", "schema_triples", "is_schema_triple"]

_TYPE = RDF.term("type")
_SUBCLASS = RDFS.term("subClassOf")
_SUBPROPERTY = RDFS.term("subPropertyOf")
_DOMAIN = RDFS.term("domain")
_RANGE = RDFS.term("range")

_SCHEMA_PREDICATES = {_SUBCLASS, _SUBPROPERTY, _DOMAIN, _RANGE}


def is_schema_triple(triple: Triple) -> bool:
    """True when the triple is an RDFS schema statement (not instance data)."""
    return triple.predicate in _SCHEMA_PREDICATES


def schema_triples(graph: Graph) -> Iterable[Triple]:
    """Iterate over the RDFS schema statements of ``graph``."""
    for predicate in _SCHEMA_PREDICATES:
        yield from graph.triples(None, predicate, None)


def _transitive_closure(edges: Dict[Term, Set[Term]]) -> Dict[Term, Set[Term]]:
    """Return the transitive closure of a successor map (iterative DFS)."""
    closure: Dict[Term, Set[Term]] = {}
    for start in edges:
        reached: Set[Term] = set()
        stack = list(edges.get(start, ()))
        while stack:
            node = stack.pop()
            if node in reached:
                continue
            reached.add(node)
            stack.extend(edges.get(node, ()))
        closure[start] = reached
    return closure


class RDFSRules:
    """Pre-compiled view of a graph's RDFS schema, used to saturate data.

    The schema (subclass / subproperty hierarchies, domain and range
    constraints) is extracted and transitively closed once; then
    :meth:`entail` produces all triples entailed for a given data triple.
    """

    def __init__(self, graph: Graph):
        subclass: Dict[Term, Set[Term]] = {}
        subproperty: Dict[Term, Set[Term]] = {}
        self._domains: Dict[Term, Set[Term]] = {}
        self._ranges: Dict[Term, Set[Term]] = {}

        for triple in graph.triples(None, _SUBCLASS, None):
            subclass.setdefault(triple.subject, set()).add(triple.object)
        for triple in graph.triples(None, _SUBPROPERTY, None):
            subproperty.setdefault(triple.subject, set()).add(triple.object)
        for triple in graph.triples(None, _DOMAIN, None):
            self._domains.setdefault(triple.subject, set()).add(triple.object)
        for triple in graph.triples(None, _RANGE, None):
            self._ranges.setdefault(triple.subject, set()).add(triple.object)

        self._subclass_closure = _transitive_closure(subclass)
        self._subproperty_closure = _transitive_closure(subproperty)

    # -- schema introspection ----------------------------------------------

    def superclasses(self, klass: Term) -> Set[Term]:
        """All (transitive) superclasses of ``klass``, excluding itself."""
        return set(self._subclass_closure.get(klass, ()))

    def superproperties(self, prop: Term) -> Set[Term]:
        """All (transitive) superproperties of ``prop``, excluding itself."""
        return set(self._subproperty_closure.get(prop, ()))

    def domains(self, prop: Term) -> Set[Term]:
        return set(self._domains.get(prop, ()))

    def ranges(self, prop: Term) -> Set[Term]:
        return set(self._ranges.get(prop, ()))

    # -- entailment ---------------------------------------------------------

    def entail(self, triple: Triple) -> Set[Triple]:
        """Return the set of triples directly entailed by ``triple``.

        The returned set does not include ``triple`` itself.  Entailments
        may themselves entail more triples; :func:`saturate` iterates to a
        fixpoint.
        """
        entailed: Set[Triple] = set()
        subject, predicate, object_ = triple.as_tuple()

        # rdfs7: subproperty propagation.
        for super_property in self._subproperty_closure.get(predicate, ()):
            if isinstance(super_property, IRI):
                entailed.add(Triple(subject, super_property, object_))

        # rdfs2 / rdfs3: domain and range typing (also via superproperties,
        # because the closure below is driven off the original predicate only).
        properties = {predicate} | self._subproperty_closure.get(predicate, set())
        for prop in properties:
            for domain_class in self._domains.get(prop, ()):
                entailed.add(Triple(subject, _TYPE, domain_class))  # type: ignore[arg-type]
            if not isinstance(object_, Literal):
                for range_class in self._ranges.get(prop, ()):
                    entailed.add(Triple(object_, _TYPE, range_class))  # type: ignore[arg-type]

        # rdfs9: subclass propagation of rdf:type.
        if predicate == _TYPE:
            for super_class in self._subclass_closure.get(object_, ()):
                entailed.add(Triple(subject, _TYPE, super_class))  # type: ignore[arg-type]

        entailed.discard(triple)
        return entailed


def saturate(graph: Graph, in_place: bool = False) -> Graph:
    """Return the RDFS saturation (closure) of ``graph``.

    The fixpoint computation is a simple semi-naive loop: only triples added
    in the previous round are considered for further entailment.
    """
    target = graph if in_place else graph.copy()
    rules = RDFSRules(target)

    frontier: Set[Triple] = set(target)
    while frontier:
        new_triples: Set[Triple] = set()
        for triple in frontier:
            for entailed in rules.entail(triple):
                if entailed not in target:
                    new_triples.add(entailed)
        for triple in new_triples:
            target.add(triple)
        frontier = new_triples
    return target
