"""RDF substrate: data model, triple store, I/O, RDFS reasoning, statistics.

This package is a self-contained, dependency-free RDF toolkit providing just
what the analytics layer needs:

* :mod:`repro.rdf.terms` — IRIs, literals, blank nodes, variables;
* :mod:`repro.rdf.triples` — triples and triple patterns;
* :mod:`repro.rdf.namespaces` — namespaces, prefix maps, RDF/RDFS/XSD;
* :mod:`repro.rdf.dictionary` — term dictionary (integer encoding);
* :mod:`repro.rdf.graph` — in-memory triple store with SPO/POS/OSP indexes;
* :mod:`repro.rdf.ntriples`, :mod:`repro.rdf.turtle` — parsers/serializers;
* :mod:`repro.rdf.reasoning` — RDFS saturation;
* :mod:`repro.rdf.statistics` — statistics for join-order estimation.
"""

from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import DEFAULT_CHANGE_LOG_LIMIT, Graph, GraphDelta
from repro.rdf.namespaces import ANS, EX, RDF, RDFS, XSD, Namespace, PrefixMap
from repro.rdf.ntriples import (
    dump_ntriples,
    load_ntriples,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.reasoning import RDFSRules, saturate
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import IRI, BlankNode, Literal, Term, Variable, fresh_blank_node
from repro.rdf.triples import Triple, TriplePattern
from repro.rdf.turtle import dump_turtle, load_turtle, parse_turtle, serialize_turtle

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Term",
    "fresh_blank_node",
    "Triple",
    "TriplePattern",
    "Namespace",
    "PrefixMap",
    "RDF",
    "RDFS",
    "XSD",
    "EX",
    "ANS",
    "TermDictionary",
    "Graph",
    "GraphDelta",
    "DEFAULT_CHANGE_LOG_LIMIT",
    "GraphStatistics",
    "RDFSRules",
    "saturate",
    "parse_ntriples",
    "serialize_ntriples",
    "load_ntriples",
    "dump_ntriples",
    "parse_turtle",
    "serialize_turtle",
    "load_turtle",
    "dump_turtle",
]
