"""Parser and serializer for a practical Turtle subset.

Supported Turtle features:

* ``@prefix`` / ``PREFIX`` declarations and prefixed names (``ex:Blogger``);
* ``@base`` declarations and relative IRIs resolved against the base;
* the ``a`` keyword for ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* numeric (integer, decimal, double), boolean and string literal shorthand,
  with ``@lang`` and ``^^`` datatype annotations;
* ``_:label`` blank nodes;
* comments (``#``).

Not supported (raises :class:`~repro.errors.ParseError`): collections
``( ... )``, anonymous blank nodes ``[ ... ]``, triple-quoted strings.
These are not needed by the datasets and examples in this project; the
error message says exactly what was rejected so users are not surprised.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError, SerializationError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import PrefixMap, RDF
from repro.rdf.terms import IRI, BlankNode, Literal, Term, XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER
from repro.rdf.triples import Triple

__all__ = ["parse_turtle", "serialize_turtle", "load_turtle", "dump_turtle"]

_RDF_TYPE = RDF.term("type")

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>\#[^\n]*)
    | (?P<iri><[^>]*>)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<prefix_decl>@prefix|@base|PREFIX|BASE)
    | (?P<langtag>@[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*)
    | (?P<datatype>\^\^)
    | (?P<boolean>\btrue\b|\bfalse\b)
    | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
    | (?P<decimal>[+-]?\d*\.\d+)
    | (?P<integer>[+-]?\d+)
    | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.-]*)
    | (?P<a>\ba\b)
    | (?P<pname>[A-Za-z_][A-Za-z0-9_.-]*)?:(?:[A-Za-z0-9_][A-Za-z0-9_.-]*)?
    | (?P<punct>[.;,\[\]()])
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

#: A prefixed name exactly as the tokenizer accepts it (serializer guard).
_PNAME_RE = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_.-]*)?:(?:[A-Za-z0-9_][A-Za-z0-9_.-]*)?$")

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}


def _unescape(value: str) -> str:
    result = value
    for escaped, plain in _UNESCAPES.items():
        result = result.replace(escaped, plain)
    return result


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.text!r}, line {self.line})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise ParseError(f"unexpected character {text[position]!r}", line=line)
        kind = match.lastgroup or "pname"
        value = match.group(0)
        if kind not in ("ws", "comment"):
            if kind == "punct" and value in "[]()":
                raise ParseError(
                    f"Turtle construct {value!r} (collections / anonymous nodes) is not supported",
                    line=line,
                )
            # The pname alternative has no named group when only the colon part
            # matches; normalise its kind.
            if match.group("pname") is not None or (kind == "pname"):
                kind = "pname" if ":" in value and not value.startswith("_:") else kind
            tokens.append(_Token(kind, value, line))
        line += value.count("\n")
        position = match.end()
    return tokens


class _TurtleParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token], graph: Graph, prefixes: PrefixMap):
        self._tokens = tokens
        self._index = 0
        self._graph = graph
        self._prefixes = prefixes
        self._base: Optional[str] = None

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise ParseError(f"expected {char!r}, found {token.text!r}", line=token.line)

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Graph:
        while self._peek() is not None:
            token = self._peek()
            if token.kind == "prefix_decl":
                self._parse_directive()
            else:
                self._parse_triples_block()
        return self._graph

    def _parse_directive(self) -> None:
        directive = self._next()
        keyword = directive.text.lstrip("@").upper()
        if keyword == "PREFIX":
            name_token = self._next()
            if name_token.kind != "pname" or not name_token.text.endswith(":"):
                raise ParseError(
                    f"expected a prefix name ending with ':', found {name_token.text!r}",
                    line=name_token.line,
                )
            prefix = name_token.text[:-1]
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise ParseError("expected an IRI in prefix declaration", line=iri_token.line)
            self._prefixes.bind(prefix, self._resolve_iri(iri_token.text[1:-1]))
        elif keyword == "BASE":
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise ParseError("expected an IRI in base declaration", line=iri_token.line)
            self._base = iri_token.text[1:-1]
        else:  # pragma: no cover - the tokenizer only produces the two kinds
            raise ParseError(f"unknown directive {directive.text!r}", line=directive.line)
        if directive.text.startswith("@"):
            self._expect_punct(".")

    def _parse_triples_block(self) -> None:
        subject = self._parse_term(position="subject")
        self._parse_predicate_object_list(subject)
        self._expect_punct(".")

    def _parse_predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._parse_verb()
            self._parse_object_list(subject, predicate)
            token = self._peek()
            if token is not None and token.kind == "punct" and token.text == ";":
                self._next()
                # A ';' may be followed directly by '.', meaning an empty tail.
                token = self._peek()
                if token is not None and token.kind == "punct" and token.text == ".":
                    return
                continue
            return

    def _parse_verb(self) -> IRI:
        token = self._peek()
        if token is not None and token.kind == "a":
            self._next()
            return _RDF_TYPE
        term = self._parse_term(position="predicate")
        if not isinstance(term, IRI):
            raise ParseError("predicate must be an IRI", line=token.line if token else None)
        return term

    def _parse_object_list(self, subject: Term, predicate: IRI) -> None:
        while True:
            object_ = self._parse_term(position="object")
            self._graph.add(Triple(subject, predicate, object_))  # type: ignore[arg-type]
            token = self._peek()
            if token is not None and token.kind == "punct" and token.text == ",":
                self._next()
                continue
            return

    def _parse_term(self, position: str) -> Term:
        token = self._next()
        if token.kind == "iri":
            return IRI(self._resolve_iri(_unescape(token.text[1:-1])))
        if token.kind == "pname":
            try:
                return self._prefixes.expand(token.text)
            except Exception as exc:
                raise ParseError(str(exc), line=token.line) from exc
        if token.kind == "bnode":
            return BlankNode(token.text[2:])
        if token.kind == "a" and position == "predicate":
            return _RDF_TYPE
        if position in ("subject", "predicate"):
            raise ParseError(f"invalid {position} term: {token.text!r}", line=token.line)
        if token.kind == "string":
            lexical = _unescape(token.text[1:-1])
            nxt = self._peek()
            if nxt is not None and nxt.kind == "langtag":
                self._next()
                return Literal(lexical, language=nxt.text[1:])
            if nxt is not None and nxt.kind == "datatype":
                self._next()
                datatype_term = self._parse_term(position="predicate")
                if not isinstance(datatype_term, IRI):
                    raise ParseError("datatype must be an IRI", line=token.line)
                return Literal(lexical, datatype=datatype_term)
            return Literal(lexical)
        if token.kind == "integer":
            return Literal(token.text, datatype=XSD_INTEGER)
        if token.kind == "decimal":
            return Literal(token.text, datatype=XSD_DECIMAL)
        if token.kind == "double":
            return Literal(token.text, datatype=XSD_DOUBLE)
        if token.kind == "boolean":
            return Literal(token.text, datatype=XSD_BOOLEAN)
        raise ParseError(f"invalid {position} term: {token.text!r}", line=token.line)

    def _resolve_iri(self, iri: str) -> str:
        if self._base and "://" not in iri and not iri.startswith("urn:"):
            return self._base + iri
        return iri


def parse_turtle(text: str, graph: Graph | None = None, prefixes: PrefixMap | None = None) -> Graph:
    """Parse a Turtle document (see module docstring for the supported subset)."""
    if graph is None:
        graph = Graph()
    if prefixes is None:
        prefixes = PrefixMap()
    tokens = _tokenize(text)
    return _TurtleParser(tokens, graph, prefixes).parse()


def serialize_turtle(graph: Graph, prefixes: PrefixMap | None = None) -> str:
    """Serialize a graph to Turtle, grouping triples by subject.

    Blank-node subjects/objects are written with ``_:`` labels; literals use
    shorthand where Turtle allows it.
    """
    prefixes = prefixes or PrefixMap()

    def render(term: Term) -> str:
        if isinstance(term, IRI):
            if term == _RDF_TYPE:
                return "a"
            short = prefixes.shrink(term)
            # Only emit the prefixed form when it is a valid pname the
            # parser accepts back (local parts with '/', '#', ... are not).
            return short if short and _PNAME_RE.match(short) else term.n3()
        if isinstance(term, Literal):
            if term.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_BOOLEAN) and term.language is None:
                # Shorthand only when re-parsing restores the same datatype:
                # a double without an exponent reads back as a decimal (and a
                # decimal without a dot as an integer), so those keep the
                # explicit form.
                lexical = term.lexical
                if term.datatype == XSD_DOUBLE and not ("e" in lexical or "E" in lexical):
                    return term.n3()
                if term.datatype == XSD_DECIMAL and "." not in lexical:
                    return term.n3()
                return lexical
            return term.n3()
        if isinstance(term, BlankNode):
            return term.n3()
        raise SerializationError(f"cannot serialize term {term!r}")

    lines: List[str] = []
    for prefix, namespace in sorted(prefixes, key=lambda item: item[0]):
        lines.append(f"@prefix {prefix}: <{namespace.base}> .")
    if lines:
        lines.append("")

    by_subject: dict[Term, List[Tuple[Term, Term]]] = {}
    for triple in graph:
        by_subject.setdefault(triple.subject, []).append((triple.predicate, triple.object))

    for subject in sorted(by_subject, key=lambda term: term.n3()):
        pairs = sorted(by_subject[subject], key=lambda pair: (pair[0].n3(), pair[1].n3()))
        entries = [f"{render(predicate)} {render(object_)}" for predicate, object_ in pairs]
        body = " ;\n    ".join(entries)
        lines.append(f"{render(subject)} {body} .")
    return "\n".join(lines) + ("\n" if lines else "")


def load_turtle(path: str, graph: Graph | None = None) -> Graph:
    """Load a Turtle file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_turtle(handle.read(), graph)


def dump_turtle(graph: Graph, path: str, prefixes: PrefixMap | None = None) -> None:
    """Write a graph to a Turtle file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize_turtle(graph, prefixes))
