"""Triples and triple patterns.

A :class:`Triple` is a ground RDF statement (no variables); a
:class:`TriplePattern` may contain :class:`~repro.rdf.terms.Variable` in any
position and is the building block of BGP queries.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple, Union

from repro.errors import InvalidTripleError
from repro.rdf.terms import IRI, BlankNode, Literal, Term, TermOrVariable, Variable

__all__ = ["Triple", "TriplePattern", "Binding"]

SubjectTerm = Union[IRI, BlankNode]
PredicateTerm = IRI
ObjectTerm = Union[IRI, BlankNode, Literal]

#: A variable binding: maps variables to ground terms.
Binding = Dict[Variable, Term]


class Triple:
    """A ground RDF triple ``(subject, predicate, object)``.

    Positional constraints of RDF are enforced: the subject is an IRI or
    blank node, the predicate an IRI, and the object an IRI, blank node or
    literal.  Triples are immutable and hashable.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: SubjectTerm, predicate: PredicateTerm, object: ObjectTerm):
        if not isinstance(subject, (IRI, BlankNode)):
            raise InvalidTripleError(
                f"triple subject must be an IRI or blank node, got {type(subject).__name__}"
            )
        if not isinstance(predicate, IRI):
            raise InvalidTripleError(
                f"triple predicate must be an IRI, got {type(predicate).__name__}"
            )
        if not isinstance(object, (IRI, BlankNode, Literal)):
            raise InvalidTripleError(
                f"triple object must be an IRI, blank node or literal, got {type(object).__name__}"
            )
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)

    def __setattr__(self, name, value):
        raise AttributeError("Triple instances are immutable")

    def __reduce__(self):
        # The immutability guard breaks default slots unpickling; rebuild
        # through the constructor (terms pickle on their own).
        return (Triple, (self.subject, self.predicate, self.object))

    def as_tuple(self) -> Tuple[SubjectTerm, PredicateTerm, ObjectTerm]:
        return (self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self) -> Iterator[Term]:
        return iter(self.as_tuple())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Triple) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Triple({self.subject.n3()} {self.predicate.n3()} {self.object.n3()})"


class TriplePattern:
    """A triple pattern: each position holds a ground term or a variable.

    Triple patterns support:

    * :meth:`variables` — the set of variables occurring in the pattern;
    * :meth:`matches` — whether a ground triple matches the pattern under an
      optional pre-existing binding;
    * :meth:`bind` — extend a binding with the assignments induced by a
      matching triple;
    * :meth:`substitute` — apply a binding, producing a new (possibly ground)
      pattern.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(
        self,
        subject: TermOrVariable,
        predicate: TermOrVariable,
        object: TermOrVariable,
    ):
        if isinstance(subject, Literal):
            raise InvalidTripleError("a literal cannot appear in subject position")
        if isinstance(predicate, (Literal, BlankNode)):
            raise InvalidTripleError("the predicate must be an IRI or a variable")
        for name, term in (("subject", subject), ("predicate", predicate), ("object", object)):
            if not isinstance(term, Term):
                raise InvalidTripleError(f"pattern {name} must be a Term, got {type(term).__name__}")
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)

    def __setattr__(self, name, value):
        raise AttributeError("TriplePattern instances are immutable")

    def __reduce__(self):
        # See Triple.__reduce__: constructor-based pickling around the guard.
        return (TriplePattern, (self.subject, self.predicate, self.object))

    # -- introspection -----------------------------------------------------

    def as_tuple(self) -> Tuple[TermOrVariable, TermOrVariable, TermOrVariable]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> Set[Variable]:
        return {term for term in self.as_tuple() if isinstance(term, Variable)}

    def is_ground(self) -> bool:
        return not self.variables()

    def to_triple(self) -> Triple:
        """Convert a ground pattern into a :class:`Triple`."""
        if not self.is_ground():
            raise InvalidTripleError(f"pattern is not ground: {self.n3()}")
        return Triple(self.subject, self.predicate, self.object)  # type: ignore[arg-type]

    # -- matching ----------------------------------------------------------

    def matches(self, triple: Triple, binding: Optional[Binding] = None) -> bool:
        """Return True when ``triple`` matches this pattern.

        When ``binding`` is given, variables already bound must match the
        corresponding triple component.
        """
        return self.bind(triple, binding) is not None

    def bind(self, triple: Triple, binding: Optional[Binding] = None) -> Optional[Binding]:
        """Return the extension of ``binding`` induced by matching ``triple``.

        Returns ``None`` when the triple does not match.  The input binding
        is never mutated.
        """
        result: Binding = dict(binding) if binding else {}
        for pattern_term, triple_term in zip(self.as_tuple(), triple.as_tuple()):
            if isinstance(pattern_term, Variable):
                bound = result.get(pattern_term)
                if bound is None:
                    result[pattern_term] = triple_term
                elif bound != triple_term:
                    return None
            elif pattern_term != triple_term:
                return None
        return result

    def substitute(self, binding: Binding) -> "TriplePattern":
        """Return a copy of the pattern with bound variables replaced."""

        def replace(term: TermOrVariable) -> TermOrVariable:
            if isinstance(term, Variable) and term in binding:
                return binding[term]  # type: ignore[return-value]
            return term

        return TriplePattern(replace(self.subject), replace(self.predicate), replace(self.object))

    # -- presentation ------------------------------------------------------

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TriplePattern) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(("TriplePattern",) + self.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover
        return f"TriplePattern({self.subject.n3()} {self.predicate.n3()} {self.object.n3()})"
