"""Multi-tenant, snapshot-isolated concurrent serving layer.

This package turns the single-session OLAP engine into a service:

* :class:`~repro.serving.service.OLAPService` — the asyncio front-end
  with bounded admission (typed rejections), per-tenant sessions over
  one shared graph, and a single writer publishing updates.
* :class:`~repro.serving.generations.GenerationManager` — the MVCC core:
  immutable published graph generations with pin/drain/retire lifecycle,
  spooled as memory-mapped snapshots when numpy is available and as heap
  copies otherwise.

See ``docs/guides/serving.md`` for the tour.
"""

from repro.serving.generations import (
    GenerationManager,
    GraphGeneration,
    resolve_publish_mode,
)
from repro.serving.service import (
    OLAPService,
    PublishResult,
    ServedResult,
    ServiceStats,
    TenantState,
)

__all__ = [
    "GenerationManager",
    "GraphGeneration",
    "resolve_publish_mode",
    "OLAPService",
    "PublishResult",
    "ServedResult",
    "ServiceStats",
    "TenantState",
]
