"""MVCC graph generations: publish, pin, drain, retire.

The serving layer never lets a reader observe a half-applied update.  The
single writer owns a mutable heap :class:`~repro.rdf.graph.Graph` (the
authoritative instance) and *publishes* immutable **generations** of it;
every admitted query pins the generation that is current at admission time
and keeps answering against it even while the writer applies deltas and
publishes successors.  A generation is retired — its snapshot file
unlinked, its per-tenant sessions closed — only when it is no longer
current *and* its last pinned reader has drained.

Two publication modes:

``snapshot``
    :func:`repro.storage.snapshot.save_snapshot` serializes the writer
    graph into a spool file and the generation re-opens it as a read-only
    memory-mapped :class:`~repro.storage.mapped.SnapshotGraph`.  Readers
    share the file's pages through the OS page cache, the columnar kernels
    run zero-copy over it, and an accidental mutation raises
    :class:`~repro.errors.ReadOnlyGraphError` — isolation is enforced by
    construction, not convention.  Requires numpy (the ``[fast]`` extra).
``heap``
    The writer graph is deep-copied per publication
    (:meth:`~repro.rdf.graph.Graph.copy`).  O(instance) per publish and no
    read-only enforcement, but dependency-free — the fallback the
    ``auto`` mode selects when numpy is missing.

Version stamps carry through either way: a published generation's graph
reports the writer's :attr:`~repro.rdf.graph.Graph.version` at publish
time, and its change log is truncated at that version, so the PR-2/3
version-stamped cache machinery on top of it behaves exactly as it would
on a frozen live graph (``deltas_since`` of any older stamp answers the
honest full-invalidation ``None``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from typing import Callable, Dict, List, Optional

from repro.errors import ServingError
from repro.rdf.graph import Graph

__all__ = ["GraphGeneration", "GenerationManager", "resolve_publish_mode"]


def resolve_publish_mode(mode: str = "auto") -> str:
    """Resolve ``auto`` to ``snapshot`` when numpy is importable, else ``heap``.

    Explicit ``"snapshot"`` / ``"heap"`` pass through unchanged (a
    snapshot request without numpy will surface the usual
    :class:`~repro.errors.ConfigurationError` naming the ``[fast]`` extra
    at first publish).
    """
    if mode not in ("auto", "snapshot", "heap"):
        raise ServingError(
            f"unknown publish mode {mode!r}; expected auto, snapshot or heap"
        )
    if mode != "auto":
        return mode
    try:
        import numpy  # noqa: F401
    except ImportError:
        return "heap"
    return "snapshot"


class GraphGeneration:
    """One published, immutable graph version plus its reader pin count.

    ``pins`` counts the in-flight readers (plus the manager's own pin while
    the generation is current); the generation's resources are released
    only after the count drains to zero *and* a successor has been
    published.  Instances are handed out by :class:`GenerationManager` —
    pin/unpin through the manager, never directly.
    """

    __slots__ = ("version", "graph", "path", "pins", "retired", "served")

    def __init__(self, version: int, graph: Graph, path: Optional[str] = None):
        #: The writer graph's change counter at publish time.
        self.version = version
        #: The immutable published view (SnapshotGraph or frozen heap copy).
        self.graph = graph
        #: Spool file backing a snapshot-mode generation (None in heap mode).
        self.path = path
        self.pins = 0
        self.retired = False
        #: Queries answered against this generation (observability).
        self.served = 0

    def __repr__(self) -> str:  # pragma: no cover
        state = "retired" if self.retired else f"{self.pins} pins"
        return f"GraphGeneration(v{self.version}, {len(self.graph)} triples, {state})"


class GenerationManager:
    """Owns the writer graph and the chain of published generations.

    Parameters
    ----------
    instance:
        The mutable authoritative graph.  Only the writer (through
        :meth:`~repro.serving.service.OLAPService.update`) may mutate it.
    spool_dir:
        Directory for snapshot-mode spool files.  Defaults to a private
        temporary directory that is removed on :meth:`close`.
    mode:
        ``"auto"`` (default) / ``"snapshot"`` / ``"heap"`` — see
        :func:`resolve_publish_mode`.
    on_retire:
        Callback invoked with each :class:`GraphGeneration` right before
        its resources are released (the service closes that generation's
        per-tenant sessions here).
    """

    def __init__(
        self,
        instance: Graph,
        spool_dir: Optional[str] = None,
        mode: str = "auto",
        on_retire: Optional[Callable[[GraphGeneration], None]] = None,
    ):
        self._writer_graph = instance
        self._mode = resolve_publish_mode(mode)
        self._on_retire = on_retire
        self._owns_spool = spool_dir is None and self._mode == "snapshot"
        if spool_dir is None and self._mode == "snapshot":
            spool_dir = tempfile.mkdtemp(prefix="repro-serving-")
        elif spool_dir is not None:
            os.makedirs(spool_dir, exist_ok=True)
        self._spool_dir = spool_dir
        self._lock = threading.Lock()
        self._closed = False
        self.published_count = 0
        self.retired_count = 0
        self._live: List[GraphGeneration] = []
        self._current = self._publish_locked()

    # -- introspection -------------------------------------------------

    @property
    def mode(self) -> str:
        """The resolved publication mode: ``"snapshot"`` or ``"heap"``."""
        return self._mode

    @property
    def writer_graph(self) -> Graph:
        """The mutable authoritative graph (single-writer discipline)."""
        return self._writer_graph

    @property
    def current(self) -> GraphGeneration:
        return self._current

    def live_generations(self) -> List[GraphGeneration]:
        """Generations not yet retired, oldest first (observability)."""
        with self._lock:
            return list(self._live)

    # -- pinning -------------------------------------------------------

    def pin_current(self) -> GraphGeneration:
        """Pin and return the current generation (one reader admitted).

        The pin guarantees the generation's graph, spool file and sessions
        stay alive until the matching :meth:`unpin` — even across any
        number of intervening publications.
        """
        with self._lock:
            if self._closed:
                raise ServingError("generation manager is closed")
            generation = self._current
            generation.pins += 1
            return generation

    def unpin(self, generation: GraphGeneration) -> None:
        """Release one reader pin; retire the generation when drained."""
        retire = None
        with self._lock:
            if generation.pins <= 0:  # pragma: no cover - double-unpin guard
                raise ServingError(
                    f"generation v{generation.version} unpinned more times than pinned"
                )
            generation.pins -= 1
            if generation.pins == 0 and generation is not self._current:
                retire = generation
        if retire is not None:
            self._retire(retire)

    # -- publication ---------------------------------------------------

    def publish(self) -> GraphGeneration:
        """Publish the writer graph's current state as a new generation.

        No-op (returns the current generation) when the writer graph has
        not changed since the last publication.  The previous generation
        loses the manager's own pin and is retired as soon as its last
        reader drains.
        """
        with self._lock:
            if self._closed:
                raise ServingError("generation manager is closed")
            if self._writer_graph.version == self._current.version:
                return self._current
            previous = self._current
            self._current = self._publish_locked()
            previous.pins -= 1  # the manager's currency pin
            retire = previous if previous.pins == 0 else None
        if retire is not None:
            self._retire(retire)
        return self._current

    def _publish_locked(self) -> GraphGeneration:
        version = self._writer_graph.version
        if self._mode == "snapshot":
            from repro.storage.snapshot import load_snapshot, save_snapshot

            path = os.path.join(self._spool_dir, f"gen-{version:010d}.snap")
            save_snapshot(self._writer_graph, path)
            graph: Graph = load_snapshot(path, mmap=True)
        else:
            path = None
            graph = self._writer_graph.copy()
            # The copy re-adds every triple, so its change counter restarts
            # at the triple count.  Re-stamp it with the writer's version
            # (and truncate the log there) so the version-stamped cache
            # machinery sees one consistent version axis across modes.
            graph._version = version
            graph._log_base = version
            graph._change_log.clear()
        generation = GraphGeneration(version, graph, path)
        generation.pins = 1  # the manager's own pin while current
        self.published_count += 1
        self._live.append(generation)
        return generation

    # -- retirement ----------------------------------------------------

    def _retire(self, generation: GraphGeneration) -> None:
        generation.retired = True
        self.retired_count += 1
        with self._lock:
            if generation in self._live:
                self._live.remove(generation)
        if self._on_retire is not None:
            self._on_retire(generation)
        if generation.path is not None:
            # Unlinking is safe while readers that still hold the graph
            # object keep the mmap open (POSIX keeps the pages valid).
            try:
                os.unlink(generation.path)
            except OSError:  # pragma: no cover - already gone / spool removed
                pass

    def close(self) -> None:
        """Retire every generation and remove an owned spool directory.

        Callers must have drained all readers first (the service awaits its
        in-flight queries before closing the manager); a still-pinned
        generation is retired anyway — this is final shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            remaining = list(self._live)
            self._live = []
        for generation in remaining:
            self._retire(generation)
        if self._owns_spool and self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GenerationManager(mode={self._mode}, current=v{self._current.version}, "
            f"{self.published_count} published, {self.retired_count} retired)"
        )
