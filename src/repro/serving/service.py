"""Asyncio front-end serving analytical queries to many tenants at once.

:class:`OLAPService` is the first layer of the system that is concurrent
end to end.  It composes the pieces the engine PRs built — snapshot
storage, version-stamped caches, per-session planners — into a
multi-tenant serving loop:

* **Admission control.**  Queries are *rejected, never queued unboundedly*:
  a service-wide waiting-depth bound and a per-tenant concurrency cap each
  raise a typed :class:`~repro.errors.AdmissionError` subclass
  (:class:`~repro.errors.QueueFullError`,
  :class:`~repro.errors.TenantBusyError`,
  :class:`~repro.errors.ServiceClosedError`), and every rejection is
  counted per type in :class:`ServiceStats` — load shedding a client can
  reason about.
* **Snapshot-isolated reads.**  At admission each query pins the current
  :class:`~repro.serving.generations.GraphGeneration`; it is answered
  against that frozen graph version even while the writer publishes
  successors, and the generation is retired only when its last reader
  drains.  The :class:`~repro.serving.service.ServedResult` carries the
  generation, so callers can verify the answer against from-scratch
  evaluation *at the version it was served from*.
* **Per-tenant sessions sharing one graph.**  Each (tenant, generation)
  pair lazily gets its own :class:`~repro.olap.session.OLAPSession` —
  private result cache, planner and history — over the *shared* published
  graph; tenants are isolated in state, not in data.  Two queries of one
  tenant may run concurrently in the same session (the result cache is
  lock-protected for exactly this).
* **A single writer.**  :meth:`OLAPService.update` applies triple deltas
  to the authoritative heap graph under the writer lock and republishes;
  readers never observe a half-applied batch.

The service is an ``async`` object: construct it, then ``async with`` it
(or call :meth:`aclose` yourself).  Query execution itself runs on a
bounded thread pool (`max_concurrency` threads), so the event loop stays
responsive while the engine works.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import (
    QueueFullError,
    ServiceClosedError,
    ServingError,
    TenantBusyError,
)
from repro.analytics.query import AnalyticalQuery
from repro.analytics.schema import AnalyticalSchema
from repro.olap.cache import DEFAULT_CAPACITY
from repro.olap.cube import Cube
from repro.olap.session import OLAPSession
from repro.rdf.graph import Graph
from repro.serving.generations import GenerationManager, GraphGeneration

__all__ = ["OLAPService", "ServedResult", "PublishResult", "ServiceStats", "TenantState"]


@dataclass
class ServedResult:
    """One answered query with its provenance.

    ``graph_version`` is the generation version the answer is consistent
    with; ``generation`` keeps that generation's graph reachable, so a
    differential check (``scratch evaluation at the served version``) is
    always possible, even after the service has moved on.
    """

    tenant: str
    query: AnalyticalQuery
    cube: Cube
    graph_version: int
    generation: GraphGeneration
    strategy: str
    seconds: float
    waited_seconds: float

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ServedResult({self.tenant!r}, {self.query.name!r}, "
            f"{len(self.cube)} cells @ v{self.graph_version}, {self.strategy})"
        )


@dataclass
class PublishResult:
    """Outcome of one writer update."""

    mutations: int
    published: bool
    version: int


class ServiceStats:
    """Served / rejected / published accounting of one service."""

    __slots__ = (
        "served",
        "rejected_queue_full",
        "rejected_tenant_busy",
        "rejected_closed",
        "updates",
        "update_failures",
        "publishes",
        "served_by_tenant",
    )

    def __init__(self) -> None:
        self.served = 0
        self.rejected_queue_full = 0
        self.rejected_tenant_busy = 0
        self.rejected_closed = 0
        self.updates = 0
        #: Batches that raised and were rolled back — never counted in
        #: ``updates``, which only ever counts batches readers can observe.
        self.update_failures = 0
        self.publishes = 0
        self.served_by_tenant: Dict[str, int] = {}

    @property
    def rejected(self) -> int:
        """Total rejections across all typed causes."""
        return self.rejected_queue_full + self.rejected_tenant_busy + self.rejected_closed

    def as_dict(self) -> Dict[str, object]:
        return {
            "served": self.served,
            "rejected": self.rejected,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_tenant_busy": self.rejected_tenant_busy,
            "rejected_closed": self.rejected_closed,
            "updates": self.updates,
            "update_failures": self.update_failures,
            "publishes": self.publishes,
            "served_by_tenant": dict(self.served_by_tenant),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ServiceStats(served={self.served}, rejected={self.rejected}, "
            f"updates={self.updates}, publishes={self.publishes})"
        )


@dataclass
class TenantState:
    """Per-tenant bookkeeping: concurrency cap and per-generation sessions."""

    name: str
    limit: int
    inflight: int = 0
    served: int = 0
    #: Generation version -> that generation's private OLAPSession.
    sessions: Dict[int, OLAPSession] = field(default_factory=dict)


class OLAPService:
    """Concurrent, multi-tenant, snapshot-isolated OLAP serving layer.

    Parameters
    ----------
    instance:
        The mutable authoritative AnS instance graph (the writer's copy).
    schema:
        Optional analytical schema shared by every tenant session.
    max_concurrency:
        Queries executing simultaneously (the executor thread count).
    max_queue_depth:
        Admitted queries allowed to *wait* for an execution slot beyond
        the ``max_concurrency`` running ones; the next is rejected with
        :class:`~repro.errors.QueueFullError`.
    per_tenant_limit:
        In-flight queries (waiting + running) allowed per tenant before
        :class:`~repro.errors.TenantBusyError`.
    cache_capacity:
        Result-cache bound of each per-tenant session.
    engine:
        Execution engine pin passed to every session (None = auto).
    publish_mode / spool_dir:
        Generation publication knobs — see
        :class:`~repro.serving.generations.GenerationManager`.

    Examples
    --------
    >>> import asyncio
    >>> from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
    >>> dataset = generic_dataset(GenericConfig(facts=30, dimensions=2, seed=3))
    >>> query = generic_query(dataset.config, aggregate="count")
    >>> async def serve_one():
    ...     async with OLAPService(dataset.instance, dataset.schema) as service:
    ...         result = await service.query("tenant-a", query)
    ...         return len(result.cube) > 0, result.graph_version == service.current_version
    >>> asyncio.run(serve_one())
    (True, True)
    """

    def __init__(
        self,
        instance: Graph,
        schema: Optional[AnalyticalSchema] = None,
        max_concurrency: int = 4,
        max_queue_depth: int = 16,
        per_tenant_limit: int = 2,
        cache_capacity: int = DEFAULT_CAPACITY,
        engine: Optional[str] = None,
        publish_mode: str = "auto",
        spool_dir: Optional[str] = None,
    ):
        if max_concurrency < 1:
            raise ServingError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue_depth < 0:
            raise ServingError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        if per_tenant_limit < 1:
            raise ServingError(f"per_tenant_limit must be >= 1, got {per_tenant_limit}")
        self.schema = schema
        self._max_concurrency = int(max_concurrency)
        self._max_queue_depth = int(max_queue_depth)
        self._per_tenant_limit = int(per_tenant_limit)
        self._cache_capacity = cache_capacity
        self._engine = engine
        self._generations = GenerationManager(
            instance,
            spool_dir=spool_dir,
            mode=publish_mode,
            on_retire=self._close_generation_sessions,
        )
        self._tenants: Dict[str, TenantState] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_concurrency, thread_name_prefix="repro-serving"
        )
        self._waiting = 0
        self._inflight = 0
        self._closed = False
        self.stats = ServiceStats()
        # asyncio primitives bind to a running loop; created lazily on the
        # first awaited call (and re-created if that loop has since closed,
        # so a service object survives consecutive asyncio.run() calls as
        # long as it is idle in between).
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._writer_lock: Optional[asyncio.Lock] = None
        self._drained: Optional[asyncio.Event] = None

    # -- introspection -------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def current_version(self) -> int:
        """The generation version new queries are admitted against."""
        return self._generations.current.version

    @property
    def generations(self) -> GenerationManager:
        return self._generations

    @property
    def max_concurrency(self) -> int:
        return self._max_concurrency

    @property
    def max_queue_depth(self) -> int:
        return self._max_queue_depth

    @property
    def per_tenant_limit(self) -> int:
        return self._per_tenant_limit

    @property
    def inflight(self) -> int:
        """Admitted queries not yet completed (waiting + running)."""
        return self._inflight

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def tenant(self, name: str) -> TenantState:
        """The (existing or fresh) bookkeeping record for ``name``."""
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = TenantState(name, self._per_tenant_limit)
        return state

    # -- async plumbing ------------------------------------------------

    def _ensure_loop_state(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        if self._loop is not None and not self._loop.is_closed() and self._inflight > 0:
            raise ServingError(
                "OLAPService is bound to a different running event loop; "
                "drive one service from one loop"
            )
        self._loop = loop
        self._slots = asyncio.Semaphore(self._max_concurrency)
        self._writer_lock = asyncio.Lock()
        # Signalled whenever ``_inflight`` drops to zero; aclose() awaits it
        # instead of polling.  Starts set: a service with nothing in flight
        # is already drained.
        self._drained = asyncio.Event()
        if self._inflight == 0:
            self._drained.set()

    async def __aenter__(self) -> "OLAPService":
        self._ensure_loop_state()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- reads ---------------------------------------------------------

    async def query(
        self,
        tenant: str,
        query: AnalyticalQuery,
        materialize_partial: Optional[bool] = None,
    ) -> ServedResult:
        """Admit, execute and answer ``query`` for ``tenant``.

        Raises a typed :class:`~repro.errors.AdmissionError` subclass when
        the query cannot be admitted; otherwise answers against the
        generation pinned at admission time, no matter how many updates
        land while the query waits or runs.
        """
        if self._closed:
            self.stats.rejected_closed += 1
            raise ServiceClosedError()
        self._ensure_loop_state()
        state = self.tenant(tenant)
        if state.inflight >= state.limit:
            self.stats.rejected_tenant_busy += 1
            raise TenantBusyError(tenant, state.inflight, state.limit)
        # ``_waiting`` counts queries genuinely blocked on an execution slot
        # (admission never suspends between this check and the semaphore, so
        # the counter is exact).  Reject only a query that *would* wait into
        # a full queue — one that would run immediately is always admitted.
        running = self._inflight - self._waiting
        if running >= self._max_concurrency and self._waiting >= self._max_queue_depth:
            self.stats.rejected_queue_full += 1
            raise QueueFullError(self._waiting, self._max_queue_depth)
        state.inflight += 1
        self._inflight += 1
        self._waiting += 1
        self._drained.clear()
        generation = self._generations.pin_current()
        admitted = time.perf_counter()
        try:
            try:
                await self._slots.acquire()
            finally:
                self._waiting -= 1
            try:
                started = time.perf_counter()
                session = self._session_for(state, generation)
                cube = await self._loop.run_in_executor(
                    self._executor, self._execute, session, query, materialize_partial
                )
                finished = time.perf_counter()
            finally:
                self._slots.release()
            generation.served += 1
            state.served += 1
            self.stats.served += 1
            self.stats.served_by_tenant[tenant] = (
                self.stats.served_by_tenant.get(tenant, 0) + 1
            )
            return ServedResult(
                tenant=tenant,
                query=query,
                cube=cube,
                graph_version=generation.version,
                generation=generation,
                strategy=session.history[-1].strategy if session.history else "scratch",
                seconds=finished - started,
                waited_seconds=started - admitted,
            )
        finally:
            state.inflight -= 1
            self._inflight -= 1
            if self._inflight == 0 and self._drained is not None:
                self._drained.set()
            self._generations.unpin(generation)

    @staticmethod
    def _execute(
        session: OLAPSession, query: AnalyticalQuery, materialize_partial: Optional[bool]
    ) -> Cube:
        return session.execute(query, materialize_partial=materialize_partial)

    def _session_for(self, state: TenantState, generation: GraphGeneration) -> OLAPSession:
        session = state.sessions.get(generation.version)
        if session is None:
            session = OLAPSession(
                generation.graph,
                self.schema,
                cache_capacity=self._cache_capacity,
                engine=self._engine,
            )
            state.sessions[generation.version] = session
        return session

    # -- writes --------------------------------------------------------

    async def update(
        self,
        add: Iterable = (),
        remove: Iterable = (),
        mutate: Optional[Callable[[Graph], object]] = None,
        publish: bool = True,
    ) -> PublishResult:
        """Apply a delta to the authoritative graph and republish.

        The single-writer discipline is enforced with an async lock:
        concurrent callers serialize, and the mutation + publication runs
        on the executor, so the event loop keeps admitting reads (which
        stay snapshot-isolated on their pinned generations throughout).
        ``mutate`` receives the writer graph for arbitrary batches beyond
        plain ``add``/``remove`` triples; with ``publish=False`` the delta
        is applied but only becomes visible at the next published update.

        Batches are **atomic**: when any triple of the batch (or the
        ``mutate`` callback) raises, the already-applied prefix is rolled
        back before the error propagates, so a later successful update can
        never publish a torn batch.  Failed batches count in
        ``stats.update_failures``, never in ``stats.updates``.
        """
        if self._closed:
            self.stats.rejected_closed += 1
            raise ServiceClosedError("the serving layer is closed to writes")
        self._ensure_loop_state()
        add = tuple(add)
        remove = tuple(remove)
        async with self._writer_lock:
            writer = self._generations.writer_graph

            def apply_and_publish() -> PublishResult:
                before = writer.version
                applied: List[tuple] = []
                ran_mutate = False
                try:
                    for triple in remove:
                        if writer.remove(triple):
                            applied.append((-1, triple))
                    for triple in add:
                        if writer.add(triple):
                            applied.append((1, triple))
                    if mutate is not None:
                        ran_mutate = True
                        mutate(writer)
                except Exception as error:
                    self._roll_back(writer, before, applied, ran_mutate, error)
                    raise
                mutations = writer.version - before
                previous = self._generations.current.version
                if publish:
                    generation = self._generations.publish()
                    return PublishResult(
                        mutations=mutations,
                        published=generation.version != previous,
                        version=generation.version,
                    )
                return PublishResult(mutations=mutations, published=False, version=previous)

            try:
                result = await self._loop.run_in_executor(self._executor, apply_and_publish)
            except Exception:
                self.stats.update_failures += 1
                raise
        self.stats.updates += 1
        if result.published:
            self.stats.publishes += 1
        return result

    @staticmethod
    def _roll_back(
        writer: Graph, before: int, applied: List[tuple], ran_mutate: bool, error: Exception
    ) -> None:
        """Undo the applied prefix of a failed update batch.

        The explicit ``add``/``remove`` lists are undone from the recorded
        prefix in reverse order.  A failed ``mutate`` callback may have made
        arbitrary effective mutations, so its rollback replays the graph's
        own coalesced deltas since the batch started (which subsume the
        prefix list); when the change log cannot reconstruct them (overflow
        inside one batch, or ``clear()``), the writer really is torn and a
        :class:`~repro.errors.ServingError` chains the original error
        rather than silently leaving half a batch behind.
        """
        if not ran_mutate:
            for sign, triple in reversed(applied):
                if sign > 0:
                    writer.remove(triple)
                else:
                    writer.add(triple)
            return
        delta = writer.deltas_since(before)
        if delta is None:
            raise ServingError(
                "update batch failed and its mutate() effects cannot be rolled "
                "back (the change log cannot reconstruct the batch); the writer "
                "graph is torn — rebuild it before publishing again"
            ) from error
        decode = writer.decode_id
        for s, p, o in delta.added:
            writer.remove((decode(s), decode(p), decode(o)))
        for s, p, o in delta.removed:
            writer.add((decode(s), decode(p), decode(o)))

    def stream_ingestor(self, **kwargs):
        """A :class:`~repro.ingest.stream.StreamIngestor` sinking into this
        service: micro-batches flow through the single writer's atomic
        :meth:`update` and publish a new generation per batch.  Keyword
        arguments (``capacity``, ``batch_size``, ``max_batch_age``,
        ``backpressure``, ``scheduler``) pass through to the ingestor.
        """
        from repro.ingest.stream import StreamIngestor

        return StreamIngestor(self, **kwargs)

    # -- lifecycle -----------------------------------------------------

    def _close_generation_sessions(self, generation: GraphGeneration) -> None:
        """Retire hook: drop every tenant's session for a drained generation."""
        for state in self._tenants.values():
            session = state.sessions.pop(generation.version, None)
            if session is not None:
                session.close()

    async def aclose(self) -> None:
        """Stop admitting queries, drain in-flight work, release everything.

        Idempotent.  New queries (and updates) are rejected with
        :class:`~repro.errors.ServiceClosedError` the moment closing
        starts; queries already admitted finish normally and are awaited.
        """
        if self._closed:
            return
        self._closed = True
        # Wait on the drain event (set when the last in-flight query's
        # bookkeeping completes) instead of a sleep-poll loop: close wakes
        # the moment the service drains, not up to a poll period later.
        if self._inflight > 0 and self._drained is not None:
            await self._drained.wait()
        for state in self._tenants.values():
            for session in state.sessions.values():
                session.close()
            state.sessions.clear()
        self._generations.close()
        self._executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OLAPService(v{self.current_version}, {len(self._tenants)} tenants, "
            f"{self.stats.served} served, {self.stats.rejected} rejected)"
        )
