"""Grouping and aggregation (γ).

``group_aggregate`` implements the γ operator used throughout the paper:
group the rows of a relation by a list of grouping columns and apply an
aggregation function ⊕ to the bag of values of a measure column within each
group.  Facts whose measure bag is empty simply produce no group (per
Definition 1 the aggregated measure is then undefined); with the γ operator
this happens naturally because such facts contribute no rows.

``group_rows`` is the lower-level helper returning the groups themselves,
used by the analytics evaluator when it needs to post-process bags (e.g. to
deduplicate measure keys in Algorithm 1).

``group_partial_states`` is the per-shard half of a **partitioned** γ: it
produces one mergeable :class:`~repro.algebra.aggregates.PartialAggregate`
state per group instead of a final value; ``merge_group_states`` combines
the state maps of disjoint row partitions and ``finalize_group_states``
turns the merged map into the rows γ would have produced serially.  Group
keys stay in the relation's value space (term ids group exactly like terms
— the encoding is bijective and shards share one dictionary), so merging
never decodes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AggregationError, UnknownColumnError
from repro.algebra.aggregates import AggregateFunction, get_aggregate, partial_aggregate
from repro.algebra.columnar import (
    ArrayGroupStates,
    ColumnarIdRelation,
    group_reduce,
    group_states_columnar,
)
from repro.algebra.expressions import comparable, memoized_unary
from repro.algebra.relation import Relation, Row, relation_like, tuple_getter

__all__ = [
    "group_rows",
    "group_aggregate",
    "group_partial_states",
    "merge_group_states",
    "finalize_group_states",
    "aggregate_column",
    "POISONED_GROUP",
]


class _PoisonedGroup:
    """Sentinel state: the group's bag failed to prepare in some partition.

    Serial γ omits a group whose bag raises "undefined" (e.g. non-numeric
    values under ``sum``) — *as a whole*.  A partitioned γ only sees one
    shard's slice of the bag, so a failing slice must poison the group
    across every shard or the answer would depend on where the shard
    boundaries fell.  The sentinel absorbs merges and is dropped at
    finalize; pickling preserves identity across process boundaries.
    """

    __slots__ = ()

    def __reduce__(self):
        return (_poisoned_group, ())

    def __repr__(self) -> str:  # pragma: no cover
        return "POISONED_GROUP"


def _poisoned_group() -> "_PoisonedGroup":
    return POISONED_GROUP


POISONED_GROUP = _PoisonedGroup()


def group_rows(relation: Relation, by: Sequence[str]) -> Dict[Tuple, List[Row]]:
    """Partition rows by the values of the ``by`` columns.

    Returns a mapping from group key (tuple of values, in ``by`` order) to
    the list of full rows in that group, preserving input order within each
    group.
    """
    key_of = tuple_getter(relation.column_indexes(by))
    groups: Dict[Tuple, List[Row]] = {}
    for row in relation:
        groups.setdefault(key_of(row), []).append(row)
    return groups


def group_aggregate(
    relation: Relation,
    by: Sequence[str],
    measure: str,
    function,
    output_column: str = "v",
) -> Relation:
    """γ_{by, ⊕(measure)}: group and aggregate.

    Parameters
    ----------
    relation:
        Input bag relation.
    by:
        Grouping columns; they become the leading columns of the result.
    measure:
        Column whose values are aggregated within each group.
    function:
        Aggregate name (``"sum"``, ``"avg"``, ...) or
        :class:`~repro.algebra.aggregates.AggregateFunction`.
    output_column:
        Name of the aggregated column in the result (default ``"v"``).

    Groups whose measure bag raises "undefined on an empty bag" are omitted;
    this cannot happen when every row carries a measure value, but it can
    when callers pre-filter ``None`` measures.
    """
    aggregate: AggregateFunction = get_aggregate(function)
    measure_index = relation.column_index(measure)
    if output_column in by:
        raise UnknownColumnError(
            f"output column {output_column!r} clashes with a grouping column"
        )

    if isinstance(relation, ColumnarIdRelation):
        # Vectorized γ (reduceat over lexsorted group runs); unsupported
        # aggregates / non-numeric bags answer None and take the row path.
        reduced = group_reduce(relation, by, measure, aggregate, output_column)
        if reduced is not None:
            return reduced

    # On id-space relations the measure column holds term ids; the bag fed
    # to ⊕ must be the decoded values (memoized — measure literals repeat).
    # The cache stores the *comparable* form directly, which is what every
    # aggregate converts its inputs to anyway, so each distinct literal is
    # decoded and converted exactly once.
    decoder = relation.column_decoder(measure)
    decode = (
        memoized_unary(lambda value_id: comparable(decoder(value_id)))
        if decoder is not None
        else None
    )

    groups = group_rows(relation, by)
    output_columns = tuple(by) + (output_column,)
    rows: List[Row] = []
    if getattr(aggregate, "value_free", False):
        # count: the result is the bag's cardinality — no decoding, no
        # conversion, just counting the non-None measures per group.
        for key, group in groups.items():
            bag_size = sum(1 for row in group if row[measure_index] is not None)
            if bag_size:
                rows.append(key + (bag_size,))
        return relation_like(output_columns, rows, relation, plain_columns=(output_column,))
    for key, group in groups.items():
        values = [row[measure_index] for row in group if row[measure_index] is not None]
        if not values:
            continue
        if decode is not None:
            values = [decode(value) for value in values]
        try:
            aggregated = aggregate(values)
        except AggregationError:
            # Undefined aggregate (empty bag after filtering): skip the group,
            # mirroring Definition 1's "x^j does not contribute to the cube".
            continue
        rows.append(key + (aggregated,))
    # Group keys stay in their input space (ids group exactly like terms:
    # the encoding is bijective); the aggregated column is always plain.
    return relation_like(output_columns, rows, relation, plain_columns=(output_column,))


def group_partial_states(
    relation: Relation,
    by: Sequence[str],
    measure: str,
    function,
) -> Dict[Tuple, object]:
    """The per-partition half of γ: one mergeable state per group.

    Mirrors :func:`group_aggregate` — the same ``None`` filtering, the same
    memoized decode-and-convert of encoded measure values, the same
    skip-the-group answer to "undefined on an empty bag" — but stops at the
    :class:`~repro.algebra.aggregates.PartialAggregate` state so results of
    disjoint row partitions (fact shards) can be combined exactly.

    Raises :class:`AggregationError` when the aggregate has no registered
    partial form (callers should have checked :func:`partial_aggregate` and
    fallen back to a serial γ).
    """
    aggregate: AggregateFunction = get_aggregate(function)
    partial = partial_aggregate(aggregate)
    if partial is None:
        raise AggregationError(
            f"aggregate {aggregate.name!r} has no mergeable partial form; evaluate serially"
        )
    if isinstance(relation, ColumnarIdRelation):
        # Array-form states: one row per group across parallel arrays, so
        # shard merges concatenate + re-reduce instead of re-boxing.
        array_states = group_states_columnar(relation, by, measure, aggregate)
        if array_states is not None:
            return array_states
    measure_index = relation.column_index(measure)
    groups = group_rows(relation, by)
    states: Dict[Tuple, object] = {}

    if partial.wants_raw:
        # count / count_distinct: states are built from the raw column
        # values (term ids on encoded relations) — no decoding on the shard.
        for key, group in groups.items():
            values = [row[measure_index] for row in group if row[measure_index] is not None]
            if values:
                states[key] = partial.make(values)
        return states

    decoder = relation.column_decoder(measure)
    decode = (
        memoized_unary(lambda value_id: comparable(decoder(value_id)))
        if decoder is not None
        else None
    )
    for key, group in groups.items():
        values = [row[measure_index] for row in group if row[measure_index] is not None]
        if not values:
            continue
        if decode is not None:
            values = [decode(value) for value in values]
        try:
            states[key] = partial.make(aggregate.prepare(values))
        except AggregationError:
            # Same semantics as group_aggregate — an undefined aggregate
            # (e.g. non-numeric values under sum) omits the group — but the
            # omission must survive the merge: this shard only saw a slice
            # of the bag, and other shards' slices may prepare fine.
            states[key] = POISONED_GROUP
    return states


def merge_group_states(state_maps: Iterable, function):
    """Combine per-partition γ states (associative and commutative).

    Each partition contributes either a dict state map (the boxed form of
    :func:`group_partial_states`) or an
    :class:`~repro.algebra.columnar.ArrayGroupStates` (the columnar
    engine's array form).  All-array partitions merge vectorized —
    concatenate + re-reduce, no per-group boxing; a mix is aligned by
    boxing the array partitions first.
    """
    aggregate = get_aggregate(function)
    partial = partial_aggregate(aggregate)
    if partial is None:
        raise AggregationError(
            f"aggregate {aggregate.name!r} has no mergeable partial form; evaluate serially"
        )
    partitions = list(state_maps)
    if partitions and all(
        isinstance(states, ArrayGroupStates) for states in partitions
    ):
        merged_arrays = partitions[0]
        for states in partitions[1:]:
            merged_arrays = merged_arrays.merge(states)
        return merged_arrays
    merged: Dict[Tuple, object] = {}
    for states in partitions:
        if isinstance(states, ArrayGroupStates):
            states = states.to_dict()
        for key, state in states.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = state
            elif existing is POISONED_GROUP or state is POISONED_GROUP:
                merged[key] = POISONED_GROUP
            else:
                merged[key] = partial.merge(existing, state)
    return merged


def finalize_group_states(
    states,
    function,
    decode: Optional[Callable[[object], object]] = None,
) -> List[Row]:
    """Turn merged γ states into ``key + (aggregated value,)`` rows.

    ``states`` is a dict state map or an
    :class:`~repro.algebra.columnar.ArrayGroupStates`.  ``decode`` (id →
    term) is forwarded to raw-state aggregates (count_distinct) whose
    members are still encoded; pass the shared dictionary's decoder when
    the measure column was id-encoded.  Poisoned groups (undefined in some
    partition) are dropped, matching serial γ.
    """
    if isinstance(states, ArrayGroupStates):
        return states.finalize_rows()
    aggregate = get_aggregate(function)
    partial = partial_aggregate(aggregate)
    if partial is None:
        raise AggregationError(
            f"aggregate {aggregate.name!r} has no mergeable partial form; evaluate serially"
        )
    return [
        key + (partial.finalize(state, decode),)
        for key, state in states.items()
        if state is not POISONED_GROUP
    ]


def aggregate_column(relation: Relation, measure: str, function) -> object:
    """Aggregate a whole column (no grouping); raises on an empty relation."""
    aggregate = get_aggregate(function)
    decoder = relation.column_decoder(measure)
    values = [value for value in relation.column_values(measure) if value is not None]
    if decoder is not None:
        values = [decoder(value) for value in values]
    return aggregate(values)
