"""Bag-relational algebra operators: σ, π, δ, ⋈, ∪, rename.

Every operator is a pure function from relations to a new relation; inputs
are never mutated.  All operators have **bag semantics** (Section 3 of the
paper: "all relational algebra operators are assumed to have bag
semantics"); duplicate elimination is explicit via :func:`dedup` (δ).

Operators are *value-space preserving*: applied to id-space relations
(:class:`~repro.algebra.relation.IdRelation`) they compute on integer ids
and return id-space results carrying the encoding metadata forward, so the
whole ``pres(Q)``/``ans(Q)`` pipeline runs without decoding a single term.
Mixed-space inputs (e.g. an encoded ``pres(Q)`` joined with a relation
restored from disk) are aligned by materializing the encoded side first —
correctness over speed on that cold path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaMismatchError, UnknownColumnError
from repro.algebra.columnar import (
    ColumnarIdRelation,
    join_columnar,
    project_columnar,
    select_columnar,
)
from repro.algebra.expressions import RowPredicate, compile_predicate
from repro.algebra.relation import IdRelation, Relation, Row, relation_like, tuple_getter

__all__ = [
    "select",
    "project",
    "dedup",
    "rename",
    "natural_join",
    "join_on",
    "union_all",
    "difference_all",
    "extend_column",
    "cross_product",
]


def select(relation: Relation, predicate: RowPredicate) -> Relation:
    """σ: keep the rows satisfying ``predicate``.

    Structured predicates (:mod:`repro.algebra.expressions` builders, Σ
    predicates) are compiled once against the relation's column positions;
    arbitrary callables receive per-row mappings (decoded on id-space
    relations) as before.
    """
    if isinstance(relation, ColumnarIdRelation):
        # Vectorized mask selection; opaque callables fall through to rows.
        result = select_columnar(relation, predicate)
        if result is not None:
            return result
    test = compile_predicate(predicate, relation)
    kept = [row for row in relation if test(row)]
    return relation_like(relation.columns, kept, relation)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π: keep only the named columns (bag semantics: duplicates are kept)."""
    if isinstance(relation, ColumnarIdRelation):
        return project_columnar(relation, columns)
    getter = tuple_getter(relation.column_indexes(columns))
    return relation_like(tuple(columns), [getter(row) for row in relation], relation)


def dedup(relation: Relation) -> Relation:
    """δ: duplicate elimination, preserving first-occurrence order."""
    seen = set()
    kept: List[Row] = []
    for row in relation:
        if row not in seen:
            seen.add(row)
            kept.append(row)
    return relation_like(relation.columns, kept, relation)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """ρ: rename columns according to ``mapping`` (old name → new name)."""
    for old in mapping:
        if not relation.has_column(old):
            raise UnknownColumnError(f"cannot rename unknown column {old!r}")
    new_columns = tuple(mapping.get(name, name) for name in relation.columns)
    if isinstance(relation, IdRelation):
        encoded = {mapping.get(name, name) for name in relation.encoded_columns}
        return IdRelation(
            new_columns, relation.rows, dictionary=relation.dictionary, encoded=encoded
        )
    return Relation(new_columns, relation.rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """⋈: natural join on all shared column names (hash join, bag semantics).

    The output schema is the left schema followed by the right's non-shared
    columns, matching the conventional definition.
    """
    shared = [name for name in left.columns if right.has_column(name)]
    return join_on(left, right, [(name, name) for name in shared])


def _join_operands(
    left: Relation, right: Relation, join_pairs: Sequence[Tuple[str, str]]
) -> Tuple[Relation, Relation]:
    """Bring both join inputs into one value space.

    Ids only join with ids of the *same* dictionary; when the two sides
    disagree on a join column's encoding (or on the dictionary itself),
    both are decoded so the hash keys compare by term value.
    """
    left_id = isinstance(left, IdRelation)
    right_id = isinstance(right, IdRelation)
    if not (left_id or right_id):
        return left, right
    if left_id and right_id and left.dictionary is not right.dictionary:
        return left.materialize(), right.materialize()
    for left_name, right_name in join_pairs:
        left_encoded = left_id and left.is_encoded(left_name)
        right_encoded = right_id and right.is_encoded(right_name)
        if left_encoded != right_encoded:
            return left.materialize(), right.materialize()
    return left, right


def join_on(
    left: Relation,
    right: Relation,
    join_pairs: Sequence[Tuple[str, str]],
) -> Relation:
    """Equi-join on explicit column pairs ``(left_column, right_column)``.

    Right-side join columns are dropped from the output when they carry the
    same name as the corresponding left column (natural-join behaviour);
    differently-named right join columns are kept.
    With an empty ``join_pairs`` this degenerates to the cross product.
    """
    if not join_pairs:
        return cross_product(left, right)

    left, right = _join_operands(left, right, join_pairs)

    left_key_indexes = tuple(left.column_index(l) for l, _ in join_pairs)
    right_key_indexes = tuple(right.column_index(r) for _, r in join_pairs)

    dropped_right_columns = {
        r for l, r in join_pairs if l == r
    }
    kept_right_positions = [
        index for index, name in enumerate(right.columns) if name not in dropped_right_columns
    ]
    kept_right_names = [right.columns[index] for index in kept_right_positions]

    overlap = set(left.columns) & set(kept_right_names)
    if overlap:
        raise SchemaMismatchError(
            f"join would produce duplicate columns {sorted(overlap)}; rename one side first"
        )

    output_columns = tuple(left.columns) + tuple(kept_right_names)

    if (
        len(join_pairs) == 1
        and isinstance(left, ColumnarIdRelation)
        and isinstance(right, ColumnarIdRelation)
        and left.dictionary is right.dictionary
    ):
        # Vectorized int-keyed join (argsort + searchsorted expansion);
        # _join_operands already aligned the join columns' encodings.
        return join_columnar(left, right, join_pairs[0][0], join_pairs[0][1], kept_right_names)

    # Single-column equi-joins (the fact-variable join of Definition 4 and
    # the engine's hottest operation) hash the bare value — an int in id
    # space — instead of a 1-tuple.
    if len(join_pairs) == 1:
        left_key = left_key_indexes[0]
        right_key = right_key_indexes[0]
        left_key_of = lambda row: row[left_key]  # noqa: E731
        right_key_of = lambda row: row[right_key]  # noqa: E731
    else:
        left_key_of = tuple_getter(left_key_indexes)
        right_key_of = tuple_getter(right_key_indexes)
    right_part_of = tuple_getter(kept_right_positions)

    # Build a hash table on the smaller input to bound memory.
    build_on_right = len(right) <= len(left)
    rows: List[Row] = []
    if build_on_right:
        table: Dict[object, List[Row]] = {}
        for row in right:
            table.setdefault(right_key_of(row), []).append(right_part_of(row))
        empty: List[Row] = []
        for left_row in left:
            for right_part in table.get(left_key_of(left_row), empty):
                rows.append(left_row + right_part)
    else:
        table = {}
        for row in left:
            table.setdefault(left_key_of(row), []).append(row)
        empty = []
        for right_row in right:
            matches = table.get(right_key_of(right_row), empty)
            if matches:
                right_part = right_part_of(right_row)
                for left_row in matches:
                    rows.append(left_row + right_part)
    return relation_like(output_columns, rows, left, right)


def cross_product(left: Relation, right: Relation) -> Relation:
    """×: Cartesian product (schemas must be disjoint)."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise SchemaMismatchError(
            f"cross product requires disjoint schemas; shared columns {sorted(overlap)}"
        )
    if (
        isinstance(left, IdRelation)
        and isinstance(right, IdRelation)
        and left.dictionary is not right.dictionary
    ):
        left, right = left.materialize(), right.materialize()
    columns = tuple(left.columns) + tuple(right.columns)
    rows = [left_row + right_row for left_row in left for right_row in right]
    return relation_like(columns, rows, left, right)


def _union_operands(relations: Sequence[Relation]) -> Sequence[Relation]:
    """Align union/difference inputs: one dictionary, one encoding per column."""
    id_relations = [relation for relation in relations if isinstance(relation, IdRelation)]
    if not id_relations:
        return relations
    dictionary = id_relations[0].dictionary
    aligned = (
        len(id_relations) == len(relations)
        and all(relation.dictionary is dictionary for relation in id_relations)
        and len({relation.encoded_columns for relation in id_relations}) == 1
    )
    if aligned:
        return relations
    return [relation.materialize() for relation in relations]


def union_all(*relations: Relation) -> Relation:
    """∪ (bag union): concatenate rows of union-compatible relations."""
    if not relations:
        raise SchemaMismatchError("union_all requires at least one relation")
    relations = tuple(_union_operands(relations))
    first = relations[0]
    rows: List[Row] = list(first.rows)
    for other in relations[1:]:
        if other.columns != first.columns:
            if set(other.columns) != set(first.columns):
                raise SchemaMismatchError(
                    f"union of incompatible schemas: {first.columns} vs {other.columns}"
                )
            other = other.reorder(first.columns)
        rows.extend(other.rows)
    return relation_like(first.columns, rows, *relations)


def difference_all(left: Relation, right: Relation) -> Relation:
    """Bag difference: each row's multiplicity is reduced by its multiplicity in ``right``."""
    left, right = _union_operands((left, right))
    if left.columns != right.columns:
        if set(left.columns) != set(right.columns):
            raise SchemaMismatchError(
                f"difference of incompatible schemas: {left.columns} vs {right.columns}"
            )
        right = right.reorder(left.columns)
    remaining = right.to_multiset()
    rows: List[Row] = []
    for row in left:
        count = remaining.get(row, 0)
        if count > 0:
            remaining[row] = count - 1
        else:
            rows.append(row)
    return relation_like(left.columns, rows, left)


def extend_column(relation: Relation, name: str, function) -> Relation:
    """Add a computed column: ``function`` receives the row dict and returns the value.

    On id-space relations the row dict is decoded, and the computed column
    is plain (unencoded) in the result.
    """
    if relation.has_column(name):
        raise SchemaMismatchError(f"column {name!r} already exists")
    columns = relation.columns + (name,)
    as_dict = relation.row_as_dict
    rows = [row + (function(as_dict(row)),) for row in relation]
    return relation_like(columns, rows, relation, plain_columns=(name,))
