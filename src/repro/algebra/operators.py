"""Bag-relational algebra operators: σ, π, δ, ⋈, ∪, rename.

Every operator is a pure function from relations to a new relation; inputs
are never mutated.  All operators have **bag semantics** (Section 3 of the
paper: "all relational algebra operators are assumed to have bag
semantics"); duplicate elimination is explicit via :func:`dedup` (δ).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaMismatchError, UnknownColumnError
from repro.algebra.expressions import RowPredicate
from repro.algebra.relation import Relation, Row

__all__ = [
    "select",
    "project",
    "dedup",
    "rename",
    "natural_join",
    "join_on",
    "union_all",
    "difference_all",
    "extend_column",
    "cross_product",
]


def select(relation: Relation, predicate: RowPredicate) -> Relation:
    """σ: keep the rows satisfying ``predicate`` (applied to row dicts)."""
    columns = relation.columns
    kept: List[Row] = []
    for row in relation:
        if predicate(dict(zip(columns, row))):
            kept.append(row)
    return Relation(columns, kept)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π: keep only the named columns (bag semantics: duplicates are kept)."""
    indexes = relation.column_indexes(columns)
    return Relation(tuple(columns), (tuple(row[i] for i in indexes) for row in relation))


def dedup(relation: Relation) -> Relation:
    """δ: duplicate elimination, preserving first-occurrence order."""
    seen = set()
    kept: List[Row] = []
    for row in relation:
        if row not in seen:
            seen.add(row)
            kept.append(row)
    return Relation(relation.columns, kept)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """ρ: rename columns according to ``mapping`` (old name → new name)."""
    for old in mapping:
        if not relation.has_column(old):
            raise UnknownColumnError(f"cannot rename unknown column {old!r}")
    new_columns = tuple(mapping.get(name, name) for name in relation.columns)
    return Relation(new_columns, relation.rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """⋈: natural join on all shared column names (hash join, bag semantics).

    The output schema is the left schema followed by the right's non-shared
    columns, matching the conventional definition.
    """
    shared = [name for name in left.columns if right.has_column(name)]
    return join_on(left, right, [(name, name) for name in shared])


def join_on(
    left: Relation,
    right: Relation,
    join_pairs: Sequence[Tuple[str, str]],
) -> Relation:
    """Equi-join on explicit column pairs ``(left_column, right_column)``.

    Right-side join columns are dropped from the output when they carry the
    same name as the corresponding left column (natural-join behaviour);
    differently-named right join columns are kept.
    With an empty ``join_pairs`` this degenerates to the cross product.
    """
    if not join_pairs:
        return cross_product(left, right)

    left_key_indexes = tuple(left.column_index(l) for l, _ in join_pairs)
    right_key_indexes = tuple(right.column_index(r) for _, r in join_pairs)

    dropped_right_columns = {
        r for l, r in join_pairs if l == r
    }
    kept_right_positions = [
        index for index, name in enumerate(right.columns) if name not in dropped_right_columns
    ]
    kept_right_names = [right.columns[index] for index in kept_right_positions]

    overlap = set(left.columns) & set(kept_right_names)
    if overlap:
        raise SchemaMismatchError(
            f"join would produce duplicate columns {sorted(overlap)}; rename one side first"
        )

    output_columns = tuple(left.columns) + tuple(kept_right_names)

    # Build a hash table on the smaller input to bound memory.
    build_on_right = len(right) <= len(left)
    rows: List[Row] = []
    if build_on_right:
        table: Dict[Tuple, List[Row]] = {}
        for row in right:
            key = tuple(row[i] for i in right_key_indexes)
            table.setdefault(key, []).append(row)
        for left_row in left:
            key = tuple(left_row[i] for i in left_key_indexes)
            for right_row in table.get(key, ()):
                rows.append(left_row + tuple(right_row[i] for i in kept_right_positions))
    else:
        table = {}
        for row in left:
            key = tuple(row[i] for i in left_key_indexes)
            table.setdefault(key, []).append(row)
        for right_row in right:
            key = tuple(right_row[i] for i in right_key_indexes)
            right_part = tuple(right_row[i] for i in kept_right_positions)
            for left_row in table.get(key, ()):
                rows.append(left_row + right_part)
    return Relation(output_columns, rows)


def cross_product(left: Relation, right: Relation) -> Relation:
    """×: Cartesian product (schemas must be disjoint)."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise SchemaMismatchError(
            f"cross product requires disjoint schemas; shared columns {sorted(overlap)}"
        )
    columns = tuple(left.columns) + tuple(right.columns)
    rows = [left_row + right_row for left_row in left for right_row in right]
    return Relation(columns, rows)


def union_all(*relations: Relation) -> Relation:
    """∪ (bag union): concatenate rows of union-compatible relations."""
    if not relations:
        raise SchemaMismatchError("union_all requires at least one relation")
    first = relations[0]
    rows: List[Row] = list(first.rows)
    for other in relations[1:]:
        if other.columns != first.columns:
            if set(other.columns) != set(first.columns):
                raise SchemaMismatchError(
                    f"union of incompatible schemas: {first.columns} vs {other.columns}"
                )
            other = other.reorder(first.columns)
        rows.extend(other.rows)
    return Relation(first.columns, rows)


def difference_all(left: Relation, right: Relation) -> Relation:
    """Bag difference: each row's multiplicity is reduced by its multiplicity in ``right``."""
    if left.columns != right.columns:
        if set(left.columns) != set(right.columns):
            raise SchemaMismatchError(
                f"difference of incompatible schemas: {left.columns} vs {right.columns}"
            )
        right = right.reorder(left.columns)
    remaining = right.to_multiset()
    rows: List[Row] = []
    for row in left:
        count = remaining.get(row, 0)
        if count > 0:
            remaining[row] = count - 1
        else:
            rows.append(row)
    return Relation(left.columns, rows)


def extend_column(relation: Relation, name: str, function) -> Relation:
    """Add a computed column: ``function`` receives the row dict and returns the value."""
    if relation.has_column(name):
        raise SchemaMismatchError(f"column {name!r} already exists")
    columns = relation.columns + (name,)
    rows = [
        row + (function(dict(zip(relation.columns, row))),) for row in relation
    ]
    return Relation(columns, rows)
