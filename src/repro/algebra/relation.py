"""Bag relations: the tabular data structure the OLAP algorithms operate on.

The paper phrases its rewriting algorithms (Algorithm 1 and 2, and the DICE
selection of Proposition 1) in terms of relational algebra **with bag
semantics** over tables such as ``pres(Q)`` and ``ans(Q)``.  A
:class:`Relation` is exactly such a table: an ordered list of column names
plus a list of rows (tuples), where duplicate rows are meaningful.

Rows hold arbitrary hashable Python values; in this project they are RDF
terms (for dimension and fact columns), integers (for the ``newk()`` key
column of extended measure results) and Python numbers (for aggregated
measures).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaMismatchError, UnknownColumnError

__all__ = ["Relation", "Row"]

#: A row is a tuple of values, positionally aligned with the relation schema.
Row = Tuple


class Relation:
    """An ordered-schema bag of rows.

    Parameters
    ----------
    columns:
        Column names, in order.  Names must be unique.
    rows:
        Iterable of tuples (or lists), each of the same arity as ``columns``.

    The class is deliberately small and explicit: the relational operators
    live in :mod:`repro.algebra.operators` and :mod:`repro.algebra.grouping`
    and return new relations, never mutating their inputs.
    """

    __slots__ = ("_columns", "_rows", "_index_of")

    def __init__(self, columns: Sequence[str], rows: Optional[Iterable[Sequence]] = None):
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise SchemaMismatchError(f"duplicate column names in schema: {columns}")
        self._columns: Tuple[str, ...] = columns
        self._index_of: Dict[str, int] = {name: index for index, name in enumerate(columns)}
        materialized: List[Row] = []
        if rows is not None:
            arity = len(columns)
            for row in rows:
                row_tuple = tuple(row)
                if len(row_tuple) != arity:
                    raise SchemaMismatchError(
                        f"row arity {len(row_tuple)} does not match schema arity {arity}: {row_tuple!r}"
                    )
                materialized.append(row_tuple)
        self._rows = materialized

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[Mapping[str, object]]) -> "Relation":
        """Build a relation from mappings; missing keys become ``None``."""
        rows = [tuple(mapping.get(column) for column in columns) for mapping in dicts]
        return cls(columns, rows)

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        """An empty relation with the given schema."""
        return cls(columns, [])

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def arity(self) -> int:
        return len(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._index_of

    def column_index(self, name: str) -> int:
        """Return the position of a column; raise :class:`UnknownColumnError` otherwise."""
        try:
            return self._index_of[name]
        except KeyError:
            raise UnknownColumnError(f"unknown column {name!r}; schema is {self._columns}") from None

    def column_indexes(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.column_index(name) for name in names)

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The underlying row list.  Treat as read-only."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def add_row(self, row: Sequence) -> None:
        """Append one row (used by builders; operators never mutate inputs)."""
        row_tuple = tuple(row)
        if len(row_tuple) != self.arity:
            raise SchemaMismatchError(
                f"row arity {len(row_tuple)} does not match schema arity {self.arity}"
            )
        self._rows.append(row_tuple)

    def extend(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.add_row(row)

    def column_values(self, name: str) -> List:
        """Return the list of values in the named column (with duplicates)."""
        index = self.column_index(name)
        return [row[index] for row in self._rows]

    def distinct_values(self, name: str) -> set:
        """Return the set of distinct values in the named column."""
        index = self.column_index(name)
        return {row[index] for row in self._rows}

    def row_as_dict(self, row: Row) -> Dict[str, object]:
        return dict(zip(self._columns, row))

    def iter_dicts(self) -> Iterator[Dict[str, object]]:
        for row in self._rows:
            yield self.row_as_dict(row)

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------

    def to_multiset(self) -> Dict[Row, int]:
        """Return the bag of rows as a multiplicity map."""
        counts: Dict[Row, int] = {}
        for row in self._rows:
            counts[row] = counts.get(row, 0) + 1
        return counts

    def bag_equal(self, other: "Relation", ignore_column_order: bool = False) -> bool:
        """Bag equality: same schema and same rows with the same multiplicities.

        With ``ignore_column_order=True`` the comparison first aligns the
        other relation's columns to this relation's order.
        """
        if not isinstance(other, Relation):
            return False
        if ignore_column_order:
            if set(self._columns) != set(other._columns):
                return False
            other = other.reorder(self._columns)
        elif self._columns != other._columns:
            return False
        return self.to_multiset() == other.to_multiset()

    def set_equal(self, other: "Relation", ignore_column_order: bool = False) -> bool:
        """Set equality: same schema and same distinct rows."""
        if not isinstance(other, Relation):
            return False
        if ignore_column_order:
            if set(self._columns) != set(other._columns):
                return False
            other = other.reorder(self._columns)
        elif self._columns != other._columns:
            return False
        return set(self._rows) == set(other._rows)

    def __eq__(self, other: object) -> bool:
        """Relations compare by bag equality with identical schemas."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.bag_equal(other)

    def __hash__(self):  # relations are mutable via add_row
        raise TypeError("Relation objects are unhashable")

    # ------------------------------------------------------------------
    # simple reshaping (pure, returns new relations)
    # ------------------------------------------------------------------

    def reorder(self, columns: Sequence[str]) -> "Relation":
        """Return a relation with the same rows, columns re-ordered."""
        if set(columns) != set(self._columns) or len(columns) != len(self._columns):
            raise SchemaMismatchError(
                f"reorder columns {tuple(columns)} must be a permutation of {self._columns}"
            )
        indexes = self.column_indexes(columns)
        return Relation(columns, (tuple(row[i] for i in indexes) for row in self._rows))

    def copy(self) -> "Relation":
        return Relation(self._columns, self._rows)

    def map_rows(self, function: Callable[[Row], Row], columns: Optional[Sequence[str]] = None) -> "Relation":
        """Apply ``function`` to every row, optionally changing the schema."""
        new_columns = tuple(columns) if columns is not None else self._columns
        return Relation(new_columns, (function(row) for row in self._rows))

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def head(self, count: int = 10) -> "Relation":
        """Return the first ``count`` rows (for display)."""
        return Relation(self._columns, self._rows[:count])

    def sorted(self) -> "Relation":
        """Return the relation with rows sorted by their repr (stable display order)."""
        return Relation(self._columns, sorted(self._rows, key=repr))

    def to_text(self, max_rows: int = 20) -> str:
        """Render an ASCII table of the relation (used by examples and benches)."""
        shown = self._rows[:max_rows]
        headers = [str(column) for column in self._columns]
        rendered = [[_render_value(value) for value in row] for row in shown]
        widths = [len(header) for header in headers]
        for row in rendered:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        separator = "-+-".join("-" * width for width in widths)
        lines = [
            " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
            separator,
        ]
        for row in rendered:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Relation(columns={self._columns}, rows={len(self._rows)})"


def _render_value(value: object) -> str:
    """Human-friendly cell rendering: RDF terms use their short/N3 form."""
    n3 = getattr(value, "n3", None)
    if callable(n3):
        local = getattr(value, "local_name", None)
        if callable(local):
            return local()
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
