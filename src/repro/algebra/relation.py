"""Bag relations: the tabular data structure the OLAP algorithms operate on.

The paper phrases its rewriting algorithms (Algorithm 1 and 2, and the DICE
selection of Proposition 1) in terms of relational algebra **with bag
semantics** over tables such as ``pres(Q)`` and ``ans(Q)``.  A
:class:`Relation` is exactly such a table: an ordered list of column names
plus a list of rows (tuples), where duplicate rows are meaningful.

Rows hold arbitrary hashable Python values; in this project they are RDF
terms (for dimension and fact columns), integers (for the ``newk()`` key
column of extended measure results) and Python numbers (for aggregated
measures).

Two value spaces coexist:

* a plain :class:`Relation` holds *decoded* values (RDF term objects,
  numbers);
* an :class:`IdRelation` keeps designated columns as dictionary-encoded
  integer ids, tagged with the owning
  :class:`~repro.rdf.dictionary.TermDictionary`.  The execution engine works
  on id relations end-to-end and decodes only at the result boundary via
  :meth:`IdRelation.materialize` / :meth:`IdRelation.iter_decoded` (late
  materialization, the classical dictionary-encoded RDF engine design).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaMismatchError, UnknownColumnError

__all__ = ["Relation", "IdRelation", "Row", "relation_like"]


def tuple_getter(positions: Sequence[int]) -> Callable[[Row], Tuple]:
    """A fast row → tuple-of-positions extractor (always returns a tuple).

    ``operator.itemgetter`` unpacks to a scalar for a single position; this
    wrapper keeps the tuple shape the operators rely on for keys and rows.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        index = positions[0]
        return lambda row: (row[index],)
    return itemgetter(*positions)

#: A row is a tuple of values, positionally aligned with the relation schema.
Row = Tuple


class Relation:
    """An ordered-schema bag of rows.

    Parameters
    ----------
    columns:
        Column names, in order.  Names must be unique.
    rows:
        Iterable of tuples (or lists), each of the same arity as ``columns``.

    The class is deliberately small and explicit: the relational operators
    live in :mod:`repro.algebra.operators` and :mod:`repro.algebra.grouping`
    and return new relations, never mutating their inputs.
    """

    __slots__ = ("_columns", "_rows", "_index_of")

    def __init__(self, columns: Sequence[str], rows: Optional[Iterable[Sequence]] = None):
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise SchemaMismatchError(f"duplicate column names in schema: {columns}")
        self._columns: Tuple[str, ...] = columns
        self._index_of: Dict[str, int] = {name: index for index, name in enumerate(columns)}
        materialized: List[Row] = []
        if rows is not None:
            arity = len(columns)
            for row in rows:
                row_tuple = tuple(row)
                if len(row_tuple) != arity:
                    raise SchemaMismatchError(
                        f"row arity {len(row_tuple)} does not match schema arity {arity}: {row_tuple!r}"
                    )
                materialized.append(row_tuple)
        self._rows = materialized

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[Mapping[str, object]]) -> "Relation":
        """Build a relation from mappings; missing keys become ``None``."""
        rows = [tuple(mapping.get(column) for column in columns) for mapping in dicts]
        return cls(columns, rows)

    @classmethod
    def adopt(cls, columns: Sequence[str], rows: List[Row]) -> "Relation":
        """Adopt a pre-validated row list without copying or re-checking arity.

        The operators' fast path: they construct correct-arity tuples by
        design, so per-row validation would only re-verify what the code
        already guarantees.  The list is adopted as-is — callers must not
        reuse it.
        """
        relation = cls.__new__(cls)
        relation._init_adopted(tuple(columns), rows)
        return relation

    def _init_adopted(self, columns: Tuple[str, ...], rows: List[Row]) -> None:
        self._columns = columns
        self._index_of = {name: index for index, name in enumerate(columns)}
        if len(self._index_of) != len(columns):
            raise SchemaMismatchError(f"duplicate column names in schema: {columns}")
        self._rows = rows

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        """An empty relation with the given schema."""
        return cls(columns, [])

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def arity(self) -> int:
        return len(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._index_of

    def column_index(self, name: str) -> int:
        """Return the position of a column; raise :class:`UnknownColumnError` otherwise."""
        try:
            return self._index_of[name]
        except KeyError:
            raise UnknownColumnError(f"unknown column {name!r}; schema is {self._columns}") from None

    def column_indexes(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.column_index(name) for name in names)

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The underlying row list.  Treat as read-only."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def add_row(self, row: Sequence) -> None:
        """Append one row (used by builders; operators never mutate inputs)."""
        row_tuple = tuple(row)
        if len(row_tuple) != self.arity:
            raise SchemaMismatchError(
                f"row arity {len(row_tuple)} does not match schema arity {self.arity}"
            )
        self._rows.append(row_tuple)

    def extend(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.add_row(row)

    def column_values(self, name: str) -> List:
        """Return the list of values in the named column (with duplicates)."""
        index = self.column_index(name)
        return [row[index] for row in self._rows]

    def distinct_values(self, name: str) -> set:
        """Return the set of distinct values in the named column."""
        index = self.column_index(name)
        return {row[index] for row in self._rows}

    def row_as_dict(self, row: Row) -> Dict[str, object]:
        return dict(zip(self._columns, row))

    def iter_dicts(self) -> Iterator[Dict[str, object]]:
        for row in self._rows:
            yield self.row_as_dict(row)

    # ------------------------------------------------------------------
    # value space (overridden by IdRelation)
    # ------------------------------------------------------------------

    def materialize(self) -> "Relation":
        """Return the decoded view of this relation (self for plain relations)."""
        return self

    def iter_decoded(self) -> Iterator[Row]:
        """Iterate over decoded rows (the rows themselves for plain relations)."""
        return iter(self._rows)

    def column_decoder(self, name: str) -> Optional[Callable[[object], object]]:
        """Return the id→term decoder for an encoded column, or None.

        Plain relations hold decoded values everywhere, so this is always
        None here; :class:`IdRelation` returns the dictionary decoder for
        its encoded columns.  Operators and predicates use this to stay
        positional while remaining correct on both value spaces.
        """
        return None

    def _new(self, columns: Sequence[str], rows: Iterable[Sequence]) -> "Relation":
        """Construct a same-space relation (metadata-preserving factory)."""
        return Relation(columns, rows)

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------

    def to_multiset(self) -> Dict[Row, int]:
        """Return the bag of rows as a multiplicity map."""
        counts: Dict[Row, int] = {}
        for row in self._rows:
            counts[row] = counts.get(row, 0) + 1
        return counts

    def bag_equal(self, other: "Relation", ignore_column_order: bool = False) -> bool:
        """Bag equality: same schema and same rows with the same multiplicities.

        With ``ignore_column_order=True`` the comparison first aligns the
        other relation's columns to this relation's order.
        """
        if not isinstance(other, Relation):
            return False
        if ignore_column_order:
            if set(self._columns) != set(other._columns):
                return False
            other = other.reorder(self._columns)
        elif self._columns != other._columns:
            return False
        left, right = _comparison_pair(self, other)
        return left.to_multiset() == right.to_multiset()

    def set_equal(self, other: "Relation", ignore_column_order: bool = False) -> bool:
        """Set equality: same schema and same distinct rows."""
        if not isinstance(other, Relation):
            return False
        if ignore_column_order:
            if set(self._columns) != set(other._columns):
                return False
            other = other.reorder(self._columns)
        elif self._columns != other._columns:
            return False
        left, right = _comparison_pair(self, other)
        return set(left._rows) == set(right._rows)

    def __eq__(self, other: object) -> bool:
        """Relations compare by bag equality with identical schemas."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.bag_equal(other)

    def __hash__(self):  # relations are mutable via add_row
        raise TypeError("Relation objects are unhashable")

    # ------------------------------------------------------------------
    # simple reshaping (pure, returns new relations)
    # ------------------------------------------------------------------

    def reorder(self, columns: Sequence[str]) -> "Relation":
        """Return a relation with the same rows, columns re-ordered."""
        if set(columns) != set(self._columns) or len(columns) != len(self._columns):
            raise SchemaMismatchError(
                f"reorder columns {tuple(columns)} must be a permutation of {self._columns}"
            )
        indexes = self.column_indexes(columns)
        return self._new(columns, (tuple(row[i] for i in indexes) for row in self._rows))

    def copy(self) -> "Relation":
        return self._new(self._columns, self._rows)

    def map_rows(self, function: Callable[[Row], Row], columns: Optional[Sequence[str]] = None) -> "Relation":
        """Apply ``function`` to every row, optionally changing the schema."""
        new_columns = tuple(columns) if columns is not None else self._columns
        return Relation(new_columns, (function(row) for row in self._rows))

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def head(self, count: int = 10) -> "Relation":
        """Return the first ``count`` rows (for display)."""
        return self._new(self._columns, self._rows[:count])

    def sorted(self) -> "Relation":
        """Return the relation with rows sorted by their repr (stable display order)."""
        return self._new(self._columns, sorted(self._rows, key=repr))

    def to_text(self, max_rows: int = 20) -> str:
        """Render an ASCII table of the relation (used by examples and benches)."""
        shown = self._rows[:max_rows]
        headers = [str(column) for column in self._columns]
        rendered = [[_render_value(value) for value in row] for row in shown]
        widths = [len(header) for header in headers]
        for row in rendered:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        separator = "-+-".join("-" * width for width in widths)
        lines = [
            " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
            separator,
        ]
        for row in rendered:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Relation(columns={self._columns}, rows={len(self._rows)})"


class IdRelation(Relation):
    """A relation whose designated columns hold dictionary-encoded term ids.

    Parameters
    ----------
    columns, rows:
        As for :class:`Relation`; values in encoded columns are integer ids
        of the owning dictionary, values elsewhere are plain Python objects
        (``newk()`` keys, aggregated measures, ...).
    dictionary:
        The :class:`~repro.rdf.dictionary.TermDictionary` the ids belong to
        (in practice: the dictionary of the graph the rows were matched on).
    encoded:
        The names of the id-encoded columns; defaults to every column.

    Operators propagate the encoding metadata (see :func:`relation_like`),
    so selections, projections, joins, dedup and grouping all run on machine
    integers; terms are only materialized at the result boundary.
    """

    __slots__ = ("_dictionary", "_encoded")

    @classmethod
    def adopt_encoded(
        cls,
        columns: Sequence[str],
        rows: List[Row],
        dictionary,
        encoded: Optional[Iterable[str]] = None,
    ) -> "IdRelation":
        """Adopt a pre-validated id row list (see :meth:`Relation.adopt`)."""
        relation = cls.__new__(cls)
        columns = tuple(columns)
        relation._init_adopted(columns, rows)
        relation._dictionary = dictionary
        relation._encoded = (
            frozenset(columns) if encoded is None else frozenset(encoded) & set(columns)
        )
        return relation

    def __init__(
        self,
        columns: Sequence[str],
        rows: Optional[Iterable[Sequence]] = None,
        dictionary=None,
        encoded: Optional[Iterable[str]] = None,
    ):
        super().__init__(columns, rows)
        if dictionary is None:
            raise SchemaMismatchError("an IdRelation requires the owning TermDictionary")
        self._dictionary = dictionary
        if encoded is None:
            self._encoded: FrozenSet[str] = frozenset(self._columns)
        else:
            self._encoded = frozenset(encoded) & set(self._columns)

    # -- metadata ------------------------------------------------------

    @property
    def dictionary(self):
        """The term dictionary the encoded ids belong to."""
        return self._dictionary

    @property
    def encoded_columns(self) -> FrozenSet[str]:
        """Names of the columns holding term ids."""
        return self._encoded

    def is_encoded(self, name: str) -> bool:
        return name in self._encoded

    def column_decoder(self, name: str) -> Optional[Callable[[object], object]]:
        if name in self._encoded:
            return self._dictionary.decode
        return None

    def _new(self, columns: Sequence[str], rows: Iterable[Sequence]) -> "Relation":
        encoded = self._encoded & set(columns)
        if not encoded:
            return Relation(columns, rows)
        return IdRelation(columns, rows, dictionary=self._dictionary, encoded=encoded)

    # -- late materialization ------------------------------------------

    def _encoded_indexes(self) -> List[int]:
        return [index for index, name in enumerate(self._columns) if name in self._encoded]

    def materialize(self) -> Relation:
        """Decode every encoded column and return a plain relation."""
        if not self._encoded:
            return Relation.adopt(self._columns, list(self._rows))
        return Relation.adopt(self._columns, list(self.iter_decoded()))

    def iter_decoded(self) -> Iterator[Row]:
        """Yield decoded rows one at a time (the decoding-iterator boundary)."""
        indexes = self._encoded_indexes()
        if not indexes:
            yield from self._rows
            return
        decode = self._dictionary.decode
        cache: Dict[object, object] = {}
        for row in self._rows:
            decoded = list(row)
            for index in indexes:
                value_id = decoded[index]
                term = cache.get(value_id)
                if term is None:
                    term = cache[value_id] = decode(value_id)
                decoded[index] = term
            yield tuple(decoded)

    def row_as_dict(self, row: Row) -> Dict[str, object]:
        decode = self._dictionary.decode
        return {
            name: decode(value) if name in self._encoded else value
            for name, value in zip(self._columns, row)
        }

    def to_text(self, max_rows: int = 20) -> str:
        return self.materialize().to_text(max_rows=max_rows)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IdRelation(columns={self._columns}, rows={len(self._rows)}, "
            f"encoded={sorted(self._encoded)})"
        )


def _comparison_pair(left: Relation, right: Relation) -> Tuple[Relation, Relation]:
    """Bring two relations into the decoded space before row comparison.

    Two id relations over the *same* dictionary compare directly on ids
    (the encoding is bijective); any other mix is decoded first.
    """
    if isinstance(left, IdRelation) and isinstance(right, IdRelation):
        if left.dictionary is right.dictionary and left.encoded_columns == right.encoded_columns:
            return left, right
    return left.materialize(), right.materialize()


def relation_like(
    columns: Sequence[str],
    rows: Optional[Iterable[Sequence]],
    *sources: Relation,
    plain_columns: Sequence[str] = (),
) -> Relation:
    """Construct an operator result carrying the sources' encoding metadata.

    The encoded column set of the result is the union of the sources'
    encoded columns restricted to ``columns`` (minus ``plain_columns``,
    used when an operator overwrites a column with decoded values, e.g. the
    aggregated measure of γ).  Sources must already live in one id space;
    operators align mixed-space inputs by materializing before combining.

    Rows are **adopted**, not validated: callers construct correct-arity
    tuples by design (a list argument is taken over without copying).
    """
    dictionary = None
    encoded: set = set()
    for source in sources:
        if isinstance(source, IdRelation):
            if dictionary is None:
                dictionary = source.dictionary
            elif dictionary is not source.dictionary:
                raise SchemaMismatchError(
                    "cannot combine relations encoded against different dictionaries; "
                    "materialize one side first"
                )
            encoded |= source.encoded_columns
    encoded &= set(columns)
    encoded -= set(plain_columns)
    row_list = rows if type(rows) is list else list(rows or ())
    if dictionary is None or not encoded:
        return Relation.adopt(columns, row_list)
    return IdRelation.adopt_encoded(columns, row_list, dictionary, encoded)


def _render_value(value: object) -> str:
    """Human-friendly cell rendering: RDF terms use their short/N3 form."""
    n3 = getattr(value, "n3", None)
    if callable(n3):
        local = getattr(value, "local_name", None)
        if callable(local):
            return local()
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
