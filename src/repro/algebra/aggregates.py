"""Aggregation functions and their algebraic properties.

The paper's drill-out discussion (Section 3.2) distinguishes **distributive**
aggregation functions (``sum``, ``count``, ``min``, ``max``) — whose results
over a union of disjoint bags can be combined from per-bag results — from
non-distributive ones such as ``avg``, which must be recomputed from the
detailed values.  That property drives which rewritings are possible, so each
registered aggregate carries it as metadata.

All aggregates operate on **bags** of values (Python sequences where
duplicates matter).  Values may be RDF literals; they are converted to
Python numbers/strings first through :func:`~repro.algebra.expressions.comparable`.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import AggregationError
from repro.algebra.expressions import comparable

__all__ = [
    "AggregateFunction",
    "AggregateRegistry",
    "default_registry",
    "get_aggregate",
    "COUNT",
    "COUNT_DISTINCT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
]


class AggregateFunction:
    """A named aggregation function ``⊕`` over bags of values.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"sum"``.
    distributive:
        True when ``⊕(A ∪ B) = ⊕({⊕(A), ⊕(B)})`` for disjoint bags A, B.
    numeric_only:
        True when inputs must be numbers (after literal conversion).
    """

    def __init__(
        self,
        name: str,
        function: Callable[[List], object],
        distributive: bool,
        numeric_only: bool = True,
        combine: Optional[Callable[[List], object]] = None,
        value_free: bool = False,
    ):
        self.name = name
        self._function = function
        self.distributive = distributive
        self.numeric_only = numeric_only
        self._combine = combine if combine is not None else (function if distributive else None)
        #: True when the result depends only on the bag's cardinality
        #: (``count``): γ can then skip decoding/converting the values.
        self.value_free = value_free

    # ------------------------------------------------------------------

    def __call__(self, values: Iterable) -> object:
        """Aggregate a bag of values.

        Per Definition 1 of the paper, the aggregate of an empty bag is
        *undefined*; we signal that with :class:`AggregationError`, and the
        evaluator simply omits the fact from the cube.
        """
        prepared = self._prepare(values)
        if not prepared:
            raise AggregationError(f"aggregate {self.name!r} is undefined on an empty bag")
        return self._function(prepared)

    def combine(self, partial_results: Iterable) -> object:
        """Combine already-aggregated partial results (distributive functions only)."""
        if self._combine is None:
            raise AggregationError(
                f"aggregate {self.name!r} is not distributive; partial results cannot be combined"
            )
        prepared = [comparable(value) for value in partial_results]
        if not prepared:
            raise AggregationError(f"aggregate {self.name!r} is undefined on an empty bag")
        return self._combine(prepared)

    def _prepare(self, values: Iterable) -> List:
        prepared = [comparable(value) for value in values]
        if self.numeric_only:
            converted = []
            for value in prepared:
                if isinstance(value, bool):
                    converted.append(int(value))
                elif isinstance(value, (int, float, Decimal)):
                    converted.append(value)
                else:
                    try:
                        converted.append(float(value))
                    except (TypeError, ValueError):
                        raise AggregationError(
                            f"aggregate {self.name!r} requires numeric values, got {value!r}"
                        ) from None
            return converted
        return prepared

    def __repr__(self) -> str:  # pragma: no cover
        kind = "distributive" if self.distributive else "non-distributive"
        return f"AggregateFunction({self.name}, {kind})"


def _sum(values: List) -> object:
    return sum(values)


def _avg(values: List) -> float:
    return float(sum(values)) / len(values)


def _count(values: List) -> int:
    return len(values)


def _count_distinct(values: List) -> int:
    return len(set(values))


def _min(values: List) -> object:
    return min(values)


def _max(values: List) -> object:
    return max(values)


#: ``count`` is distributive: counts of disjoint sub-bags add up.
COUNT = AggregateFunction(
    "count", _count, distributive=True, numeric_only=False, combine=_sum, value_free=True
)

#: ``count_distinct`` is *not* distributive (distinct values may repeat across sub-bags).
COUNT_DISTINCT = AggregateFunction(
    "count_distinct", _count_distinct, distributive=False, numeric_only=False
)

SUM = AggregateFunction("sum", _sum, distributive=True)
AVG = AggregateFunction("avg", _avg, distributive=False)
MIN = AggregateFunction("min", _min, distributive=True, numeric_only=False)
MAX = AggregateFunction("max", _max, distributive=True, numeric_only=False)


class AggregateRegistry:
    """Name → :class:`AggregateFunction` registry.

    A fresh registry contains the six standard aggregates; applications can
    :meth:`register` additional ones (e.g. median, stddev) and they become
    usable in analytical queries by name.
    """

    def __init__(self, include_defaults: bool = True):
        self._functions: Dict[str, AggregateFunction] = {}
        if include_defaults:
            for function in (COUNT, COUNT_DISTINCT, SUM, AVG, MIN, MAX):
                self.register(function)

    def register(self, function: AggregateFunction, replace: bool = False) -> None:
        if function.name in self._functions and not replace:
            raise AggregationError(f"aggregate {function.name!r} is already registered")
        self._functions[function.name] = function

    def get(self, name: str) -> AggregateFunction:
        key = name.lower()
        if key not in self._functions:
            raise AggregationError(
                f"unknown aggregate {name!r}; registered: {sorted(self._functions)}"
            )
        return self._functions[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)

    def __len__(self) -> int:
        return len(self._functions)


_DEFAULT_REGISTRY = AggregateRegistry()


def default_registry() -> AggregateRegistry:
    """The process-wide default registry used when none is supplied."""
    return _DEFAULT_REGISTRY


def get_aggregate(function) -> AggregateFunction:
    """Coerce a name or an :class:`AggregateFunction` into an AggregateFunction."""
    if isinstance(function, AggregateFunction):
        return function
    if isinstance(function, str):
        return _DEFAULT_REGISTRY.get(function)
    raise AggregationError(
        f"expected an aggregate name or AggregateFunction, got {type(function).__name__}"
    )
