"""Aggregation functions and their algebraic properties.

The paper's drill-out discussion (Section 3.2) distinguishes **distributive**
aggregation functions (``sum``, ``count``, ``min``, ``max``) — whose results
over a union of disjoint bags can be combined from per-bag results — from
non-distributive ones such as ``avg``, which must be recomputed from the
detailed values.  That property drives which rewritings are possible, so each
registered aggregate carries it as metadata.

All aggregates operate on **bags** of values (Python sequences where
duplicates matter).  Values may be RDF literals; they are converted to
Python numbers/strings first through :func:`~repro.algebra.expressions.comparable`.

Partial-aggregate algebra
-------------------------

The partitioned execution engine (:mod:`repro.olap.parallel`) evaluates γ
per fact shard and combines the per-shard results.  Plain distributivity is
not enough for that: ``avg`` and ``count_distinct`` are not distributive,
yet both *are* mergeable through a richer intermediate state — ``avg`` as a
``(sum, count)`` pair, ``count_distinct`` as the set of distinct raw values
(term ids on encoded relations, so shards never decode).  Each standard
aggregate therefore carries a :class:`PartialAggregate`: a small algebra of
``make`` (bag → state), ``merge`` (state × state → state, associative and
commutative) and ``finalize`` (state → aggregated value).  Aggregates
without a registered partial form simply cannot be parallelized; callers
ask via :func:`partial_aggregate`.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import AggregationError
from repro.algebra.expressions import comparable

__all__ = [
    "AggregateFunction",
    "AggregateRegistry",
    "PartialAggregate",
    "default_registry",
    "get_aggregate",
    "partial_aggregate",
    "COUNT",
    "COUNT_DISTINCT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
]


class AggregateFunction:
    """A named aggregation function ``⊕`` over bags of values.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"sum"``.
    distributive:
        True when ``⊕(A ∪ B) = ⊕({⊕(A), ⊕(B)})`` for disjoint bags A, B.
    numeric_only:
        True when inputs must be numbers (after literal conversion).
    """

    def __init__(
        self,
        name: str,
        function: Callable[[List], object],
        distributive: bool,
        numeric_only: bool = True,
        combine: Optional[Callable[[List], object]] = None,
        value_free: bool = False,
    ):
        self.name = name
        self._function = function
        self.distributive = distributive
        self.numeric_only = numeric_only
        self._combine = combine if combine is not None else (function if distributive else None)
        #: True when the result depends only on the bag's cardinality
        #: (``count``): γ can then skip decoding/converting the values.
        self.value_free = value_free

    # ------------------------------------------------------------------

    def __call__(self, values: Iterable) -> object:
        """Aggregate a bag of values.

        Per Definition 1 of the paper, the aggregate of an empty bag is
        *undefined*; we signal that with :class:`AggregationError`, and the
        evaluator simply omits the fact from the cube.
        """
        prepared = self._prepare(values)
        if not prepared:
            raise AggregationError(f"aggregate {self.name!r} is undefined on an empty bag")
        return self._function(prepared)

    def combine(self, partial_results: Iterable) -> object:
        """Combine already-aggregated partial results (distributive functions only)."""
        if self._combine is None:
            raise AggregationError(
                f"aggregate {self.name!r} is not distributive; partial results cannot be combined"
            )
        prepared = [comparable(value) for value in partial_results]
        if not prepared:
            raise AggregationError(f"aggregate {self.name!r} is undefined on an empty bag")
        return self._combine(prepared)

    def prepare(self, values: Iterable) -> List:
        """Convert a bag to the value space ⊕ aggregates over.

        Public counterpart of the internal conversion applied by
        :meth:`__call__`: literals become Python values and, for
        numeric-only aggregates, everything is coerced to a number (or
        :class:`AggregationError` is raised).  The partitioned γ uses this
        so per-shard partial states are built from exactly the values the
        serial aggregate would see.
        """
        return self._prepare(values)

    def _prepare(self, values: Iterable) -> List:
        prepared = [comparable(value) for value in values]
        if self.numeric_only:
            converted = []
            for value in prepared:
                if isinstance(value, bool):
                    converted.append(int(value))
                elif isinstance(value, (int, float, Decimal)):
                    converted.append(value)
                else:
                    try:
                        converted.append(float(value))
                    except (TypeError, ValueError):
                        raise AggregationError(
                            f"aggregate {self.name!r} requires numeric values, got {value!r}"
                        ) from None
            return converted
        return prepared

    def __repr__(self) -> str:  # pragma: no cover
        kind = "distributive" if self.distributive else "non-distributive"
        return f"AggregateFunction({self.name}, {kind})"


def _sum(values: List) -> object:
    return sum(values)


def _avg(values: List) -> float:
    return float(sum(values)) / len(values)


def _count(values: List) -> int:
    return len(values)


def _count_distinct(values: List) -> int:
    return len(set(values))


def _min(values: List) -> object:
    return min(values)


def _max(values: List) -> object:
    return max(values)


#: ``count`` is distributive: counts of disjoint sub-bags add up.
COUNT = AggregateFunction(
    "count", _count, distributive=True, numeric_only=False, combine=_sum, value_free=True
)

#: ``count_distinct`` is *not* distributive (distinct values may repeat across sub-bags).
COUNT_DISTINCT = AggregateFunction(
    "count_distinct", _count_distinct, distributive=False, numeric_only=False
)

SUM = AggregateFunction("sum", _sum, distributive=True)
AVG = AggregateFunction("avg", _avg, distributive=False)
MIN = AggregateFunction("min", _min, distributive=True, numeric_only=False)
MAX = AggregateFunction("max", _max, distributive=True, numeric_only=False)


# ---------------------------------------------------------------------------
# partial-aggregate algebra (mergeable γ states for partitioned execution)
# ---------------------------------------------------------------------------


class PartialAggregate:
    """The mergeable-state algebra of one aggregation function ⊕.

    ``make`` builds a state from one shard's (non-empty) bag, ``merge``
    combines the states of two disjoint sub-bags and ``finalize`` turns a
    state into the aggregated value.  The algebra's contract is

        ``finalize(merge(make(A), make(B))) = ⊕(A ⊎ B)``

    with ``merge`` associative and commutative, so per-shard γ results
    combine in any order and grouping into exactly the serial answer.

    ``wants_raw`` states hold the *raw* relation column values (term ids on
    encoded relations): shards then ship integer sets instead of decoded
    terms, and ``finalize`` receives an optional unary ``decode`` to bring
    the merged members into value space once, at the merge boundary.  All
    other states are built from :meth:`AggregateFunction.prepare`'d values
    and ignore ``decode``.  States must be plain picklable Python data —
    they cross process boundaries.
    """

    __slots__ = ("name", "wants_raw")

    def __init__(self, name: str, wants_raw: bool = False):
        self.name = name
        self.wants_raw = wants_raw

    def make(self, values: Sequence) -> object:
        raise NotImplementedError

    def merge(self, left: object, right: object) -> object:
        raise NotImplementedError

    def finalize(self, state: object, decode: Optional[Callable[[object], object]] = None) -> object:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"PartialAggregate({self.name})"


class _CountPartial(PartialAggregate):
    """count: the state is the bag's cardinality; merge adds."""

    def __init__(self):
        super().__init__("count", wants_raw=True)  # cardinality needs no decoding

    def make(self, values: Sequence) -> int:
        return len(values)

    def merge(self, left: int, right: int) -> int:
        return left + right

    def finalize(self, state: int, decode=None) -> int:
        return state


class _SumPartial(PartialAggregate):
    """sum: the state is the running sum; merge adds (exact on ints/Decimals)."""

    def __init__(self):
        super().__init__("sum")

    def make(self, values: Sequence) -> object:
        return _sum(values)

    def merge(self, left: object, right: object) -> object:
        return left + right

    def finalize(self, state: object, decode=None) -> object:
        return state


class _AvgPartial(PartialAggregate):
    """avg: the state is ``(sum, count)``; division happens once, at finalize.

    Per-shard sums of integer bags stay integers, so the merged total —
    and therefore ``float(total) / n`` — is bit-identical to the serial
    ``avg`` regardless of how the rows were sharded.
    """

    def __init__(self):
        super().__init__("avg")

    def make(self, values: Sequence) -> tuple:
        return (_sum(values), len(values))

    def merge(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: tuple, decode=None) -> float:
        total, count = state
        return float(total) / count


class _ExtremumPartial(PartialAggregate):
    """min / max: the state is the extremum so far; merge re-compares."""

    __slots__ = ("_pick",)

    def __init__(self, name: str, pick: Callable):
        super().__init__(name)
        self._pick = pick

    def make(self, values: Sequence) -> object:
        return self._pick(values)

    def merge(self, left: object, right: object) -> object:
        return self._pick((left, right))

    def finalize(self, state: object, decode=None) -> object:
        return state


class _CountDistinctPartial(PartialAggregate):
    """count_distinct: the state is the set of distinct raw values.

    Shards collect raw column values (term ids on encoded relations — no
    per-shard decoding), merge unions the sets, and only the merged set's
    members are decoded and converted, each exactly once.  This matches the
    serial semantics, where two ids decoding to equal comparable values
    (e.g. ``28`` and ``28.0``) count as one.
    """

    def __init__(self):
        super().__init__("count_distinct", wants_raw=True)

    def make(self, values: Sequence) -> frozenset:
        return frozenset(values)

    def merge(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def finalize(self, state: frozenset, decode=None) -> int:
        members = state if decode is None else (decode(value) for value in state)
        return len({comparable(value) for value in members})


_PARTIAL_FORMS: Dict[str, PartialAggregate] = {
    "count": _CountPartial(),
    "sum": _SumPartial(),
    "avg": _AvgPartial(),
    "min": _ExtremumPartial("min", _min),
    "max": _ExtremumPartial("max", _max),
    "count_distinct": _CountDistinctPartial(),
}


def partial_aggregate(function) -> Optional[PartialAggregate]:
    """The mergeable partial form of an aggregate, or None when it has none.

    ``function`` may be a name or an :class:`AggregateFunction`.  A ``None``
    answer means γ over this aggregate cannot be partitioned (a custom
    registered aggregate without a merge algebra): callers must evaluate
    serially.
    """
    aggregate = get_aggregate(function)
    return _PARTIAL_FORMS.get(aggregate.name)


class AggregateRegistry:
    """Name → :class:`AggregateFunction` registry.

    A fresh registry contains the six standard aggregates; applications can
    :meth:`register` additional ones (e.g. median, stddev) and they become
    usable in analytical queries by name.
    """

    def __init__(self, include_defaults: bool = True):
        self._functions: Dict[str, AggregateFunction] = {}
        if include_defaults:
            for function in (COUNT, COUNT_DISTINCT, SUM, AVG, MIN, MAX):
                self.register(function)

    def register(self, function: AggregateFunction, replace: bool = False) -> None:
        if function.name in self._functions and not replace:
            raise AggregationError(f"aggregate {function.name!r} is already registered")
        self._functions[function.name] = function

    def get(self, name: str) -> AggregateFunction:
        key = name.lower()
        if key not in self._functions:
            raise AggregationError(
                f"unknown aggregate {name!r}; registered: {sorted(self._functions)}"
            )
        return self._functions[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)

    def __len__(self) -> int:
        return len(self._functions)


_DEFAULT_REGISTRY = AggregateRegistry()


def default_registry() -> AggregateRegistry:
    """The process-wide default registry used when none is supplied."""
    return _DEFAULT_REGISTRY


def get_aggregate(function) -> AggregateFunction:
    """Coerce a name or an :class:`AggregateFunction` into an AggregateFunction."""
    if isinstance(function, AggregateFunction):
        return function
    if isinstance(function, str):
        return _DEFAULT_REGISTRY.get(function)
    raise AggregationError(
        f"expected an aggregate name or AggregateFunction, got {type(function).__name__}"
    )
