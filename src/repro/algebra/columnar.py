"""numpy-backed columnar storage and vectorized kernels for the id-space algebra.

The row engine represents every relation as a Python list of tuples and
iterates it row by row — the dominant cost of from-scratch evaluation once
BGP matching, Σ-selection, the fact-variable join and γ all run in id space.
This module adds the **columnar** execution engine: encoded columns stored
as contiguous ``int64`` arrays (:class:`ColumnarIdRelation`) and vectorized
kernels for the hot operators —

* :func:`select_columnar` — positional-predicate σ via boolean masks
  (distinct ids are decoded and tested once, the mask is ``np.isin``);
* :func:`join_columnar` — the int-keyed equi-join (the fact-variable join of
  Definition 4) via argsort + ``searchsorted`` expansion;
* :func:`group_reduce` — γ via lexsort group boundaries with ``reduceat``
  reductions for COUNT/SUM/AVG/MIN/MAX and a sorted-runs COUNT-DISTINCT;
* :class:`ArrayGroupStates` — the array form of the partitioned γ's
  mergeable partial-aggregate states, so shard merges concatenate and
  re-reduce arrays instead of re-boxing per-group Python objects.

Every kernel is a *fast path*: callers (``operators.select``,
``operators.join_on``, ``grouping.group_aggregate``, the BGP evaluator)
try the columnar kernel first and fall back to the row implementation
whenever the input is not columnar or the operation shape is unsupported,
so semantics never depend on which engine ran.

Engine selection
----------------

numpy is an **optional extra** (``pip install repro-rdf-olap[fast]``).
:func:`resolve_engine` decides which engine a component runs:

* an explicit ``engine="rows"`` / ``engine="columnar"`` argument wins;
* otherwise the ``REPRO_ENGINE`` environment variable decides;
* otherwise (``auto``) the columnar engine is used when numpy is importable
  and the row engine when it is not.

Forcing ``columnar`` without numpy raises
:class:`~repro.errors.ConfigurationError` naming the ``[fast]`` extra —
never a silent degradation to the row engine.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AggregationError, ConfigurationError, SchemaMismatchError
from repro.algebra.aggregates import AggregateFunction, get_aggregate
from repro.algebra.expressions import (
    ColumnPredicate,
    _Conjunction,
    _Disjunction,
    _Negation,
    comparable,
)
from repro.algebra.relation import IdRelation, Relation, Row, relation_like

try:  # pragma: no cover - exercised via both CI legs (with and without numpy)
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "ENGINE_ENV_VAR",
    "ENGINES",
    "COLUMNAR_COST_MULTIPLIER",
    "resolve_engine",
    "engine_cost_multiplier",
    "ColumnarIdRelation",
    "select_columnar",
    "join_columnar",
    "project_columnar",
    "group_reduce",
    "group_states_columnar",
    "ArrayGroupStates",
    "prepend_key_column",
    "dedup_arrays",
    "expand_sorted",
]

#: True when numpy is importable (the ``[fast]`` extra is installed).
HAVE_NUMPY = _np is not None

#: Environment variable overriding the default engine choice.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: The two executable engines (``"auto"`` resolves to one of them).
ENGINES = ("rows", "columnar")

#: The planner's per-engine rows-touched multiplier: a row "touched" by a
#: vectorized kernel costs a fraction of a row touched by the Python row
#: engine.  Calibrated against ``benchmarks/bench_columnar_engine.py`` —
#: the observed from-scratch speedup is well above 1/0.35, so the
#: multiplier is conservative (scratch is never under-priced into beating
#: a reuse strategy it would lose to in reality).
COLUMNAR_COST_MULTIPLIER = 0.35

_FAST_EXTRA_HINT = (
    "the columnar engine requires numpy; install the [fast] extra "
    "(pip install 'repro-rdf-olap[fast]') or select engine='rows'"
)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine request to ``"rows"`` or ``"columnar"``.

    Parameters
    ----------
    engine:
        ``"rows"``, ``"columnar"``, ``"auto"`` or None (= ``"auto"``).  An
        explicit engine wins over the ``REPRO_ENGINE`` environment variable;
        ``"auto"`` defers to the variable and then to numpy availability.

    Raises
    ------
    ConfigurationError
        When the request (or the environment variable) is not a known
        engine, or when ``columnar`` is forced but numpy is absent.

    Examples
    --------
    >>> resolve_engine("rows")
    'rows'
    >>> resolve_engine() in ("rows", "columnar")
    True
    """
    requested = engine if engine is not None else "auto"
    if requested == "auto":
        env = os.environ.get(ENGINE_ENV_VAR, "").strip()
        if env:
            if env not in ENGINES:
                raise ConfigurationError(
                    f"{ENGINE_ENV_VAR}={env!r} is not a valid engine; expected one of {ENGINES}"
                )
            requested = env
        else:
            return "columnar" if HAVE_NUMPY else "rows"
    if requested not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {requested!r}; expected 'rows', 'columnar' or 'auto'"
        )
    if requested == "columnar" and not HAVE_NUMPY:
        raise ConfigurationError(_FAST_EXTRA_HINT)
    return requested


def engine_cost_multiplier(engine: str) -> float:
    """The planner's rows-touched multiplier for ``engine``.

    ``1.0`` for the row engine; :data:`COLUMNAR_COST_MULTIPLIER` for the
    columnar engine, reflecting that its per-row cost is a fraction of the
    interpreted row loop's.
    """
    return COLUMNAR_COST_MULTIPLIER if engine == "columnar" else 1.0


def _as_int64(array) -> "_np.ndarray":
    array = _np.asarray(array)
    if array.dtype != _np.int64:
        array = array.astype(_np.int64)
    return array


class ColumnarIdRelation(IdRelation):
    """An :class:`~repro.algebra.relation.IdRelation` stored column-wise.

    Every column — encoded term ids and plain integer columns such as the
    ``newk()`` key column alike — is a contiguous ``int64`` numpy array.
    The relation is a drop-in ``IdRelation``: any row-level consumer that
    touches ``.rows`` (or iterates) transparently materializes the tuple
    list once (cached), while the columnar kernels operate on the arrays
    directly and never box a row.

    Construct via :meth:`from_arrays`; the columnar engine's operators and
    the BGP evaluator's column-block solver are the only producers.
    """

    __slots__ = ("_column_arrays", "_length", "_materialized_rows")

    @classmethod
    def from_arrays(
        cls,
        columns: Sequence[str],
        arrays: Dict[str, "_np.ndarray"],
        dictionary,
        encoded: Optional[Iterable[str]] = None,
    ) -> "ColumnarIdRelation":
        """Adopt one ``int64`` array per column (all of equal length)."""
        if _np is None:  # pragma: no cover - guarded by resolve_engine
            raise ConfigurationError(_FAST_EXTRA_HINT)
        relation = cls.__new__(cls)
        columns = tuple(columns)
        index_of = {name: index for index, name in enumerate(columns)}
        if len(index_of) != len(columns):
            raise SchemaMismatchError(f"duplicate column names in schema: {columns}")
        length: Optional[int] = None
        adopted: Dict[str, "_np.ndarray"] = {}
        for name in columns:
            array = _as_int64(arrays[name])
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise SchemaMismatchError(
                    f"column {name!r} has {len(array)} values, expected {length}"
                )
            adopted[name] = array
        relation._columns = columns
        relation._index_of = index_of
        relation._dictionary = dictionary
        relation._encoded = (
            frozenset(columns) if encoded is None else frozenset(encoded) & set(columns)
        )
        relation._column_arrays = adopted
        relation._length = 0 if length is None else int(length)
        relation._materialized_rows = None
        return relation

    @classmethod
    def from_rows(
        cls,
        columns: Sequence[str],
        rows: Iterable[Sequence],
        dictionary,
        encoded: Optional[Iterable[str]] = None,
    ) -> Optional["ColumnarIdRelation"]:
        """Build a columnar relation from integer row tuples.

        Returns None when numpy is unavailable or any value is not a plain
        integer (e.g. a ``None`` measure) — callers then keep the row
        representation, so missing values never reach the int64 kernels.
        """
        if _np is None:
            return None
        row_list = rows if isinstance(rows, list) else list(rows)
        columns = tuple(columns)
        for row in row_list:
            for value in row:
                if type(value) is not int:
                    return None
        if row_list:
            matrix = _np.array(row_list, dtype=_np.int64)
            arrays = {name: matrix[:, index].copy() for index, name in enumerate(columns)}
        else:
            arrays = {name: _np.empty(0, dtype=_np.int64) for name in columns}
        return cls.from_arrays(columns, arrays, dictionary, encoded)

    # -- row materialization (the compatibility boundary) ---------------

    @property
    def _rows(self) -> List[Row]:
        rows = self._materialized_rows
        if rows is None:
            rows = self._materialize_row_list()
            self._materialized_rows = rows
        return rows

    @_rows.setter
    def _rows(self, value: List[Row]) -> None:  # parent-class assignments
        self._materialized_rows = value

    def _materialize_row_list(self) -> List[Row]:
        if not self._length:
            return []
        column_lists = [self._column_arrays[name].tolist() for name in self._columns]
        return list(zip(*column_lists))

    # -- cheap overrides avoiding materialization ------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def column_array(self, name: str) -> "_np.ndarray":
        """The named column as an ``int64`` array (read-only)."""
        self.column_index(name)  # raises UnknownColumnError for bad names
        return self._column_arrays[name]

    def column_values(self, name: str) -> List:
        return self.column_array(name).tolist()

    def distinct_values(self, name: str) -> set:
        return set(_np.unique(self.column_array(name)).tolist())

    def reorder(self, columns: Sequence[str]) -> "Relation":
        if set(columns) != set(self._columns) or len(columns) != len(self._columns):
            raise SchemaMismatchError(
                f"reorder columns {tuple(columns)} must be a permutation of {self._columns}"
            )
        return ColumnarIdRelation.from_arrays(
            columns, self._column_arrays, self._dictionary, self._encoded
        )

    def head(self, count: int = 10) -> "Relation":
        arrays = {name: array[:count] for name, array in self._column_arrays.items()}
        return ColumnarIdRelation.from_arrays(
            self._columns, arrays, self._dictionary, self._encoded
        )

    def take(self, indexes: "_np.ndarray") -> "ColumnarIdRelation":
        """Gather rows by position (the kernels' output constructor)."""
        arrays = {name: array[indexes] for name, array in self._column_arrays.items()}
        return ColumnarIdRelation.from_arrays(
            self._columns, arrays, self._dictionary, self._encoded
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ColumnarIdRelation(columns={self._columns}, rows={self._length}, "
            f"encoded={sorted(self._encoded)})"
        )


# ---------------------------------------------------------------------------
# σ: boolean-mask selection
# ---------------------------------------------------------------------------


def _column_mask(
    relation: ColumnarIdRelation, column: str, value_test: Callable[[object], bool]
):
    """Mask of rows whose (decoded) column value passes ``value_test``.

    Distinct ids are decoded and tested exactly once; the verdictful ids
    become an ``np.isin`` membership test over the whole column.  Returns
    ``True`` when every distinct value passes (no mask needed).
    """
    array = relation.column_array(column)
    distinct = _np.unique(array)
    decoder = relation.column_decoder(column)
    if decoder is None:
        allowed = [value for value in distinct.tolist() if value_test(value)]
    else:
        allowed = [value for value in distinct.tolist() if value_test(decoder(value))]
    if len(allowed) == len(distinct):
        return True
    if not allowed:
        return _np.zeros(len(array), dtype=bool)
    return _np.isin(array, _np.asarray(allowed, dtype=_np.int64))


def _predicate_mask(relation: ColumnarIdRelation, predicate):
    """Boolean mask (or True for all-rows, None for unsupported shapes)."""
    # Σ predicates: one membership mask per restricted dimension present.
    # (Duck-typed via the public accessor so algebra need not import the
    # analytics layer.)
    sigma = getattr(predicate, "sigma", None)
    if sigma is not None and hasattr(sigma, "dimensions"):
        mask = True
        for name in sigma.dimensions:
            restriction = sigma.restriction(name)
            if restriction.is_full or not relation.has_column(name):
                continue
            test = restriction.value_test()
            column_mask = _column_mask(relation, name, test)
            mask = _combine_and(mask, column_mask)
        return mask
    if isinstance(predicate, ColumnPredicate):
        if not relation.has_column(predicate.column):
            # Mirror the row path: unknown columns keep lazy per-row
            # semantics (an error only when a row is examined) — fall back.
            return None
        column = predicate.column
        return _column_mask(relation, column, lambda value: predicate({column: value}))
    if isinstance(predicate, _Conjunction):
        mask = True
        for child in predicate.predicates:
            child_mask = _predicate_mask(relation, child)
            if child_mask is None:
                return None
            mask = _combine_and(mask, child_mask)
        return mask
    if isinstance(predicate, _Disjunction):
        mask = False
        for child in predicate.predicates:
            child_mask = _predicate_mask(relation, child)
            if child_mask is None:
                return None
            mask = _combine_or(mask, child_mask)
        if mask is False:
            return _np.zeros(len(relation), dtype=bool)
        return mask
    if isinstance(predicate, _Negation):
        inner = _predicate_mask(relation, predicate.inner)
        if inner is None:
            return None
        if inner is True:
            return _np.zeros(len(relation), dtype=bool)
        return ~inner
    return None


def _combine_and(left, right):
    if left is True:
        return right
    if right is True:
        return left
    return left & right


def _combine_or(left, right):
    if left is False:
        return right
    if right is False:
        return left
    if left is True or right is True:
        return True
    return left | right


def select_columnar(
    relation: ColumnarIdRelation, predicate
) -> Optional[ColumnarIdRelation]:
    """Vectorized σ; None when the predicate shape is not mask-compilable."""
    mask = _predicate_mask(relation, predicate)
    if mask is None:
        return None
    if mask is True:
        return relation.take(slice(None))
    return relation.take(mask)


# ---------------------------------------------------------------------------
# π: column projection
# ---------------------------------------------------------------------------


def project_columnar(relation: ColumnarIdRelation, columns: Sequence[str]) -> ColumnarIdRelation:
    """Vectorized π (no row copies; the arrays are shared)."""
    arrays = {name: relation.column_array(name) for name in columns}
    return ColumnarIdRelation.from_arrays(
        tuple(columns), arrays, relation.dictionary, relation.encoded_columns
    )


# ---------------------------------------------------------------------------
# ⋈: int-keyed equi-join via argsort + searchsorted expansion
# ---------------------------------------------------------------------------


def expand_sorted(left_keys, sorted_keys):
    """Gather indexes of ``left_keys ⋈ sorted_keys`` (right side pre-sorted).

    Returns ``(left_idx, sorted_positions)`` such that
    ``left_keys[left_idx] == sorted_keys[sorted_positions]`` pairwise,
    enumerating every match (bag semantics) grouped by left row.  This is
    the engine's expansion-join primitive: the BGP evaluator's column-block
    solver keeps per-predicate triple arrays pre-sorted and joins binding
    columns against them with two ``searchsorted`` calls.
    """
    lo = _np.searchsorted(sorted_keys, left_keys, side="left")
    hi = _np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = _np.repeat(_np.arange(len(left_keys), dtype=_np.int64), counts)
    if total:
        starts = _np.repeat(lo, counts)
        prefix = _np.cumsum(counts) - counts
        offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(prefix, counts)
        positions = starts + offsets
    else:
        positions = _np.empty(0, dtype=_np.int64)
    return left_idx, positions


def _expand_matches(left_keys, right_keys):
    """Gather indexes of the equi-join ``left_keys ⋈ right_keys``.

    Returns ``(left_idx, right_idx)`` such that
    ``left_keys[left_idx] == right_keys[right_idx]`` pairwise, enumerating
    every match (bag semantics) grouped by left row.
    """
    order = _np.argsort(right_keys, kind="stable")
    left_idx, positions = expand_sorted(left_keys, right_keys[order])
    return left_idx, order[positions]


def join_columnar(
    left: ColumnarIdRelation,
    right: ColumnarIdRelation,
    left_column: str,
    right_column: str,
    kept_right_columns: Sequence[str],
) -> ColumnarIdRelation:
    """Vectorized single-pair equi-join (callers check dictionary/encoding)."""
    left_idx, right_idx = _expand_matches(
        left.column_array(left_column), right.column_array(right_column)
    )
    arrays = {name: left.column_array(name)[left_idx] for name in left.columns}
    for name in kept_right_columns:
        arrays[name] = right.column_array(name)[right_idx]
    columns = tuple(left.columns) + tuple(kept_right_columns)
    encoded = left.encoded_columns | (right.encoded_columns & set(kept_right_columns))
    return ColumnarIdRelation.from_arrays(columns, arrays, left.dictionary, encoded)


# ---------------------------------------------------------------------------
# γ: lexsort group boundaries + reduceat reductions
# ---------------------------------------------------------------------------


def _group_boundaries(key_arrays: List["_np.ndarray"], length: int):
    """Sort rows by the key columns and locate the group runs.

    Returns ``(order, starts)``: ``order`` sorts the rows, ``starts`` are
    the positions (within the sorted order) where a new group begins.
    """
    if not key_arrays:
        # γ with no grouping columns: a single global group.
        return _np.arange(length, dtype=_np.int64), _np.zeros(1, dtype=_np.int64)
    order = _np.lexsort(tuple(reversed(key_arrays)))
    is_new = _np.zeros(length, dtype=bool)
    is_new[0] = True
    for array in key_arrays:
        sorted_column = array[order]
        is_new[1:] |= sorted_column[1:] != sorted_column[:-1]
    return order, _np.flatnonzero(is_new)


def dedup_arrays(arrays: List["_np.ndarray"]) -> "_np.ndarray":
    """Indexes of one representative row per distinct tuple (δ, any order)."""
    length = len(arrays[0])
    if length == 0:
        return _np.empty(0, dtype=_np.int64)
    order, starts = _group_boundaries(list(arrays), length)
    return order[starts]


def _measure_value_array(
    relation: ColumnarIdRelation, measure: str, aggregate: AggregateFunction
):
    """Per-row numeric measure values, decoded/converted once per distinct id.

    Returns ``(values, exact_int)`` or None when some value does not convert
    to a plain int/float (Decimal, strings, mixed types): the caller then
    falls back to the row γ, which owns those semantics (including the
    skip-the-group answer to undefined aggregates).
    """
    ids = relation.column_array(measure)
    distinct, inverse = _np.unique(ids, return_inverse=True)
    decoder = relation.column_decoder(measure)
    decoded = [
        comparable(decoder(value)) if decoder is not None else value
        for value in distinct.tolist()
    ]
    try:
        prepared = aggregate.prepare(decoded)
    except AggregationError:
        return None
    if all(isinstance(value, bool) or type(value) is int for value in prepared):
        # Unlimited-precision Python ints must stay exact: bound the
        # magnitude so that even a whole-relation SUM (and a cross-shard
        # merge of per-shard sums) cannot overflow int64 — 2^31 distinct
        # magnitude times < 2^31 contributing rows stays under 2^62.
        # Anything larger falls back to the row engine's exact arithmetic.
        if any(abs(int(value)) >= (1 << 31) for value in prepared):
            return None
        lookup = _np.asarray([int(value) for value in prepared], dtype=_np.int64)
        return lookup[inverse], True
    if all(isinstance(value, (bool, int, float)) for value in prepared):
        try:
            lookup = _np.asarray(
                [float(value) for value in prepared], dtype=_np.float64
            )
        except OverflowError:
            return None
        return lookup[inverse], False
    return None


def _distinct_value_codes(relation: ColumnarIdRelation, measure: str):
    """Per-row codes identifying the *comparable decoded value* of the measure.

    Two ids decoding to equal comparable values (``"28"`` and ``"28.0"``)
    receive the same code — the distinctness space of count_distinct.
    """
    ids = relation.column_array(measure)
    distinct, inverse = _np.unique(ids, return_inverse=True)
    decoder = relation.column_decoder(measure)
    code_of: Dict[object, int] = {}
    codes = _np.empty(len(distinct), dtype=_np.int64)
    for index, value in enumerate(distinct.tolist()):
        key = comparable(decoder(value)) if decoder is not None else value
        codes[index] = code_of.setdefault(key, len(code_of))
    return codes[inverse]


_REDUCIBLE = ("count", "count_distinct", "sum", "avg", "min", "max")


def group_reduce(
    relation: ColumnarIdRelation,
    by: Sequence[str],
    measure: str,
    function,
    output_column: str = "v",
) -> Optional[Relation]:
    """Vectorized γ_{by, ⊕(measure)}; None when unsupported (row fallback).

    Matches :func:`repro.algebra.grouping.group_aggregate` cell for cell:
    group keys stay in id space, the aggregated column is plain Python
    scalars, and integer bags aggregate exactly (int64 ``reduceat`` for
    SUM, exact ``(sum, count)`` division for AVG).
    """
    aggregate = get_aggregate(function)
    if aggregate.name not in _REDUCIBLE:
        return None
    length = len(relation)
    key_arrays = [relation.column_array(name) for name in by]
    output_columns = tuple(by) + (output_column,)

    if length == 0:
        return relation_like(output_columns, [], relation, plain_columns=(output_column,))

    values = None
    if aggregate.name == "count":
        pass  # cardinality only — no decoding
    elif aggregate.name == "count_distinct":
        value_codes = _distinct_value_codes(relation, measure)
    else:
        found = _measure_value_array(relation, measure, aggregate)
        if found is None:
            return None
        values, _ = found

    if aggregate.name == "count_distinct":
        # One sort by (group keys, value code): every (group, value) run
        # start is marked, group runs are located in the SAME sorted order,
        # and the distinct count per group is the number of marks it spans.
        order, pair_starts = _group_boundaries(key_arrays + [value_codes], length)
        group_new = _np.zeros(length, dtype=bool)
        group_new[0] = True
        for array in key_arrays:
            sorted_column = array[order]
            group_new[1:] |= sorted_column[1:] != sorted_column[:-1]
        starts = _np.flatnonzero(group_new)
        run_marks = _np.zeros(length, dtype=_np.int64)
        run_marks[pair_starts] = 1
        aggregated = _np.add.reduceat(run_marks, starts)
    else:
        order, starts = _group_boundaries(key_arrays, length)
        if aggregate.name == "count":
            boundaries = _np.append(starts, length)
            aggregated = _np.diff(boundaries)
        else:
            sorted_values = values[order]
            if aggregate.name == "sum":
                aggregated = _np.add.reduceat(sorted_values, starts)
            elif aggregate.name == "min":
                aggregated = _np.minimum.reduceat(sorted_values, starts)
            elif aggregate.name == "max":
                aggregated = _np.maximum.reduceat(sorted_values, starts)
            else:  # avg — division once per group, exact over integer bags
                sums = _np.add.reduceat(sorted_values, starts)
                boundaries = _np.append(starts, length)
                counts = _np.diff(boundaries)
                aggregated = sums.astype(_np.float64) / counts

    key_columns = [array[order][starts].tolist() for array in key_arrays]
    value_list = aggregated.tolist()
    rows = [
        tuple(column[index] for column in key_columns) + (value_list[index],)
        for index in range(len(value_list))
    ]
    return relation_like(output_columns, rows, relation, plain_columns=(output_column,))


# ---------------------------------------------------------------------------
# array-form partial-aggregate states (partitioned γ without re-boxing)
# ---------------------------------------------------------------------------


class ArrayGroupStates:
    """Array form of one partition's γ state map.

    The dict form (:func:`repro.algebra.grouping.group_partial_states`)
    boxes one Python state per group; the array form keeps one row per
    group across parallel arrays — ``keys`` (one int64 array per grouping
    column) plus the aggregate's state arrays — so merging two shards'
    states is a concatenate + group-reduce, not a per-group dict fold.

    Supported for ``count``/``sum``/``avg``/``min``/``max`` over exactly
    representable numeric bags; anything else stays in dict form.  All
    attributes are plain picklable data (states cross process boundaries).
    """

    __slots__ = ("function", "key_columns", "keys", "data")

    def __init__(
        self,
        function: str,
        key_columns: Tuple[str, ...],
        keys: List["_np.ndarray"],
        data: List["_np.ndarray"],
    ):
        self.function = function
        self.key_columns = tuple(key_columns)
        self.keys = list(keys)
        self.data = list(data)

    def group_count(self) -> int:
        if self.key_columns:
            return len(self.keys[0]) if self.keys else 0
        return len(self.data[0]) if self.data else 0

    def __len__(self) -> int:
        return self.group_count()

    def to_dict(self) -> Dict[Tuple, object]:
        """Box into the dict-state form (for mixing with dict partitions)."""
        count = self.group_count()
        key_lists = [array.tolist() for array in self.keys]
        data_lists = [array.tolist() for array in self.data]
        states: Dict[Tuple, object] = {}
        for index in range(count):
            key = tuple(column[index] for column in key_lists)
            if self.function == "avg":
                states[key] = (data_lists[0][index], data_lists[1][index])
            else:
                states[key] = data_lists[0][index]
        return states

    def merge(self, other: "ArrayGroupStates") -> "ArrayGroupStates":
        """Combine two partitions' states (associative and commutative)."""
        if self.function != other.function or self.key_columns != other.key_columns:
            raise AggregationError("cannot merge mismatched array group states")
        keys = [
            _np.concatenate([mine, theirs])
            for mine, theirs in zip(self.keys, other.keys)
        ]
        data = [
            _np.concatenate([mine, theirs])
            for mine, theirs in zip(self.data, other.data)
        ]
        length = len(data[0])
        if length == 0:
            return ArrayGroupStates(self.function, self.key_columns, keys, data)
        order, starts = _group_boundaries(keys, length)
        merged_keys = [array[order][starts] for array in keys]
        if self.function in ("count", "sum"):
            merged_data = [_np.add.reduceat(data[0][order], starts)]
        elif self.function == "avg":
            merged_data = [
                _np.add.reduceat(data[0][order], starts),
                _np.add.reduceat(data[1][order], starts),
            ]
        elif self.function == "min":
            merged_data = [_np.minimum.reduceat(data[0][order], starts)]
        elif self.function == "max":
            merged_data = [_np.maximum.reduceat(data[0][order], starts)]
        else:  # pragma: no cover - constructors only emit the five above
            raise AggregationError(f"no array merge for aggregate {self.function!r}")
        return ArrayGroupStates(self.function, self.key_columns, merged_keys, merged_data)

    def finalize_rows(self) -> List[Row]:
        """``key + (aggregated value,)`` rows, all plain Python scalars."""
        count = self.group_count()
        key_lists = [array.tolist() for array in self.keys]
        if self.function == "avg":
            sums, counts = self.data
            values = (sums.astype(_np.float64) / counts).tolist()
        else:
            values = self.data[0].tolist()
        return [
            tuple(column[index] for column in key_lists) + (values[index],)
            for index in range(count)
        ]

    def __reduce__(self):
        return (
            ArrayGroupStates,
            (self.function, self.key_columns, self.keys, self.data),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ArrayGroupStates({self.function}, {self.group_count()} groups, "
            f"keys={self.key_columns})"
        )


def group_states_columnar(
    relation: ColumnarIdRelation, by: Sequence[str], measure: str, function
) -> Optional[ArrayGroupStates]:
    """Array-form per-partition γ states; None when unsupported.

    Mirrors :func:`repro.algebra.grouping.group_partial_states` for the
    mergeable numeric aggregates.  AVG states carry exact integer ``(sum,
    count)`` pairs when the bag is integral, so merged shard averages are
    bit-identical to the serial answer.
    """
    aggregate = get_aggregate(function)
    if aggregate.name not in ("count", "sum", "avg", "min", "max"):
        return None
    length = len(relation)
    key_arrays = [relation.column_array(name) for name in by]
    if length == 0:
        return ArrayGroupStates(
            aggregate.name,
            tuple(by),
            [_np.empty(0, dtype=_np.int64) for _ in by],
            _empty_state_data(aggregate.name),
        )
    values = None
    if aggregate.name != "count":
        found = _measure_value_array(relation, measure, aggregate)
        if found is None:
            return None
        values, _ = found
    order, starts = _group_boundaries(key_arrays, length)
    keys = [array[order][starts] for array in key_arrays]
    boundaries = _np.append(starts, length)
    counts = _np.diff(boundaries)
    if aggregate.name == "count":
        data = [counts]
    else:
        sorted_values = values[order]
        if aggregate.name == "sum":
            data = [_np.add.reduceat(sorted_values, starts)]
        elif aggregate.name == "avg":
            data = [_np.add.reduceat(sorted_values, starts), counts]
        elif aggregate.name == "min":
            data = [_np.minimum.reduceat(sorted_values, starts)]
        else:
            data = [_np.maximum.reduceat(sorted_values, starts)]
    return ArrayGroupStates(aggregate.name, tuple(by), keys, data)


def _empty_state_data(function: str) -> List["_np.ndarray"]:
    if function == "avg":
        return [_np.empty(0, dtype=_np.int64), _np.empty(0, dtype=_np.int64)]
    return [_np.empty(0, dtype=_np.int64)]


# ---------------------------------------------------------------------------
# mᵏ: key-column prepend (the extended measure result)
# ---------------------------------------------------------------------------


def prepend_key_column(
    relation: ColumnarIdRelation, key_column: str, keys: range
) -> ColumnarIdRelation:
    """``mᵏ``: prepend a fresh ``newk()`` key per row as an ``arange`` column."""
    arrays = {key_column: _np.arange(keys.start, keys.stop, dtype=_np.int64)}
    for name in relation.columns:
        arrays[name] = relation.column_array(name)
    return ColumnarIdRelation.from_arrays(
        (key_column,) + tuple(relation.columns),
        arrays,
        relation.dictionary,
        relation.encoded_columns,
    )
