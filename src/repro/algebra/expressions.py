"""Row predicates for selections (σ).

A selection predicate is any callable taking a row dictionary (column name →
value) and returning a boolean.  This module provides composable predicate
builders covering the needs of the OLAP operations:

* :func:`equals` — dimension = value (SLICE);
* :func:`is_in` — dimension ∈ set of values (DICE);
* :func:`between` — range restriction on a dimension (range DICE, as in the
  paper's Example 4 where ``20 ≤ d_age ≤ 30``);
* :func:`compare` — generic comparison against a constant;
* boolean combinators :func:`conjunction`, :func:`disjunction`,
  :func:`negation`.

Values are compared through :func:`comparable`, which converts RDF literals
to native Python values so that a dimension bound to ``Literal("28",
xsd:integer)`` satisfies ``between("age", 20, 30)``.
"""

from __future__ import annotations

import operator
from typing import Callable, Collection, Dict, Iterable, Mapping

from repro.errors import UnknownColumnError

__all__ = [
    "RowPredicate",
    "comparable",
    "equals",
    "is_in",
    "between",
    "compare",
    "conjunction",
    "disjunction",
    "negation",
    "always_true",
]

#: Signature of a selection predicate.
RowPredicate = Callable[[Mapping[str, object]], bool]

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def comparable(value: object) -> object:
    """Return a plain Python value suitable for comparisons.

    RDF literals are converted with :meth:`Literal.to_python`; IRIs and
    blank nodes compare by their string form; everything else is returned
    unchanged.
    """
    to_python = getattr(value, "to_python", None)
    if callable(to_python):
        return to_python()
    n3 = getattr(value, "n3", None)
    if callable(n3) and not isinstance(value, (str, int, float, bool)):
        return str(value)
    return value


def _column_value(row: Mapping[str, object], column: str) -> object:
    try:
        return row[column]
    except KeyError:
        raise UnknownColumnError(f"selection refers to unknown column {column!r}") from None


def equals(column: str, value: object) -> RowPredicate:
    """Predicate ``row[column] == value`` (SLICE semantics).

    Equality is checked both on the raw values (so two identical RDF terms
    match) and on their comparable forms (so ``Literal("28")`` matches the
    integer 28).
    """
    target_comparable = comparable(value)

    def predicate(row: Mapping[str, object]) -> bool:
        actual = _column_value(row, column)
        if actual == value:
            return True
        return comparable(actual) == target_comparable

    return predicate


def is_in(column: str, values: Collection[object]) -> RowPredicate:
    """Predicate ``row[column] ∈ values`` (DICE semantics)."""
    values = list(values)
    raw_values = set()
    comparable_values = set()
    for value in values:
        try:
            raw_values.add(value)
        except TypeError:
            pass
        comp = comparable(value)
        try:
            comparable_values.add(comp)
        except TypeError:
            pass

    def predicate(row: Mapping[str, object]) -> bool:
        actual = _column_value(row, column)
        try:
            if actual in raw_values:
                return True
        except TypeError:
            pass
        try:
            return comparable(actual) in comparable_values
        except TypeError:
            return False

    return predicate


def between(column: str, low: object, high: object, inclusive: bool = True) -> RowPredicate:
    """Predicate ``low ≤ row[column] ≤ high`` (range DICE)."""
    low_comparable = comparable(low)
    high_comparable = comparable(high)

    def predicate(row: Mapping[str, object]) -> bool:
        actual = comparable(_column_value(row, column))
        try:
            if inclusive:
                return low_comparable <= actual <= high_comparable
            return low_comparable < actual < high_comparable
        except TypeError:
            return False

    return predicate


def compare(column: str, op: str, value: object) -> RowPredicate:
    """Generic comparison predicate, ``op`` one of ``== != < <= > >=``."""
    if op not in _COMPARATORS:
        raise ValueError(f"unknown comparison operator {op!r}; expected one of {sorted(_COMPARATORS)}")
    comparator = _COMPARATORS[op]
    target = comparable(value)

    def predicate(row: Mapping[str, object]) -> bool:
        actual = comparable(_column_value(row, column))
        try:
            return comparator(actual, target)
        except TypeError:
            return False

    return predicate


def conjunction(*predicates: RowPredicate) -> RowPredicate:
    """Logical AND of predicates (empty conjunction is true)."""
    predicate_list = list(predicates)

    def predicate(row: Mapping[str, object]) -> bool:
        return all(p(row) for p in predicate_list)

    return predicate


def disjunction(*predicates: RowPredicate) -> RowPredicate:
    """Logical OR of predicates (empty disjunction is false)."""
    predicate_list = list(predicates)

    def predicate(row: Mapping[str, object]) -> bool:
        return any(p(row) for p in predicate_list)

    return predicate


def negation(inner: RowPredicate) -> RowPredicate:
    """Logical NOT of a predicate."""

    def predicate(row: Mapping[str, object]) -> bool:
        return not inner(row)

    return predicate


def always_true(row: Mapping[str, object]) -> bool:
    """The trivial predicate (useful as a default)."""
    return True
