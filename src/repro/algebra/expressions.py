"""Row predicates for selections (σ).

A selection predicate is any callable taking a row dictionary (column name →
value) and returning a boolean.  This module provides composable predicate
builders covering the needs of the OLAP operations:

* :func:`equals` — dimension = value (SLICE);
* :func:`is_in` — dimension ∈ set of values (DICE);
* :func:`between` — range restriction on a dimension (range DICE, as in the
  paper's Example 4 where ``20 ≤ d_age ≤ 30``);
* :func:`compare` — generic comparison against a constant;
* boolean combinators :func:`conjunction`, :func:`disjunction`,
  :func:`negation`.

Values are compared through :func:`comparable`, which converts RDF literals
to native Python values so that a dimension bound to ``Literal("28",
xsd:integer)`` satisfies ``between("age", 20, 30)``.

Every builder returns a :class:`ColumnPredicate` (or a boolean combination
of them).  These are callable on row mappings for backward compatibility,
but they also **compile** against a concrete relation schema: σ resolves the
column to its position once and evaluates rows positionally, with no
per-row dict construction.  On id-space relations
(:class:`~repro.algebra.relation.IdRelation`) the compiled test decodes
column ids on demand and memoizes the verdict per id, so a selection over a
million-row encoded relation decodes each distinct dimension value once.
"""

from __future__ import annotations

import operator
from typing import Callable, Collection, Dict, Iterable, Mapping

from repro.errors import UnknownColumnError

__all__ = [
    "RowPredicate",
    "ColumnPredicate",
    "comparable",
    "compile_predicate",
    "equals",
    "is_in",
    "between",
    "compare",
    "conjunction",
    "disjunction",
    "negation",
    "always_true",
]

#: Signature of a selection predicate.
RowPredicate = Callable[[Mapping[str, object]], bool]

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_MISSING = object()


def comparable(value: object) -> object:
    """Return a plain Python value suitable for comparisons.

    RDF literals are converted with :meth:`Literal.to_python`; IRIs and
    blank nodes compare by their string form; everything else is returned
    unchanged.
    """
    to_python = getattr(value, "to_python", None)
    if callable(to_python):
        return to_python()
    n3 = getattr(value, "n3", None)
    if callable(n3) and not isinstance(value, (str, int, float, bool)):
        return str(value)
    return value


def _column_value(row: Mapping[str, object], column: str) -> object:
    try:
        return row[column]
    except KeyError:
        raise UnknownColumnError(f"selection refers to unknown column {column!r}") from None


def memoized_unary(function: Callable[[object], object]) -> Callable[[object], object]:
    """Memoize a unary function by argument (the shared id-decode cache shape)."""
    cache: Dict[object, object] = {}

    def call(value: object) -> object:
        result = cache.get(value, _MISSING)
        if result is _MISSING:
            result = cache[value] = function(value)
        return result

    return call


def memoized_value_test(test: Callable[[object], bool], decoder: Callable[[object], object]):
    """Lift a decoded-value test to term ids, caching the verdict per id."""
    return memoized_unary(lambda value_id: bool(test(decoder(value_id))))


class ColumnPredicate:
    """A predicate over one column's value.

    Callable on row mappings (the historical :data:`RowPredicate` protocol)
    and compilable against a relation schema via :meth:`compile`, which
    returns a positional row test (id-aware on encoded relations).
    """

    __slots__ = ("column", "_test", "description")

    def __init__(self, column: str, test: Callable[[object], bool], description: str = ""):
        self.column = column
        self._test = test
        self.description = description or f"predicate on {column!r}"

    def __call__(self, row: Mapping[str, object]) -> bool:
        return bool(self._test(_column_value(row, self.column)))

    def compile(self, relation) -> Callable[[tuple], bool]:
        """Resolve the column to its position in ``relation`` once."""
        index = relation.column_index(self.column)
        test = self._test
        decoder = relation.column_decoder(self.column)
        if decoder is not None:
            test = memoized_value_test(test, decoder)

        def check(row: tuple) -> bool:
            return bool(test(row[index]))

        return check

    def __repr__(self) -> str:  # pragma: no cover
        return f"ColumnPredicate({self.description})"


class _Compound:
    """Boolean combination of predicates; compiles child-wise."""

    __slots__ = ("_predicates",)

    def __init__(self, predicates: Iterable[RowPredicate]):
        self._predicates = list(predicates)

    @property
    def predicates(self) -> list:
        """The child predicates (read-only; used by the columnar kernels)."""
        return list(self._predicates)


class _Conjunction(_Compound):
    def __call__(self, row: Mapping[str, object]) -> bool:
        return all(predicate(row) for predicate in self._predicates)

    def compile(self, relation) -> Callable[[tuple], bool]:
        compiled = [compile_predicate(predicate, relation) for predicate in self._predicates]
        return lambda row: all(check(row) for check in compiled)


class _Disjunction(_Compound):
    def __call__(self, row: Mapping[str, object]) -> bool:
        return any(predicate(row) for predicate in self._predicates)

    def compile(self, relation) -> Callable[[tuple], bool]:
        compiled = [compile_predicate(predicate, relation) for predicate in self._predicates]
        return lambda row: any(check(row) for check in compiled)


class _Negation:
    __slots__ = ("_inner",)

    def __init__(self, inner: RowPredicate):
        self._inner = inner

    @property
    def inner(self) -> RowPredicate:
        """The negated predicate (read-only; used by the columnar kernels)."""
        return self._inner

    def __call__(self, row: Mapping[str, object]) -> bool:
        return not self._inner(row)

    def compile(self, relation) -> Callable[[tuple], bool]:
        compiled = compile_predicate(self._inner, relation)
        return lambda row: not compiled(row)


def compile_predicate(predicate: RowPredicate, relation) -> Callable[[tuple], bool]:
    """Compile a row predicate into a positional test over ``relation``'s rows.

    Structured predicates (:class:`ColumnPredicate`, Σ predicates, boolean
    combinations) compile to direct index access; arbitrary callables fall
    back to a per-row mapping — built through
    :meth:`~repro.algebra.relation.Relation.row_as_dict`, which decodes
    encoded columns, so even opaque predicates see decoded values on
    id-space relations.
    """
    compiler = getattr(predicate, "compile", None)
    if callable(compiler):
        try:
            return compiler(relation)
        except UnknownColumnError:
            # Preserve the lazy per-row semantics of the mapping protocol: a
            # predicate over a column the relation lacks only errors when a
            # row is actually examined (so σ over an empty relation stays a
            # no-op instead of raising at compile time).
            pass
    as_dict = relation.row_as_dict
    return lambda row: bool(predicate(as_dict(row)))


def equals(column: str, value: object) -> ColumnPredicate:
    """Predicate ``row[column] == value`` (SLICE semantics).

    Equality is checked both on the raw values (so two identical RDF terms
    match) and on their comparable forms (so ``Literal("28")`` matches the
    integer 28).
    """
    target_comparable = comparable(value)

    def test(actual: object) -> bool:
        if actual == value:
            return True
        return comparable(actual) == target_comparable

    return ColumnPredicate(column, test, description=f"{column} == {value!r}")


def is_in(column: str, values: Collection[object]) -> ColumnPredicate:
    """Predicate ``row[column] ∈ values`` (DICE semantics)."""
    values = list(values)
    raw_values = set()
    comparable_values = set()
    for value in values:
        try:
            raw_values.add(value)
        except TypeError:
            pass
        comp = comparable(value)
        try:
            comparable_values.add(comp)
        except TypeError:
            pass

    def test(actual: object) -> bool:
        try:
            if actual in raw_values:
                return True
        except TypeError:
            pass
        try:
            return comparable(actual) in comparable_values
        except TypeError:
            return False

    return ColumnPredicate(column, test, description=f"{column} in {len(values)} values")


def between(column: str, low: object, high: object, inclusive: bool = True) -> ColumnPredicate:
    """Predicate ``low ≤ row[column] ≤ high`` (range DICE)."""
    low_comparable = comparable(low)
    high_comparable = comparable(high)

    def test(value: object) -> bool:
        actual = comparable(value)
        try:
            if inclusive:
                return low_comparable <= actual <= high_comparable
            return low_comparable < actual < high_comparable
        except TypeError:
            return False

    return ColumnPredicate(column, test, description=f"{low!r} <= {column} <= {high!r}")


def compare(column: str, op: str, value: object) -> ColumnPredicate:
    """Generic comparison predicate, ``op`` one of ``== != < <= > >=``."""
    if op not in _COMPARATORS:
        raise ValueError(f"unknown comparison operator {op!r}; expected one of {sorted(_COMPARATORS)}")
    comparator = _COMPARATORS[op]
    target = comparable(value)

    def test(value_: object) -> bool:
        actual = comparable(value_)
        try:
            return comparator(actual, target)
        except TypeError:
            return False

    return ColumnPredicate(column, test, description=f"{column} {op} {value!r}")


def conjunction(*predicates: RowPredicate) -> RowPredicate:
    """Logical AND of predicates (empty conjunction is true)."""
    return _Conjunction(predicates)


def disjunction(*predicates: RowPredicate) -> RowPredicate:
    """Logical OR of predicates (empty disjunction is false)."""
    return _Disjunction(predicates)


def negation(inner: RowPredicate) -> RowPredicate:
    """Logical NOT of a predicate."""
    return _Negation(inner)


def always_true(row: Mapping[str, object]) -> bool:
    """The trivial predicate (useful as a default)."""
    return True
