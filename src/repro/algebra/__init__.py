"""Bag-relational algebra: relations, operators, predicates, aggregation.

This package provides the relational machinery in which the paper states
its OLAP rewriting algorithms:

* :mod:`repro.algebra.relation` — the :class:`Relation` bag-of-rows table
  and its id-space variant :class:`IdRelation` (dictionary-encoded columns,
  late materialization);
* :mod:`repro.algebra.operators` — σ, π, δ, ⋈, ∪, rename, ... ;
* :mod:`repro.algebra.expressions` — row predicates for σ;
* :mod:`repro.algebra.aggregates` — ⊕ functions with distributivity metadata;
* :mod:`repro.algebra.grouping` — the γ group-and-aggregate operator.
"""

from repro.algebra.aggregates import (
    AVG,
    COUNT,
    COUNT_DISTINCT,
    MAX,
    MIN,
    SUM,
    AggregateFunction,
    AggregateRegistry,
    default_registry,
    get_aggregate,
)
from repro.algebra.expressions import (
    always_true,
    between,
    compare,
    comparable,
    conjunction,
    disjunction,
    equals,
    is_in,
    negation,
)
from repro.algebra.grouping import aggregate_column, group_aggregate, group_rows
from repro.algebra.operators import (
    cross_product,
    dedup,
    difference_all,
    extend_column,
    join_on,
    natural_join,
    project,
    rename,
    select,
    union_all,
)
from repro.algebra.relation import IdRelation, Relation, relation_like

__all__ = [
    "Relation",
    "IdRelation",
    "relation_like",
    "select",
    "project",
    "dedup",
    "rename",
    "natural_join",
    "join_on",
    "cross_product",
    "union_all",
    "difference_all",
    "extend_column",
    "group_rows",
    "group_aggregate",
    "aggregate_column",
    "AggregateFunction",
    "AggregateRegistry",
    "default_registry",
    "get_aggregate",
    "COUNT",
    "COUNT_DISTINCT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "equals",
    "is_in",
    "between",
    "compare",
    "comparable",
    "conjunction",
    "disjunction",
    "negation",
    "always_true",
]
