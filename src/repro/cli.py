"""Command-line interface: generate datasets, run the experiment suite, inspect cubes.

Installed as the ``repro-olap`` console script (also runnable as
``python -m repro.cli``).  Subcommands:

``generate``
    Generate one of the synthetic scenarios (blogger / video / generic) and
    write its base graph and AnS instance as N-Triples files.

``experiments``
    Run the EXP-1 … EXP-9 experiment workloads at a chosen scale and write a
    Markdown report (the same harness that fills EXPERIMENTS.md).

``demo``
    Run the paper's running example end to end and print the cube, the OLAP
    transformations and the rewriting-vs-scratch comparison.  With
    ``--explain`` each operation goes through the cost-based planner and
    its costed plan is printed; with ``--advise`` the session's history is
    mined into an advisor report (what to pre-materialize / pin / evict,
    plus the fitted cost model) and the advised warm-started replay is
    compared against the cold static planner.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.reporting import write_report
from repro.bench.workloads import SCALES, run_all_experiments
from repro.datagen import (
    BloggerConfig,
    GenericConfig,
    VideoConfig,
    blogger_dataset,
    generic_dataset,
    video_dataset,
)
from repro.datagen.blogger import sites_per_blogger_query
from repro.olap import Dice, DrillOut, OLAPSession, Slice
from repro.rdf.ntriples import dump_ntriples

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-olap",
        description="Efficient OLAP operations for RDF analytics (paper reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("scenario", choices=["blogger", "video", "generic"])
    generate.add_argument("--size", type=int, default=500, help="facts / bloggers / videos to generate")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--base-output", default=None, help="N-Triples path for the base graph")
    generate.add_argument("--instance-output", default=None, help="N-Triples path for the AnS instance")

    experiments = subparsers.add_parser("experiments", help="run the experiment suite")
    experiments.add_argument("--scale", choices=sorted(SCALES), default="small")
    experiments.add_argument("--output", default="experiment_report.md", help="Markdown report path")

    demo = subparsers.add_parser("demo", help="run the paper's running example end to end")
    demo.add_argument("--bloggers", type=int, default=200)
    demo.add_argument(
        "--explain",
        action="store_true",
        help="route each OLAP operation through the cost-based planner and print the chosen plan",
    )
    demo.add_argument(
        "--advise",
        action="store_true",
        help=(
            "profile the demo workload, print the advisor's materialize/pin/evict "
            "report and fitted cost model, and replay advised vs. static"
        ),
    )
    demo.add_argument(
        "--serve",
        action="store_true",
        help=(
            "drive the multi-tenant serving layer: concurrent tenants querying "
            "while a writer republishes, with per-answer verification"
        ),
    )
    return parser


def _command_generate(arguments: argparse.Namespace) -> int:
    if arguments.scenario == "blogger":
        dataset = blogger_dataset(BloggerConfig(bloggers=arguments.size, seed=arguments.seed))
    elif arguments.scenario == "video":
        dataset = video_dataset(VideoConfig(videos=arguments.size, seed=arguments.seed))
    else:
        dataset = generic_dataset(GenericConfig(facts=arguments.size, seed=arguments.seed))
    base_path = arguments.base_output or f"{arguments.scenario}_base.nt"
    instance_path = arguments.instance_output or f"{arguments.scenario}_instance.nt"
    dump_ntriples(dataset.base_graph, base_path)
    dump_ntriples(dataset.instance, instance_path)
    print(f"base graph:   {len(dataset.base_graph)} triples -> {base_path}")
    print(f"AnS instance: {len(dataset.instance)} triples -> {instance_path}")
    return 0


def _command_experiments(arguments: argparse.Namespace) -> int:
    tables = run_all_experiments(arguments.scale)
    write_report(tables, arguments.output, heading=f"Measured results (scale: {arguments.scale})")
    for table in tables:
        print(table.to_text())
        print()
    print(f"report written to {arguments.output}")
    return 0


def _command_demo(arguments: argparse.Namespace) -> int:
    if arguments.serve:
        return _demo_serve()
    dataset = blogger_dataset(BloggerConfig(bloggers=arguments.bloggers))
    session = OLAPSession(dataset.instance, dataset.schema)
    query = sites_per_blogger_query(dataset.schema)
    cube = session.execute(query)
    print(f"Instance: {len(dataset.instance)} triples; cube {query.name}: {len(cube)} cells")
    print(cube.to_text(max_rows=10))
    print()
    ages = sorted(cube.dimension_values("dage"), key=repr)
    operations = (Slice("dage", ages[0]), Dice({"dage": (20, 40)}), DrillOut("dage"))
    if arguments.advise:
        return _demo_advise(dataset, session, query, operations)
    if arguments.explain:
        # The planner chooses per operation; print its costed plan each time.
        for operation in operations:
            session.transform(query, operation, strategy="plan")
            record = session.history[-1]
            print(record.details["plan"])
            print(
                f"   executed {record.strategy} in {record.seconds * 1000:.2f} ms "
                f"-> {record.output_cells} cells"
            )
            print()
        return 0
    for operation in operations:
        comparison = session.compare_strategies(query, operation)
        print(
            f"{operation.describe():<35} rewrite {comparison['rewrite_seconds'] * 1000:8.2f} ms   "
            f"scratch {comparison['scratch_seconds'] * 1000:8.2f} ms   "
            f"speedup {comparison['speedup']:6.1f}x   equal={comparison['equal']}"
        )
    return 0


def _demo_serve() -> int:
    """Smoke the serving layer: 4 tenants × 10 requests, 90/10 read-write.

    Every answered cube is verified against from-scratch evaluation at the
    generation it was served from; the run fails loudly on any divergence.
    """
    from repro.bench.workloads import serving_load_run
    from repro.serving.generations import resolve_publish_mode

    dataset = generic_dataset(GenericConfig(facts=300, dimensions=2, seed=7))
    mode = resolve_publish_mode("auto")
    print(f"serving demo: generic instance, {len(dataset.instance)} triples, publish mode {mode!r}")
    run = serving_load_run(
        dataset.instance,
        dataset.schema,
        dataset.query,
        clients=4,
        write_ratio=0.1,
        requests_per_client=10,
        seed=7,
    )
    print(
        f"4 tenants x 10 requests (90/10 read-write): "
        f"{run['served']} served, {run['writes']} writes, {run['rejected']} rejected, "
        f"{run['publishes']} publishes"
    )
    print(
        f"read latency p50 {run['read_p50_ms']:.2f} ms, p95 {run['read_p95_ms']:.2f} ms, "
        f"p99 {run['read_p99_ms']:.2f} ms; throughput {run['throughput_ops']:.1f} op/s"
    )
    print(
        f"snapshot versions answered: {run['versions_served']}; "
        f"verified {run['verified']}/{run['served']} cubes against scratch at their version"
    )
    return 0 if run["verified"] == run["served"] else 1


def _demo_advise(dataset, session: OLAPSession, query, operations) -> int:
    """Profile → advise → advised replay vs. the cold static planner."""
    import time

    # Profile pass: the demo operations (with repeats, so keys become hot).
    for operation in operations:
        session.transform(query, operation, strategy="plan")
    for operation in operations:
        session.transform(query, operation, strategy="plan")  # repeats
    report = session.advise()
    print(report.describe())
    print()

    def replay(replay_session: OLAPSession) -> float:
        started = time.perf_counter()
        replay_session.execute(query)
        for operation in operations:
            replay_session.transform(query, operation, strategy="plan")
        return time.perf_counter() - started

    static_session = OLAPSession(dataset.instance, dataset.schema)
    static_seconds = replay(static_session)

    advised_session = OLAPSession(
        dataset.instance, dataset.schema, cost_model=report.cost_model
    )
    applied = advised_session.apply_recommendations(report)
    advised_seconds = replay(advised_session)

    print(
        f"applied: {applied['materialized']} materialized, "
        f"{applied['pinned']} pinned, {applied['evicted']} evicted"
    )
    print(f"static planner (cold):   {static_seconds * 1000:8.2f} ms")
    print(
        f"advised (warm + fitted): {advised_seconds * 1000:8.2f} ms   "
        f"speedup {static_seconds / advised_seconds if advised_seconds > 0 else float('inf'):.2f}x   "
        f"cache hits {advised_session.cache.stats.hits}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "generate":
        return _command_generate(arguments)
    if arguments.command == "experiments":
        return _command_experiments(arguments)
    if arguments.command == "demo":
        return _command_demo(arguments)
    return 2  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
