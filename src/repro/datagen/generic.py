"""Configurable generic generator for scaling and ablation experiments.

The blogger and video generators mirror the paper's examples; the scaling
sweeps of the experiment harness need finer control: an exact number of
facts, an exact number of dimensions with chosen cardinalities, an exact
multi-value fan-out per dimension, and a chosen number of measure values per
fact.  :func:`generic_dataset` provides that: a star-shaped dataset where

* ``Fact`` resources form the analysis class of interest;
* each of ``dimensions`` properties ``dim0 .. dim{n-1}`` links every fact to
  one or more values drawn from a dimension-specific value pool;
* a ``measure`` property links every fact to one or more numeric literals;
* an optional ``detail`` property links every fact to an intermediate
  ``Detail`` resource that carries two further properties (``detailA``,
  ``detailB``) — the structure needed to exercise DRILL-IN's auxiliary
  query over a chain of existential variables.

Together with :func:`generic_schema` and pre-built classifier/measure
queries (:func:`generic_query`), this is the workload generator behind
EXP-2 ... EXP-8 in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX, RDF, Namespace
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.bgp.query import BGPQuery
from repro.analytics.instance import materialize_instance
from repro.analytics.query import AnalyticalQuery
from repro.analytics.schema import AnalyticalSchema
from repro.datagen.distributions import multi_valued_count, pick_zipf

__all__ = ["GenericConfig", "GenericDataset", "generic_dataset", "generic_schema", "generic_query"]

_RDF_TYPE = RDF.term("type")


@dataclass
class GenericConfig:
    """Parameters of the generic star-shaped generator."""

    facts: int = 1000
    dimensions: int = 2
    dimension_cardinality: int = 20
    values_per_dimension: float = 1.0
    measures_per_fact: float = 2.0
    measure_max: int = 1000
    with_detail: bool = True
    detail_cardinality: int = 50
    detail_a_cardinality: int = 10
    detail_b_cardinality: int = 5
    zipf_exponent: float = 0.0
    seed: int = 42

    def validate(self) -> None:
        if self.facts <= 0:
            raise ValueError("facts must be positive")
        if self.dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if self.dimension_cardinality <= 0:
            raise ValueError("dimension_cardinality must be positive")
        if self.values_per_dimension < 1.0:
            raise ValueError("values_per_dimension must be at least 1")
        if self.measures_per_fact < 1.0:
            raise ValueError("measures_per_fact must be at least 1")


@dataclass
class GenericDataset:
    """A generated generic scenario and its ready-to-run analytical query."""

    config: GenericConfig
    base_graph: Graph
    schema: AnalyticalSchema
    instance: Graph
    #: The canonical analytical query over this dataset (count of measures
    #: classified by every generated dimension).
    query: AnalyticalQuery


def _dimension_property(index: int, namespace: Namespace = EX) -> IRI:
    return namespace.term(f"dim{index}")


def _dimension_value(dimension: int, value: int, namespace: Namespace = EX) -> IRI:
    return namespace.term(f"dimvalue/{dimension}/{value}")


def generic_base_graph(config: GenericConfig, namespace: Namespace = EX) -> Graph:
    """Generate the base RDF graph described in the module docstring."""
    config.validate()
    rng = random.Random(config.seed)
    graph = Graph(name=f"generic_{config.facts}x{config.dimensions}")

    dimension_values: List[List[IRI]] = []
    for dimension in range(config.dimensions):
        values = [
            _dimension_value(dimension, value, namespace)
            for value in range(config.dimension_cardinality)
        ]
        dimension_values.append(values)
        for value in values:
            graph.add(Triple(value, _RDF_TYPE, namespace.term("DimensionValue")))

    details = [namespace.term(f"detail/{index}") for index in range(config.detail_cardinality)]
    if config.with_detail:
        for index, detail in enumerate(details):
            graph.add(Triple(detail, _RDF_TYPE, namespace.term("Detail")))
            graph.add(
                Triple(detail, namespace.detailA, Literal(f"A{index % config.detail_a_cardinality}"))
            )
            graph.add(
                Triple(detail, namespace.detailB, Literal(f"B{index % config.detail_b_cardinality}"))
            )

    for index in range(config.facts):
        fact = namespace.term(f"fact/{index}")
        graph.add(Triple(fact, _RDF_TYPE, namespace.term("Fact")))
        for dimension in range(config.dimensions):
            count = multi_valued_count(rng, config.values_per_dimension, maximum=5)
            chosen = set()
            for _ in range(count):
                chosen.add(pick_zipf(rng, dimension_values[dimension], config.zipf_exponent))
            for value in chosen:
                graph.add(Triple(fact, _dimension_property(dimension, namespace), value))
        for _ in range(multi_valued_count(rng, config.measures_per_fact, maximum=8)):
            graph.add(Triple(fact, namespace.measure, Literal(rng.randrange(1, config.measure_max))))
        if config.with_detail:
            graph.add(Triple(fact, namespace.hasDetail, pick_zipf(rng, details, config.zipf_exponent)))
    return graph


def generic_schema(config: GenericConfig, namespace: Namespace = EX) -> AnalyticalSchema:
    """The analytical schema matching :func:`generic_base_graph`."""
    schema = AnalyticalSchema(name="GenericAnS", namespace=namespace)
    schema.add_class_from_type("Fact")
    schema.add_class_from_type("DimensionValue")

    subject = Variable("s")
    object_ = Variable("o")

    def object_class(class_name: str, predicate: IRI) -> None:
        schema.add_class(
            class_name,
            BGPQuery([object_], [TriplePattern(subject, predicate, object_)], name=f"def_{class_name}"),
        )

    object_class("MeasureValue", namespace.measure)
    for dimension in range(config.dimensions):
        schema.add_property_from_predicate(
            f"dim{dimension}", "Fact", "DimensionValue", base_predicate=_dimension_property(dimension, namespace)
        )
    schema.add_property_from_predicate("measure", "Fact", "MeasureValue")
    if config.with_detail:
        schema.add_class_from_type("Detail")
        object_class("DetailA", namespace.detailA)
        object_class("DetailB", namespace.detailB)
        schema.add_property_from_predicate("hasDetail", "Fact", "Detail")
        schema.add_property_from_predicate("detailA", "Detail", "DetailA")
        schema.add_property_from_predicate("detailB", "Detail", "DetailB")
    return schema


def generic_query(
    config: GenericConfig,
    aggregate: str = "count",
    dimensions: Optional[Sequence[int]] = None,
    include_detail_in_classifier: bool = False,
    namespace: Namespace = EX,
    name: str = "Q",
) -> AnalyticalQuery:
    """Build the canonical AnQ over a generic dataset.

    The classifier classifies facts by the chosen dimensions (all generated
    dimensions by default); with ``include_detail_in_classifier=True`` the
    classifier body additionally walks ``hasDetail`` / ``detailA`` /
    ``detailB`` through existential variables, making ``detailA`` /
    ``detailB`` available as DRILL-IN targets.  The measure is the fact's
    ``measure`` values, aggregated with ``aggregate``.
    """
    chosen = list(range(config.dimensions)) if dimensions is None else list(dimensions)
    fact = Variable("x")
    dimension_variables = [Variable(f"d{dimension}") for dimension in chosen]

    body = [TriplePattern(fact, _RDF_TYPE, namespace.term("Fact"))]
    for dimension, variable in zip(chosen, dimension_variables):
        body.append(TriplePattern(fact, _dimension_property(dimension, namespace), variable))
    if include_detail_in_classifier:
        if not config.with_detail:
            raise ValueError("the dataset was generated without detail resources")
        detail = Variable("detail")
        body.append(TriplePattern(fact, namespace.hasDetail, detail))
        body.append(TriplePattern(detail, namespace.detailA, Variable("da")))
        body.append(TriplePattern(detail, namespace.detailB, Variable("db")))
    classifier = BGPQuery([fact] + dimension_variables, body, name="c")

    measure_value = Variable("v")
    measure = BGPQuery(
        [fact, measure_value],
        [
            TriplePattern(fact, _RDF_TYPE, namespace.term("Fact")),
            TriplePattern(fact, namespace.measure, measure_value),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, aggregate, name=name)


def generic_dataset(config: Optional[GenericConfig] = None, aggregate: str = "count") -> GenericDataset:
    """Generate base graph + schema + instance + canonical query in one call."""
    config = config or GenericConfig()
    base_graph = generic_base_graph(config)
    schema = generic_schema(config)
    instance = materialize_instance(schema, base_graph, name="generic_instance")
    query = generic_query(config, aggregate=aggregate)
    return GenericDataset(
        config=config, base_graph=base_graph, schema=schema, instance=instance, query=query
    )
