"""Random value distributions for the synthetic data generators.

All generators take an explicit :class:`random.Random` instance so that
datasets are fully deterministic given a seed — a requirement for
reproducible benchmarks and property tests.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

__all__ = ["zipf_index", "pick_zipf", "pick_uniform", "multi_valued_count"]

T = TypeVar("T")


def zipf_index(rng: random.Random, size: int, exponent: float = 1.0) -> int:
    """Sample an index in ``[0, size)`` following a (truncated) Zipf law.

    The classical inverse-CDF method over the finite harmonic weights is
    used; ``exponent=0`` degenerates to the uniform distribution.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if exponent <= 0:
        return rng.randrange(size)
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(size)]
    total = sum(weights)
    threshold = rng.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if cumulative >= threshold:
            return index
    return size - 1


def pick_zipf(rng: random.Random, values: Sequence[T], exponent: float = 1.0) -> T:
    """Pick one element of ``values`` with Zipf-distributed popularity."""
    return values[zipf_index(rng, len(values), exponent)]


def pick_uniform(rng: random.Random, values: Sequence[T]) -> T:
    """Pick one element uniformly at random."""
    return values[rng.randrange(len(values))]


def multi_valued_count(rng: random.Random, mean: float, maximum: int = 10) -> int:
    """Sample how many values a fact gets for a multi-valued property.

    Returns at least 1.  ``mean`` is the target average fan-out; the sample
    is drawn from a geometric-like distribution truncated at ``maximum`` so
    that a mean of 1.0 yields exactly one value for every fact (the
    relational, single-valued case) and larger means produce occasional
    bursts — the shape that makes the paper's drill-out subtlety visible.
    """
    if mean <= 1.0:
        return 1
    count = 1
    # Probability of adding one more value, chosen so the expectation is ~mean.
    probability = 1.0 - 1.0 / mean
    while count < maximum and rng.random() < probability:
        count += 1
    return count
