"""Synthetic generator for the video-portal scenario of Example 6 (drill-in).

The base graph contains ``Video`` resources posted on ``Website`` resources;
each website has a URL and supports one or more browsers; each video has a
view count.  The scenario is the one used by the paper to illustrate the
DRILL-IN auxiliary query: the original cube counts views per URL, and the
drill-in refines it by the supported browser — information absent from
``pres(Q)`` and fetched from the instance through ``q_aux``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX, RDF, Namespace
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import Triple
from repro.analytics.instance import materialize_instance
from repro.analytics.schema import AnalyticalSchema
from repro.datagen.distributions import multi_valued_count, pick_uniform, pick_zipf

__all__ = ["VideoConfig", "VideoDataset", "video_base_graph", "video_schema", "video_dataset"]

_RDF_TYPE = RDF.term("type")

_BROWSERS = ["firefox", "chrome", "safari", "edge", "opera"]


@dataclass
class VideoConfig:
    """Parameters of the video-portal data generator."""

    videos: int = 200
    websites: int = 30
    postings_per_video: float = 1.5
    browsers_per_website: float = 1.6
    max_views: int = 100_000
    seed: int = 11

    def validate(self) -> None:
        if self.videos <= 0 or self.websites <= 0:
            raise ValueError("videos and websites must be positive")
        if self.postings_per_video < 1.0:
            raise ValueError("postings_per_video must be at least 1")


@dataclass
class VideoDataset:
    """A generated video scenario: base graph, schema and AnS instance."""

    config: VideoConfig
    base_graph: Graph
    schema: AnalyticalSchema
    instance: Graph


def video_base_graph(config: Optional[VideoConfig] = None) -> Graph:
    """Generate the base RDF graph of the video-portal scenario."""
    config = config or VideoConfig()
    config.validate()
    rng = random.Random(config.seed)
    graph = Graph(name=f"videos_{config.videos}")

    websites: List[IRI] = []
    for index in range(config.websites):
        website = EX.term(f"website/site{index}")
        websites.append(website)
        graph.add(Triple(website, _RDF_TYPE, EX.Website))
        graph.add(Triple(website, EX.hasUrl, Literal(f"http://videos.example/{index}")))
        for _ in range(multi_valued_count(rng, config.browsers_per_website, maximum=len(_BROWSERS))):
            graph.add(Triple(website, EX.supportsBrowser, Literal(pick_uniform(rng, _BROWSERS))))

    for index in range(config.videos):
        video = EX.term(f"video/video{index}")
        graph.add(Triple(video, _RDF_TYPE, EX.Video))
        graph.add(Triple(video, EX.viewNum, Literal(rng.randrange(1, config.max_views))))
        for _ in range(multi_valued_count(rng, config.postings_per_video, maximum=5)):
            graph.add(Triple(video, EX.postedOn, pick_zipf(rng, websites, exponent=0.7)))
    return graph


def video_schema(namespace: Namespace = EX) -> AnalyticalSchema:
    """The analytical schema of the video scenario (Videos, Websites, URLs, browsers)."""
    from repro.rdf.terms import Variable
    from repro.rdf.triples import TriplePattern
    from repro.bgp.query import BGPQuery

    schema = AnalyticalSchema(name="VideoAnS", namespace=namespace)
    schema.add_class_from_type("Video")
    schema.add_class_from_type("Website")

    def object_class(class_name: str, predicate: IRI) -> None:
        subject = Variable("s")
        object_ = Variable("o")
        schema.add_class(
            class_name,
            BGPQuery([object_], [TriplePattern(subject, predicate, object_)], name=f"def_{class_name}"),
        )

    object_class("Url", namespace.hasUrl)
    object_class("Browser", namespace.supportsBrowser)
    object_class("ViewCount", namespace.viewNum)

    schema.add_property_from_predicate("postedOn", "Video", "Website")
    schema.add_property_from_predicate("hasUrl", "Website", "Url")
    schema.add_property_from_predicate("supportsBrowser", "Website", "Browser")
    schema.add_property_from_predicate("viewNum", "Video", "ViewCount")
    return schema


def video_dataset(config: Optional[VideoConfig] = None) -> VideoDataset:
    """Generate base graph + schema + materialized AnS instance in one call."""
    config = config or VideoConfig()
    base_graph = video_base_graph(config)
    schema = video_schema()
    instance = materialize_instance(schema, base_graph, name="video_instance")
    return VideoDataset(config=config, base_graph=base_graph, schema=schema, instance=instance)


def views_per_url_query(schema: Optional[AnalyticalSchema] = None, name: str = "Q_views"):
    """Example 6: total views per website URL (drill-in target: the browser).

    ``Q :- ⟨c(x, d2), m(x, v), sum⟩`` with the classifier body walking
    ``postedOn`` / ``hasUrl`` / ``supportsBrowser`` so that the browser
    variable ``d3`` is available for DRILL-IN.
    """
    from repro.rdf.terms import Variable
    from repro.rdf.triples import TriplePattern
    from repro.bgp.query import BGPQuery
    from repro.analytics.query import AnalyticalQuery

    x = Variable("x")
    website = Variable("d1")
    url = Variable("d2")
    browser = Variable("d3")
    classifier = BGPQuery(
        [x, url],
        [
            TriplePattern(x, _RDF_TYPE, EX.Video),
            TriplePattern(x, EX.postedOn, website),
            TriplePattern(website, EX.hasUrl, url),
            TriplePattern(website, EX.supportsBrowser, browser),
        ],
        name="c",
    )
    views = Variable("v")
    measure = BGPQuery(
        [x, views],
        [
            TriplePattern(x, _RDF_TYPE, EX.Video),
            TriplePattern(x, EX.viewNum, views),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, "sum", schema=schema, name=name)
