"""Synthetic dataset generators (substitute for the tech report's datasets).

* :mod:`repro.datagen.blogger` — the paper's running example (Figure 1);
* :mod:`repro.datagen.videos` — the drill-in scenario of Example 6;
* :mod:`repro.datagen.generic` — a configurable star-shaped generator for
  scaling / selectivity / fan-out / dimensionality sweeps;
* :mod:`repro.datagen.distributions` — seeded random helpers.
"""

from repro.datagen.blogger import (
    BloggerConfig,
    BloggerDataset,
    blogger_base_graph,
    blogger_dataset,
    blogger_schema,
    sites_per_blogger_query,
    words_per_blogger_query,
)
from repro.datagen.distributions import multi_valued_count, pick_uniform, pick_zipf, zipf_index
from repro.datagen.generic import (
    GenericConfig,
    GenericDataset,
    generic_dataset,
    generic_query,
    generic_schema,
)
from repro.datagen.videos import (
    VideoConfig,
    VideoDataset,
    video_base_graph,
    video_dataset,
    video_schema,
    views_per_url_query,
)

__all__ = [
    "BloggerConfig",
    "BloggerDataset",
    "blogger_base_graph",
    "blogger_schema",
    "blogger_dataset",
    "sites_per_blogger_query",
    "words_per_blogger_query",
    "VideoConfig",
    "VideoDataset",
    "video_base_graph",
    "video_schema",
    "video_dataset",
    "views_per_url_query",
    "GenericConfig",
    "GenericDataset",
    "generic_dataset",
    "generic_schema",
    "generic_query",
    "zipf_index",
    "pick_zipf",
    "pick_uniform",
    "multi_valued_count",
]
