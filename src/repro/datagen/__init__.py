"""Synthetic dataset generators (substitute for the tech report's datasets).

* :mod:`repro.datagen.blogger` — the paper's running example (Figure 1);
* :mod:`repro.datagen.videos` — the drill-in scenario of Example 6;
* :mod:`repro.datagen.generic` — a configurable star-shaped generator for
  scaling / selectivity / fan-out / dimensionality sweeps;
* :mod:`repro.datagen.retail` — skewed retail sales with multi-level
  dimension hierarchies and an RDFS schema (entailment workloads);
* :mod:`repro.datagen.distributions` — seeded random helpers.
"""

from repro.datagen.blogger import (
    BloggerConfig,
    BloggerDataset,
    blogger_base_graph,
    blogger_dataset,
    blogger_schema,
    sites_per_blogger_query,
    words_per_blogger_query,
)
from repro.datagen.distributions import multi_valued_count, pick_uniform, pick_zipf, zipf_index
from repro.datagen.generic import (
    GenericConfig,
    GenericDataset,
    generic_dataset,
    generic_query,
    generic_schema,
)
from repro.datagen.retail import (
    RetailConfig,
    RetailDataset,
    category_department_hierarchy,
    city_region_hierarchy,
    region_zone_hierarchy,
    retail_base_graph,
    retail_dataset,
    retail_rdfs_triples,
    retail_schema,
    revenue_query,
)
from repro.datagen.videos import (
    VideoConfig,
    VideoDataset,
    video_base_graph,
    video_dataset,
    video_schema,
    views_per_url_query,
)

__all__ = [
    "BloggerConfig",
    "BloggerDataset",
    "blogger_base_graph",
    "blogger_schema",
    "blogger_dataset",
    "sites_per_blogger_query",
    "words_per_blogger_query",
    "VideoConfig",
    "VideoDataset",
    "video_base_graph",
    "video_schema",
    "video_dataset",
    "views_per_url_query",
    "GenericConfig",
    "GenericDataset",
    "generic_dataset",
    "generic_schema",
    "generic_query",
    "RetailConfig",
    "RetailDataset",
    "retail_base_graph",
    "retail_schema",
    "retail_dataset",
    "retail_rdfs_triples",
    "revenue_query",
    "city_region_hierarchy",
    "region_zone_hierarchy",
    "category_department_hierarchy",
    "zipf_index",
    "pick_zipf",
    "pick_uniform",
    "multi_valued_count",
]
