"""Synthetic generator for the paper's running example: bloggers and blog posts.

The generated base graph instantiates the analytical schema of Figure 1:
``Blogger`` resources with names, ages, cities and acquaintances, writing
``BlogPost`` resources that are posted on ``Site`` resources and have word
counts.  :func:`blogger_schema` builds the matching
:class:`~repro.analytics.schema.AnalyticalSchema` and
:func:`blogger_dataset` bundles base graph, schema and materialized instance.

Knobs
-----
``bloggers``             number of bloggers (facts);
``posts_per_blogger``    average number of posts each blogger writes;
``sites``                number of distinct sites;
``cities``, ``ages``     dimension cardinalities;
``multi_city_fraction``  fraction of bloggers that live in *two* cities
                         (multi-valued dimension — the RDF-specific
                         behaviour that breaks naive drill-out);
``name_variants``        average number of names per blogger (``identifiedBy``
                         is multi-valued in the paper: user1 is both
                         "Bill" and "William");
``missing_age_fraction`` fraction of bloggers with no age at all
                         (heterogeneity: AnS instances need not be complete).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX, RDF, Namespace
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import Triple
from repro.analytics.instance import materialize_instance
from repro.analytics.schema import AnalyticalSchema
from repro.datagen.distributions import multi_valued_count, pick_uniform, pick_zipf

__all__ = ["BloggerConfig", "BloggerDataset", "blogger_base_graph", "blogger_schema", "blogger_dataset"]

_RDF_TYPE = RDF.term("type")

_CITY_NAMES = [
    "Madrid", "NY", "Kyoto", "Paris", "Berlin", "Lisbon", "Oslo", "Rome",
    "Dublin", "Vienna", "Prague", "Athens", "Helsinki", "Warsaw", "Zagreb",
    "Tallinn", "Riga", "Porto", "Lyon", "Munich",
]

_FIRST_NAMES = [
    "Bill", "William", "Anna", "Maria", "Chen", "Yuki", "Omar", "Lena",
    "Ivan", "Sofia", "Liam", "Noah", "Emma", "Mila", "Hugo", "Ines",
]


@dataclass
class BloggerConfig:
    """Parameters of the blogger data generator."""

    bloggers: int = 100
    posts_per_blogger: float = 3.0
    sites: int = 20
    cities: int = 8
    ages: int = 40
    min_age: int = 18
    multi_city_fraction: float = 0.2
    name_variants: float = 1.3
    missing_age_fraction: float = 0.05
    acquaintances_per_blogger: float = 1.5
    word_count_max: int = 2000
    seed: int = 7

    def validate(self) -> None:
        if self.bloggers <= 0:
            raise ValueError("bloggers must be positive")
        if self.sites <= 0 or self.cities <= 0 or self.ages <= 0:
            raise ValueError("sites, cities and ages must be positive")
        if not 0.0 <= self.multi_city_fraction <= 1.0:
            raise ValueError("multi_city_fraction must be in [0, 1]")
        if not 0.0 <= self.missing_age_fraction <= 1.0:
            raise ValueError("missing_age_fraction must be in [0, 1]")


@dataclass
class BloggerDataset:
    """A generated blogger scenario: base graph, schema and AnS instance."""

    config: BloggerConfig
    base_graph: Graph
    schema: AnalyticalSchema
    instance: Graph


def blogger_base_graph(config: Optional[BloggerConfig] = None) -> Graph:
    """Generate the base RDF graph of the blogger scenario."""
    config = config or BloggerConfig()
    config.validate()
    rng = random.Random(config.seed)
    graph = Graph(name=f"bloggers_{config.bloggers}")

    cities: List[IRI] = []
    for index in range(config.cities):
        label = _CITY_NAMES[index] if index < len(_CITY_NAMES) else f"City{index}"
        cities.append(EX.term(f"city/{label}"))
    sites = [EX.term(f"site/site{index}") for index in range(config.sites)]
    ages = [Literal(config.min_age + index) for index in range(config.ages)]

    post_counter = 0
    bloggers = [EX.term(f"user/user{index}") for index in range(config.bloggers)]
    for blogger_index, blogger in enumerate(bloggers):
        graph.add(Triple(blogger, _RDF_TYPE, EX.Blogger))

        # Names: multi-valued (identifiedBy), at least one.
        for _ in range(multi_valued_count(rng, config.name_variants, maximum=4)):
            graph.add(Triple(blogger, EX.identifiedBy, Literal(pick_uniform(rng, _FIRST_NAMES))))

        # Age: single-valued, possibly missing (heterogeneous data).
        if rng.random() >= config.missing_age_fraction:
            graph.add(Triple(blogger, EX.hasAge, pick_uniform(rng, ages)))

        # City: multi-valued for a configurable fraction of bloggers.
        city_count = 2 if rng.random() < config.multi_city_fraction else 1
        for city in rng.sample(cities, min(city_count, len(cities))):
            graph.add(Triple(blogger, EX.livesIn, city))

        # Acquaintances.
        for _ in range(multi_valued_count(rng, config.acquaintances_per_blogger, maximum=6)):
            other = pick_uniform(rng, bloggers)
            if other != blogger:
                graph.add(Triple(blogger, EX.acquaintedWith, other))

        # Posts, their sites and word counts.
        post_count = multi_valued_count(rng, config.posts_per_blogger, maximum=12)
        for _ in range(post_count):
            post = EX.term(f"post/post{post_counter}")
            post_counter += 1
            graph.add(Triple(post, _RDF_TYPE, EX.BlogPost))
            graph.add(Triple(blogger, EX.wrotePost, post))
            graph.add(Triple(post, EX.postedOn, pick_zipf(rng, sites, exponent=0.8)))
            graph.add(Triple(post, EX.hasWordCount, Literal(rng.randrange(50, config.word_count_max))))

    for city in cities:
        graph.add(Triple(city, _RDF_TYPE, EX.City))
    for site in sites:
        graph.add(Triple(site, _RDF_TYPE, EX.Site))
    return graph


def blogger_schema(namespace: Namespace = EX) -> AnalyticalSchema:
    """The analytical schema of Figure 1 (bloggers, posts, sites, ages, cities...).

    Classes and properties mirror the base vocabulary one-to-one (the
    identity lens), which keeps the example close to the paper while still
    exercising the full AnS machinery; richer lenses are shown in the tests.
    """
    schema = AnalyticalSchema(name="BloggerAnS", namespace=namespace)
    schema.add_class_from_type("Blogger")
    schema.add_class_from_type("BlogPost")

    # Value classes: defined by the objects of the corresponding properties.
    from repro.rdf.terms import Variable
    from repro.rdf.triples import TriplePattern
    from repro.bgp.query import BGPQuery

    def object_class(class_name: str, predicate: IRI) -> None:
        subject = Variable("s")
        object_ = Variable("o")
        schema.add_class(
            class_name,
            BGPQuery([object_], [TriplePattern(subject, predicate, object_)], name=f"def_{class_name}"),
        )

    schema.add_class_from_type("City")
    schema.add_class_from_type("Site")
    object_class("Age", namespace.hasAge)
    object_class("Name", namespace.identifiedBy)
    object_class("Value", namespace.hasWordCount)

    schema.add_property_from_predicate("acquaintedWith", "Blogger", "Blogger")
    schema.add_property_from_predicate("identifiedBy", "Blogger", "Name")
    schema.add_property_from_predicate("hasAge", "Blogger", "Age")
    schema.add_property_from_predicate("livesIn", "Blogger", "City")
    schema.add_property_from_predicate("wrotePost", "Blogger", "BlogPost")
    schema.add_property_from_predicate("postedOn", "BlogPost", "Site")
    schema.add_property_from_predicate("hasWordCount", "BlogPost", "Value")
    return schema


def blogger_dataset(config: Optional[BloggerConfig] = None) -> BloggerDataset:
    """Generate base graph + schema + materialized AnS instance in one call."""
    config = config or BloggerConfig()
    base_graph = blogger_base_graph(config)
    schema = blogger_schema()
    instance = materialize_instance(schema, base_graph, name="blogger_instance")
    return BloggerDataset(config=config, base_graph=base_graph, schema=schema, instance=instance)


# ---------------------------------------------------------------------------
# The paper's example queries over this scenario
# ---------------------------------------------------------------------------


def sites_per_blogger_query(schema: Optional[AnalyticalSchema] = None, name: str = "Q_sites"):
    """Example 1: the number of sites each blogger posts on, by age and city.

    ``Q :- ⟨c(x, dage, dcity), m(x, vsite), count⟩``
    """
    from repro.rdf.terms import Variable
    from repro.rdf.triples import TriplePattern
    from repro.bgp.query import BGPQuery
    from repro.analytics.query import AnalyticalQuery

    x = Variable("x")
    dage = Variable("dage")
    dcity = Variable("dcity")
    classifier = BGPQuery(
        [x, dage, dcity],
        [
            TriplePattern(x, _RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, dage),
            TriplePattern(x, EX.livesIn, dcity),
        ],
        name="c",
    )
    post = Variable("p")
    vsite = Variable("vsite")
    measure = BGPQuery(
        [x, vsite],
        [
            TriplePattern(x, _RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.wrotePost, post),
            TriplePattern(post, EX.postedOn, vsite),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, "count", schema=schema, name=name)


def words_per_blogger_query(schema: Optional[AnalyticalSchema] = None, name: str = "Q_words"):
    """Example 4: the average number of words in blog posts, by age and city.

    ``Q :- ⟨c(x, dage, dcity), m(x, vwords), average⟩``
    """
    from repro.rdf.terms import Variable
    from repro.rdf.triples import TriplePattern
    from repro.bgp.query import BGPQuery
    from repro.analytics.query import AnalyticalQuery

    x = Variable("x")
    dage = Variable("dage")
    dcity = Variable("dcity")
    classifier = BGPQuery(
        [x, dage, dcity],
        [
            TriplePattern(x, _RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, dage),
            TriplePattern(x, EX.livesIn, dcity),
        ],
        name="c",
    )
    post = Variable("p")
    vwords = Variable("vwords")
    measure = BGPQuery(
        [x, vwords],
        [
            TriplePattern(x, _RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.wrotePost, post),
            TriplePattern(post, EX.hasWordCount, vwords),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, "avg", schema=schema, name=name)
