"""Synthetic retail-sales workload: skewed facts, deep hierarchies, RDFS schema.

The third large-scale generator (after :mod:`repro.datagen.blogger` and
:mod:`repro.datagen.videos`), built to exercise the two PR-10 subsystems:

* **multi-level dimension hierarchies** — every sale happens at a store in a
  city; cities roll up to regions and regions to zones (a *two-stage* stack
  over the same dimension), and product categories roll up to departments.
  All hierarchy levels ship as explicit child→parent mappings
  (:meth:`DimensionHierarchy.from_pairs`), so their canonical tokens are
  content-based and rolled cache entries stay persistable;
* **RDFS entailment** — the instance carries ρdf schema statements:
  ``OnlineSale ⊑ Sale`` and ``StoreSale ⊑ Sale`` (a configurable fraction of
  sales is typed *only* with a subclass), ``hasPromoAmount ⊑ hasAmount``
  (a fraction of amounts is recorded only under the subproperty), and
  ``rdfs:domain(hasCoupon) = Sale``.  A plain session undercounts; sessions
  with ``entailment="saturate"`` / ``"rewrite"`` (or a pre-saturated
  instance) agree with each other — the differential the entailment test
  wall checks.

Skew: products and stores are drawn with a Zipf distribution, so a few
"blockbuster" products dominate the fact table — rolled-up cubes shrink
dramatically, which is what makes lattice reuse worth planning for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX, RDF, RDFS, Namespace
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.bgp.query import BGPQuery
from repro.analytics.instance import materialize_instance
from repro.analytics.query import AnalyticalQuery
from repro.analytics.schema import AnalyticalSchema
from repro.datagen.distributions import pick_uniform, pick_zipf
from repro.olap.hierarchy import DimensionHierarchy

__all__ = [
    "RetailConfig",
    "RetailDataset",
    "retail_base_graph",
    "retail_schema",
    "retail_rdfs_triples",
    "retail_dataset",
    "revenue_query",
    "city_region_hierarchy",
    "region_zone_hierarchy",
    "category_department_hierarchy",
]

_RDF_TYPE = RDF.term("type")
_SUBCLASS = RDFS.term("subClassOf")
_SUBPROPERTY = RDFS.term("subPropertyOf")
_DOMAIN = RDFS.term("domain")

_REGION_NAMES = [
    "Iberia", "Nordics", "DACH", "Benelux", "Balkans", "Baltics",
    "Isles", "Alps", "Levant", "Maghreb",
]
_ZONE_OF_REGION_INDEX = 3  # regions per zone in the geographic roll-up


@dataclass
class RetailConfig:
    """Parameters of the retail data generator."""

    sales: int = 300
    stores: int = 12
    products: int = 40
    cities: int = 9
    regions: int = 3
    categories: int = 8
    departments: int = 3
    #: Fraction of sales typed only with a subclass of ``Sale`` (their
    #: membership in the classifier is *entailed*, not asserted).
    subclass_only_fraction: float = 0.3
    #: Fraction of sales whose amount is recorded only under the
    #: subproperty ``hasPromoAmount`` (the measure match is entailed).
    promo_fraction: float = 0.2
    #: Fraction of sales carrying a coupon (``rdfs:domain`` typing).
    coupon_fraction: float = 0.1
    amount_max: int = 500
    zipf_exponent: float = 0.9
    seed: int = 11

    def validate(self) -> None:
        if self.sales <= 0:
            raise ValueError("sales must be positive")
        if min(self.stores, self.products, self.cities, self.categories) <= 0:
            raise ValueError("stores, products, cities and categories must be positive")
        if not 1 <= self.regions <= self.cities:
            raise ValueError("regions must be in [1, cities]")
        if not 1 <= self.departments <= self.categories:
            raise ValueError("departments must be in [1, categories]")
        for name in ("subclass_only_fraction", "promo_fraction", "coupon_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass
class RetailDataset:
    """A generated retail scenario: base graph, schema and AnS instance."""

    config: RetailConfig
    base_graph: Graph
    schema: AnalyticalSchema
    instance: Graph


def _city_terms(config: RetailConfig) -> List[IRI]:
    return [EX.term(f"city/c{index}") for index in range(config.cities)]


def _category_terms(config: RetailConfig) -> List[IRI]:
    return [EX.term(f"category/cat{index}") for index in range(config.categories)]


def _region_label(index: int) -> str:
    if index < len(_REGION_NAMES):
        return _REGION_NAMES[index]
    return f"Region{index}"


def retail_rdfs_triples() -> List[Triple]:
    """The ρdf schema statements of the retail vocabulary."""
    return [
        Triple(EX.OnlineSale, _SUBCLASS, EX.Sale),
        Triple(EX.StoreSale, _SUBCLASS, EX.Sale),
        Triple(EX.hasPromoAmount, _SUBPROPERTY, EX.hasAmount),
        Triple(EX.hasCoupon, _DOMAIN, EX.Sale),
    ]


def retail_base_graph(config: Optional[RetailConfig] = None) -> Graph:
    """Generate the base RDF graph of the retail scenario (schema included)."""
    config = config or RetailConfig()
    config.validate()
    rng = random.Random(config.seed)
    graph = Graph(name=f"retail_{config.sales}")
    for statement in retail_rdfs_triples():
        graph.add(statement)

    cities = _city_terms(config)
    categories = _category_terms(config)
    stores = [EX.term(f"store/s{index}") for index in range(config.stores)]
    products = [EX.term(f"product/p{index}") for index in range(config.products)]

    for index, store in enumerate(stores):
        graph.add(Triple(store, _RDF_TYPE, EX.Store))
        graph.add(Triple(store, EX.inCity, cities[index % config.cities]))
    for index, product in enumerate(products):
        graph.add(Triple(product, _RDF_TYPE, EX.Product))
        graph.add(Triple(product, EX.inCategory, categories[index % config.categories]))
    for city in cities:
        graph.add(Triple(city, _RDF_TYPE, EX.City))
    for category in categories:
        graph.add(Triple(category, _RDF_TYPE, EX.Category))

    sale_types = (EX.OnlineSale, EX.StoreSale)
    for index in range(config.sales):
        sale = EX.term(f"sale/t{index}")
        if rng.random() < config.subclass_only_fraction:
            graph.add(Triple(sale, _RDF_TYPE, pick_uniform(rng, sale_types)))
        else:
            graph.add(Triple(sale, _RDF_TYPE, EX.Sale))
        graph.add(Triple(sale, EX.atStore, pick_zipf(rng, stores, exponent=config.zipf_exponent)))
        graph.add(Triple(sale, EX.ofProduct, pick_zipf(rng, products, exponent=config.zipf_exponent)))
        amount = Literal(rng.randrange(1, config.amount_max))
        if rng.random() < config.promo_fraction:
            graph.add(Triple(sale, EX.hasPromoAmount, amount))
        else:
            graph.add(Triple(sale, EX.hasAmount, amount))
        if rng.random() < config.coupon_fraction:
            graph.add(Triple(sale, EX.hasCoupon, Literal(f"COUPON{index % 7}")))
    return graph


def retail_schema(namespace: Namespace = EX) -> AnalyticalSchema:
    """The analytical schema of the retail scenario (identity lens)."""
    schema = AnalyticalSchema(name="RetailAnS", namespace=namespace)
    for class_name in ("Sale", "OnlineSale", "StoreSale", "Store", "Product", "City", "Category"):
        schema.add_class_from_type(class_name)

    def object_class(class_name: str, predicate: IRI) -> None:
        subject = Variable("s")
        object_ = Variable("o")
        schema.add_class(
            class_name,
            BGPQuery(
                [object_], [TriplePattern(subject, predicate, object_)], name=f"def_{class_name}"
            ),
        )

    object_class("Amount", namespace.hasAmount)
    object_class("PromoAmount", namespace.hasPromoAmount)
    object_class("Coupon", namespace.hasCoupon)

    schema.add_property_from_predicate("atStore", "Sale", "Store")
    schema.add_property_from_predicate("ofProduct", "Sale", "Product")
    schema.add_property_from_predicate("inCity", "Store", "City")
    schema.add_property_from_predicate("inCategory", "Product", "Category")
    schema.add_property_from_predicate("hasAmount", "Sale", "Amount")
    schema.add_property_from_predicate("hasPromoAmount", "Sale", "PromoAmount")
    schema.add_property_from_predicate("hasCoupon", "Sale", "Coupon")
    return schema


def retail_dataset(config: Optional[RetailConfig] = None) -> RetailDataset:
    """Generate base graph + schema + materialized AnS instance in one call.

    The instance carries the ρdf schema statements too, so
    ``OLAPSession(dataset.instance, entailment=...)`` sees the same
    subclass/subproperty/domain axioms the base graph was generated with.
    """
    config = config or RetailConfig()
    base_graph = retail_base_graph(config)
    schema = retail_schema()
    instance = materialize_instance(schema, base_graph, name="retail_instance")
    for statement in retail_rdfs_triples():
        instance.add(statement)
    return RetailDataset(config=config, base_graph=base_graph, schema=schema, instance=instance)


# ---------------------------------------------------------------------------
# dimension hierarchies (explicit mappings: content-addressable cache keys)
# ---------------------------------------------------------------------------


def city_region_hierarchy(config: RetailConfig) -> DimensionHierarchy:
    """Level 1 of the geographic roll-up: city IRI → region name."""
    pairs: List[Tuple[IRI, str]] = []
    for index, city in enumerate(_city_terms(config)):
        pairs.append((city, _region_label(index % config.regions)))
    return DimensionHierarchy.from_pairs(pairs, name="city->region")


def region_zone_hierarchy(config: RetailConfig) -> DimensionHierarchy:
    """Level 2 of the geographic roll-up: region name → zone name."""
    pairs: List[Tuple[str, str]] = []
    for index in range(config.regions):
        pairs.append((_region_label(index), f"Zone{index // _ZONE_OF_REGION_INDEX}"))
    return DimensionHierarchy.from_pairs(pairs, name="region->zone")


def category_department_hierarchy(config: RetailConfig) -> DimensionHierarchy:
    """Product roll-up: category IRI → department name."""
    pairs: List[Tuple[IRI, str]] = []
    for index, category in enumerate(_category_terms(config)):
        pairs.append((category, f"Dept{index % config.departments}"))
    return DimensionHierarchy.from_pairs(pairs, name="category->department")


# ---------------------------------------------------------------------------
# the scenario's analytical query
# ---------------------------------------------------------------------------


def revenue_query(
    schema: Optional[AnalyticalSchema] = None,
    aggregate: str = "sum",
    name: str = "Q_revenue",
) -> AnalyticalQuery:
    """Revenue per sale, by store city and product category.

    ``Q :- ⟨c(x, dcity, dcat), m(x, vamount), sum⟩`` — both the classifier's
    ``rdf:type Sale`` pattern and the measure's ``hasAmount`` pattern have
    entailed matches in the generated data (subclass-only typed sales,
    promo-only amounts), so answers differ between plain and
    entailment-aware sessions by construction.
    """
    x = Variable("x")
    dcity = Variable("dcity")
    dcat = Variable("dcat")
    store = Variable("s")
    product = Variable("p")
    classifier = BGPQuery(
        [x, dcity, dcat],
        [
            TriplePattern(x, _RDF_TYPE, EX.Sale),
            TriplePattern(x, EX.atStore, store),
            TriplePattern(store, EX.inCity, dcity),
            TriplePattern(x, EX.ofProduct, product),
            TriplePattern(product, EX.inCategory, dcat),
        ],
        name="c",
    )
    vamount = Variable("vamount")
    measure = BGPQuery(
        [x, vamount],
        [
            TriplePattern(x, _RDF_TYPE, EX.Sale),
            TriplePattern(x, EX.hasAmount, vamount),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, aggregate, schema=schema, name=name)
