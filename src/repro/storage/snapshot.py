"""The on-disk columnar snapshot format: writer and low-level reader.

A snapshot is a **single file** holding everything needed to re-open an AnS
instance without re-parsing or re-encoding it:

* the fact columns — subject / predicate / object term ids as three
  contiguous ``int64`` arrays, globally sorted by ``(p, s, o)`` so that each
  predicate's triples form one contiguous, subject-sorted slice;
* the per-predicate **object sort order** — the same triples re-sorted by
  ``(p, o, s)``, stored as two aligned arrays (object keys, subject values),
  so both sort orders of :class:`repro.bgp.evaluator.ColumnarTripleIndex`
  are zero-copy slices of the file;
* the term dictionary — a typed-term table (one kind byte per term), an
  offset index and a UTF-8 string blob, stored in id order so the dense
  first-seen ids survive the round trip, plus a lexicographic permutation
  for binary-search term lookup without decoding;
* summary statistics (per-predicate counts, distinct subject/object counts,
  per-class counts) in the header, so a mapped graph can serve
  :class:`~repro.rdf.statistics.GraphStatistics` without a full scan.

File layout::

    offset 0   magic          b"REPROSNP"                  (8 bytes)
    offset 8   format version uint32 little-endian          (4 bytes)
    offset 12  header length  uint64 little-endian          (8 bytes)
    offset 20  header         UTF-8 JSON table of contents
    ...        zero padding to the next 8-byte boundary
    ...        sections       raw little-endian arrays, each 8-byte aligned

The header's ``sections`` table maps each section name to ``[relative
offset, element count, dtype]``; offsets are relative to the 8-byte-aligned
payload base, so readers never need to re-measure the header.  Opening a
snapshot reads **only** the fixed fields and the header — array sections are
attached as :func:`numpy.memmap` views and fault in page by page on first
touch, which is what makes cold starts O(header) instead of O(instance).

numpy (the ``[fast]`` extra) is required: without it both saving and
loading raise :class:`~repro.errors.ConfigurationError` naming the extra —
a clear degradation, never a crash mid-file.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    SnapshotFormatError,
    SnapshotVersionError,
)
from repro.rdf.namespaces import RDF
from repro.rdf.ntriples import _parse_term
from repro.rdf.terms import IRI, BlankNode, Literal, Term

try:  # numpy is the optional [fast] extra
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "save_snapshot",
    "load_snapshot",
    "open_snapshot",
]

#: The 8-byte magic prefix identifying a repro snapshot file.
SNAPSHOT_MAGIC = b"REPROSNP"

#: Format version written by this build; readers reject any other version.
SNAPSHOT_FORMAT_VERSION = 1

_FIXED_HEADER = struct.Struct("<8sIQ")  # magic, format version, header length

#: Term kind bytes of the typed-term table.
_KIND_IRI = 0
_KIND_BLANK = 1
_KIND_LITERAL = 2

_SNAPSHOT_EXTRA_HINT = (
    "columnar snapshots require numpy; install the [fast] extra "
    "(pip install 'repro-rdf-olap[fast]') or keep the instance on the heap"
)


def _require_numpy(action: str) -> None:
    if _np is None:
        raise ConfigurationError(f"cannot {action}: {_SNAPSHOT_EXTRA_HINT}")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def term_record(term: Term) -> Tuple[int, str]:
    """The ``(kind, text)`` record of one term — shared by writer and lookup.

    IRIs store their value, blank nodes their label, literals their full
    N-Triples form (injective over (lexical, datatype, language)).  The
    sort key of the lexicographic permutation is ``(kind, utf-8 bytes)``.
    """
    if isinstance(term, IRI):
        return _KIND_IRI, term.value
    if isinstance(term, BlankNode):
        return _KIND_BLANK, term.label
    if isinstance(term, Literal):
        return _KIND_LITERAL, term.n3()
    raise SnapshotFormatError(f"cannot serialize term {term!r} into a snapshot")


def decode_term_record(kind: int, text: str) -> Term:
    """Rebuild a term from its ``(kind, text)`` record."""
    if kind == _KIND_IRI:
        return IRI(text)
    if kind == _KIND_BLANK:
        return BlankNode(text)
    if kind == _KIND_LITERAL:
        term, _ = _parse_term(text, 0, 0)
        return term
    raise SnapshotFormatError(f"unknown term kind byte {kind}")


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def save_snapshot(graph, path: str) -> None:
    """Serialize ``graph`` into a single snapshot file at ``path``.

    The write is atomic (temp file + rename), so a crash mid-write never
    leaves a half-written snapshot behind.  Requires numpy; see the module
    docstring for the file layout.
    """
    _require_numpy("save a snapshot")
    dictionary = graph.dictionary
    term_count = len(dictionary)
    triple_count = len(graph)

    # -- term table: kinds, offsets, blob, lexicographic permutation -------
    kinds = _np.empty(term_count, dtype=_np.uint8)
    texts = []
    for index, term in enumerate(dictionary.terms()):
        kind, text = term_record(term)
        kinds[index] = kind
        texts.append(text.encode("utf-8"))
    offsets = _np.zeros(term_count + 1, dtype=_np.int64)
    for index, text in enumerate(texts):
        offsets[index + 1] = offsets[index] + len(text)
    blob = _np.frombuffer(b"".join(texts), dtype=_np.uint8) if texts else _np.empty(
        0, dtype=_np.uint8
    )
    term_sort = _np.asarray(
        sorted(range(term_count), key=lambda i: (kinds[i], texts[i])),
        dtype=_np.int64,
    )

    # -- fact columns in both per-predicate sort orders --------------------
    # Materialize: heap graphs hand back their triple set, mapped graphs a
    # one-shot iterator over their columns — we iterate three times below.
    encoded = list(graph.encoded_triples())
    s = _np.fromiter((t[0] for t in encoded), dtype=_np.int64, count=triple_count)
    p = _np.fromiter((t[1] for t in encoded), dtype=_np.int64, count=triple_count)
    o = _np.fromiter((t[2] for t in encoded), dtype=_np.int64, count=triple_count)
    subject_order = _np.lexsort((o, s, p))  # primary p, then s, then o
    s_col, p_col, o_col = s[subject_order], p[subject_order], o[subject_order]
    object_order = _np.lexsort((s, o, p))  # primary p, then o, then s
    obj_keys, obj_vals = o[object_order], s[object_order]

    if triple_count:
        pred_ids, pred_starts = _np.unique(p_col, return_index=True)
        pred_offsets = _np.append(pred_starts, triple_count).astype(_np.int64)
    else:
        pred_ids = _np.empty(0, dtype=_np.int64)
        pred_offsets = _np.zeros(1, dtype=_np.int64)

    statistics = _summarize(
        pred_ids, pred_offsets, s_col, obj_keys, dictionary, triple_count
    )

    sections = {
        "spo_s": s_col,
        "spo_p": p_col,
        "spo_o": o_col,
        "obj_keys": obj_keys,
        "obj_vals": obj_vals,
        "pred_ids": pred_ids,
        "pred_offsets": pred_offsets,
        "term_kinds": kinds,
        "term_offsets": offsets,
        "term_blob": blob,
        "term_sort": term_sort,
    }

    toc: Dict[str, list] = {}
    cursor = 0
    for name, array in sections.items():
        cursor = _align8(cursor)
        toc[name] = [cursor, int(len(array)), str(array.dtype)]
        cursor += array.nbytes

    header = {
        "graph_version": graph.version,
        "name": graph.name,
        "triple_count": triple_count,
        "term_count": term_count,
        "change_log_limit": graph.change_log_limit,
        "statistics": statistics,
        "sections": toc,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

    temp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(temp_path, "wb") as handle:
            handle.write(
                _FIXED_HEADER.pack(
                    SNAPSHOT_MAGIC, SNAPSHOT_FORMAT_VERSION, len(header_bytes)
                )
            )
            handle.write(header_bytes)
            payload_base = _align8(handle.tell())
            handle.write(b"\0" * (payload_base - handle.tell()))
            for name, array in sections.items():
                target = payload_base + toc[name][0]
                handle.write(b"\0" * (target - handle.tell()))
                handle.write(array.tobytes())
        os.replace(temp_path, path)
    finally:
        if os.path.exists(temp_path):  # pragma: no cover - crash-path cleanup
            os.unlink(temp_path)


def _summarize(pred_ids, pred_offsets, s_col, obj_keys, dictionary, triple_count):
    """Per-predicate and per-class summary counts stored in the header.

    Computed from the sorted columns with run-boundary counting, so a mapped
    graph can serve :class:`~repro.rdf.statistics.GraphStatistics` without
    ever scanning (and decoding) the full instance.
    """
    predicates = []
    for index in range(len(pred_ids)):
        lo = int(pred_offsets[index])
        hi = int(pred_offsets[index + 1])
        count = hi - lo
        distinct_subjects = int(1 + (_np.diff(s_col[lo:hi]) != 0).sum()) if count else 0
        objects = obj_keys[lo:hi]
        distinct_objects = int(1 + (_np.diff(objects) != 0).sum()) if count else 0
        predicates.append(
            [int(pred_ids[index]), count, distinct_subjects, distinct_objects]
        )

    classes = []
    type_id = dictionary.lookup(RDF.term("type"))
    if type_id is not None:
        position = int(_np.searchsorted(pred_ids, type_id))
        if position < len(pred_ids) and int(pred_ids[position]) == type_id:
            lo = int(pred_offsets[position])
            hi = int(pred_offsets[position + 1])
            values, counts = _np.unique(obj_keys[lo:hi], return_counts=True)
            classes = [[int(v), int(c)] for v, c in zip(values, counts)]

    return {
        "triple_count": triple_count,
        "predicates": predicates,
        "classes": classes,
    }


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class Snapshot:
    """An opened snapshot file: validated header + lazy section accessors.

    Construction reads and validates only the fixed fields and the JSON
    table of contents; :meth:`section` attaches one array as a read-only
    :func:`numpy.memmap` view (pages fault in on demand).
    """

    __slots__ = ("path", "header", "_payload_base", "_file_size", "_cache")

    def __init__(self, path: str):
        _require_numpy(f"open snapshot {path!r}")
        self.path = path
        try:
            self._file_size = os.path.getsize(path)
            with open(path, "rb") as handle:
                fixed = handle.read(_FIXED_HEADER.size)
                if len(fixed) < _FIXED_HEADER.size:
                    raise SnapshotFormatError(
                        f"{path!r} is truncated: {len(fixed)} bytes, expected at "
                        f"least a {_FIXED_HEADER.size}-byte fixed header"
                    )
                magic, version, header_length = _FIXED_HEADER.unpack(fixed)
                if magic != SNAPSHOT_MAGIC:
                    raise SnapshotFormatError(
                        f"{path!r} is not a repro snapshot (bad magic {magic!r})"
                    )
                if version != SNAPSHOT_FORMAT_VERSION:
                    raise SnapshotVersionError(
                        f"{path!r} has snapshot format version {version}; this "
                        f"build reads version {SNAPSHOT_FORMAT_VERSION}"
                    )
                if _FIXED_HEADER.size + header_length > self._file_size:
                    raise SnapshotFormatError(
                        f"{path!r} is truncated: header claims {header_length} "
                        f"bytes but the file holds {self._file_size}"
                    )
                header_bytes = handle.read(header_length)
        except OSError as exc:
            raise SnapshotFormatError(f"cannot read snapshot {path!r}: {exc}") from exc
        try:
            self.header = json.loads(header_bytes.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SnapshotFormatError(
                f"{path!r} has a corrupt header table of contents: {exc}"
            ) from exc
        self._payload_base = _align8(_FIXED_HEADER.size + header_length)
        self._cache: Dict[str, object] = {}
        self._validate_sections()

    def _validate_sections(self) -> None:
        sections = self.header.get("sections")
        if not isinstance(sections, dict):
            raise SnapshotFormatError(
                f"{self.path!r} header lacks a sections table of contents"
            )
        for name, entry in sections.items():
            try:
                offset, length, dtype = entry
                nbytes = int(length) * _np.dtype(dtype).itemsize
            except (TypeError, ValueError) as exc:
                raise SnapshotFormatError(
                    f"{self.path!r}: malformed TOC entry for section {name!r}: {entry!r}"
                ) from exc
            if self._payload_base + int(offset) + nbytes > self._file_size:
                raise SnapshotFormatError(
                    f"{self.path!r} is truncated: section {name!r} ends past "
                    f"the end of the file"
                )

    def section(self, name: str):
        """A read-only memmap view of one section (cached per snapshot)."""
        found = self._cache.get(name)
        if found is None:
            entry = self.header["sections"].get(name)
            if entry is None:
                raise SnapshotFormatError(
                    f"{self.path!r} has no section {name!r} (incomplete snapshot?)"
                )
            offset, length, dtype = entry
            found = self._cache[name] = _np.memmap(
                self.path,
                dtype=_np.dtype(dtype),
                mode="r",
                offset=self._payload_base + int(offset),
                shape=(int(length),),
            )
        return found

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Snapshot({self.path!r}, {self.header.get('triple_count')} triples, "
            f"{self.header.get('term_count')} terms)"
        )


def open_snapshot(path: str) -> Snapshot:
    """Open and validate a snapshot file (header only; no section is read)."""
    return Snapshot(path)


def load_snapshot(path: str, mmap: bool = True):
    """Load a snapshot as a graph.

    With ``mmap=True`` (default) returns a read-only
    :class:`~repro.storage.mapped.SnapshotGraph` whose fact columns, term
    dictionary and sort-order indexes are memmap views — the file's pages
    fault in on demand, so opening costs O(header) regardless of instance
    size.  With ``mmap=False`` the snapshot is decoded into a plain mutable
    heap :class:`~repro.rdf.graph.Graph` (still far cheaper than re-parsing
    the source syntax: terms are rebuilt from the typed table, triples from
    the id columns, with no dictionary re-encoding).
    """
    snapshot = open_snapshot(path)
    if mmap:
        from repro.storage.mapped import SnapshotGraph

        return SnapshotGraph(snapshot)
    return _load_heap(snapshot)


def _load_heap(snapshot: Snapshot):
    from repro.rdf.graph import Graph

    header = snapshot.header
    graph = Graph(
        name=header.get("name"),
        change_log_limit=int(header.get("change_log_limit", 4096)),
    )

    kinds = snapshot.section("term_kinds")
    offsets = snapshot.section("term_offsets")
    blob = bytes(snapshot.section("term_blob"))
    terms = [
        decode_term_record(
            int(kinds[index]),
            blob[int(offsets[index]) : int(offsets[index + 1])].decode("utf-8"),
        )
        for index in range(int(header["term_count"]))
    ]
    dictionary = graph.dictionary
    dictionary._id_to_term = terms
    dictionary._term_to_id = {term: index for index, term in enumerate(terms)}

    s_col = snapshot.section("spo_s").tolist()
    p_col = snapshot.section("spo_p").tolist()
    o_col = snapshot.section("spo_o").tolist()
    graph._triples = set(zip(s_col, p_col, o_col))
    for encoded in graph._triples:
        graph._index_add(encoded)
    graph._version = int(header["graph_version"])
    graph._log_base = graph._version
    return graph
