"""Memory-mapped, read-only views over a snapshot: graph + term dictionary.

:class:`SnapshotGraph` honours the full read API of
:class:`~repro.rdf.graph.Graph` — id-level pattern matching, term-level
iteration, partitioning, statistics — but stores nothing on the heap: the
fact columns and both per-predicate sort orders are :func:`numpy.memmap`
views into the snapshot file, and pattern matching is binary search over
the sorted columns instead of nested-dict lookups.  Mutations raise
:class:`~repro.errors.ReadOnlyGraphError`.

:class:`MappedTermDictionary` resolves ids lazily: ``decode`` reads one
(kind, text) record out of the blob and caches the built term; ``lookup``
binary-searches the lexicographic permutation stored in the snapshot, so
encoding a query's handful of constants costs O(log n) string compares —
never a full dictionary materialization.

Because a mapped graph pickles as just its snapshot path
(:meth:`SnapshotGraph.__reduce__`), shipping one across a process boundary
costs O(1): the receiving process re-attaches to the same file and shares
its pages through the OS page cache.  This is what makes the parallel
executor's snapshot attach mode near-free (see :mod:`repro.olap.parallel`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import DictionaryError, ReadOnlyGraphError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.storage.snapshot import Snapshot, decode_term_record, term_record

try:
    import numpy as _np
except ImportError:  # pragma: no cover - snapshot.py already gates on numpy
    _np = None

__all__ = ["MappedTermDictionary", "SnapshotGraph"]


class MappedTermDictionary(TermDictionary):
    """A read-only term dictionary backed by the snapshot's term sections.

    Ids are the same dense first-seen ids the heap dictionary assigned at
    save time; decoding is lazy and cached per id, and term -> id lookup is
    a binary search over the stored ``(kind, utf-8 text)`` sort permutation
    — no eager reverse map is ever built.
    """

    def __init__(self, snapshot: Snapshot):
        super().__init__()
        self._snapshot = snapshot
        self._kinds = snapshot.section("term_kinds")
        self._offsets = snapshot.section("term_offsets")
        self._blob = snapshot.section("term_blob")
        self._sort = snapshot.section("term_sort")
        self._count = int(snapshot.header["term_count"])
        # _id_to_term doubles as the decode cache (id -> Term, None = cold);
        # _term_to_id caches successful lookups only.
        self._id_to_term = [None] * self._count

    def __len__(self) -> int:
        return self._count

    def __contains__(self, term: Term) -> bool:
        return self.lookup(term) is not None

    # -- decode --------------------------------------------------------

    def _text(self, term_id: int) -> str:
        lo = int(self._offsets[term_id])
        hi = int(self._offsets[term_id + 1])
        return bytes(self._blob[lo:hi]).decode("utf-8")

    def decode(self, term_id: int) -> Term:
        term_id = int(term_id)
        if not 0 <= term_id < self._count:
            raise DictionaryError(f"unknown term id: {term_id}")
        found = self._id_to_term[term_id]
        if found is None:
            found = self._id_to_term[term_id] = decode_term_record(
                int(self._kinds[term_id]), self._text(term_id)
            )
        return found

    def decode_many(self, ids: Tuple[int, ...]) -> Tuple[Term, ...]:
        return tuple(self.decode(term_id) for term_id in ids)

    # -- lookup (binary search over the lexicographic permutation) -----

    def lookup(self, term: Term) -> Optional[int]:
        cached = self._term_to_id.get(term)
        if cached is not None:
            return cached
        try:
            kind, text = term_record(term)
        except Exception:
            return None
        probe = (kind, text.encode("utf-8"))
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            candidate = int(self._sort[mid])
            key = (int(self._kinds[candidate]), self._text(candidate).encode("utf-8"))
            if key < probe:
                lo = mid + 1
            elif key > probe:
                hi = mid
            else:
                self._term_to_id[term] = candidate
                return candidate
        return None

    def encode(self, term: Term) -> int:
        found = self.lookup(term)
        if found is None:
            raise DictionaryError(
                f"snapshot dictionaries are read-only: cannot assign a fresh id "
                f"to {term.n3()}"
            )
        return found

    def encode_existing(self, term: Term) -> int:
        found = self.lookup(term)
        if found is None:
            raise DictionaryError(f"term not in dictionary: {term.n3()}")
        return found

    # -- iteration / copy ----------------------------------------------

    def items(self) -> Iterator[Tuple[Term, int]]:
        return ((self.decode(term_id), term_id) for term_id in range(self._count))

    def terms(self) -> Iterator[Term]:
        return (self.decode(term_id) for term_id in range(self._count))

    def copy(self) -> TermDictionary:
        """Materialize a plain mutable heap dictionary (decodes every term)."""
        clone = TermDictionary()
        clone._id_to_term = [self.decode(term_id) for term_id in range(self._count)]
        clone._term_to_id = {term: i for i, term in enumerate(clone._id_to_term)}
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return f"MappedTermDictionary({self._count} terms, {self._snapshot.path!r})"


def _reopen_snapshot_graph(path: str) -> "SnapshotGraph":
    """Unpickling hook: a mapped graph travels as just its snapshot path."""
    return SnapshotGraph(Snapshot(path))


class SnapshotGraph(Graph):
    """A read-only :class:`~repro.rdf.graph.Graph` view over a snapshot file.

    All triple data lives in the snapshot's memmap sections; pattern
    matching binary-searches the ``(p, s, o)``- and ``(p, o, s)``-sorted
    columns.  The graph's :attr:`version` is frozen at the value recorded
    when the snapshot was saved, and every mutation raises
    :class:`~repro.errors.ReadOnlyGraphError`.
    """

    def __init__(self, snapshot: Snapshot):
        super().__init__()
        header = snapshot.header
        self._snapshot = snapshot
        self.name = header.get("name")
        self._dictionary = MappedTermDictionary(snapshot)
        self._triple_count = int(header["triple_count"])
        self._s = snapshot.section("spo_s")
        self._p = snapshot.section("spo_p")
        self._o = snapshot.section("spo_o")
        self._obj_keys = snapshot.section("obj_keys")
        self._obj_vals = snapshot.section("obj_vals")
        # Per-predicate slice bounds: O(#predicates), the only eager index.
        pred_ids = snapshot.section("pred_ids")
        pred_offsets = snapshot.section("pred_offsets")
        self._pred_slices: Dict[int, Tuple[int, int]] = {
            int(pred_ids[i]): (int(pred_offsets[i]), int(pred_offsets[i + 1]))
            for i in range(len(pred_ids))
        }
        self._version = int(header["graph_version"])
        # deltas_since can only answer "no change" for the frozen version
        # itself; any older stamp gets the honest full-invalidation None.
        self._log_base = self._version

    # -- identity / pickling -------------------------------------------

    @property
    def snapshot_path(self) -> str:
        """The path of the backing snapshot file (the attach address)."""
        return self._snapshot.path

    @property
    def snapshot(self) -> Snapshot:
        return self._snapshot

    def __reduce__(self):
        return (_reopen_snapshot_graph, (self._snapshot.path,))

    # -- mutations: refused --------------------------------------------

    def _read_only(self, action: str):
        raise ReadOnlyGraphError(
            f"cannot {action} a memory-mapped snapshot graph "
            f"({self._snapshot.path!r}); load with mmap=False for a mutable copy"
        )

    def add(self, triple) -> bool:
        self._read_only("add triples to")

    def add_all(self, triples: Iterable) -> int:
        self._read_only("add triples to")

    def remove(self, triple) -> bool:
        self._read_only("remove triples from")

    def clear(self) -> None:
        self._read_only("clear")

    # -- size / membership / iteration ---------------------------------

    def __len__(self) -> int:
        return self._triple_count

    def __bool__(self) -> bool:
        return self._triple_count > 0

    def __contains__(self, triple) -> bool:
        from repro.rdf.triples import Triple

        if not isinstance(triple, Triple):
            subject, predicate, object_ = triple
            triple = Triple(subject, predicate, object_)
        lookup = self._dictionary.lookup
        s = lookup(triple.subject)
        p = lookup(triple.predicate)
        o = lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        return self.count_ids(s, p, o) > 0

    def encoded_triples(self):
        """All encoded triples, in ``(p, s, o)`` order (read-only)."""
        return zip(self._s.tolist(), self._p.tolist(), self._o.tolist())

    def __iter__(self):
        from repro.rdf.triples import Triple

        decode = self._dictionary.decode
        for s, p, o in self.encoded_triples():
            yield Triple(decode(s), decode(p), decode(o))

    # -- id-level pattern matching -------------------------------------

    def _slice(self, p: int) -> Optional[Tuple[int, int]]:
        return self._pred_slices.get(p)

    @staticmethod
    def _span(sorted_array, lo: int, hi: int, value: int) -> Tuple[int, int]:
        """The sub-range of ``sorted_array[lo:hi]`` equal to ``value``."""
        window = sorted_array[lo:hi]
        left = int(_np.searchsorted(window, value, side="left"))
        right = int(_np.searchsorted(window, value, side="right"))
        return lo + left, lo + right

    def match_ids(self, s, p, o):
        if s == -1 or p == -1 or o == -1:
            return
        if p is not None:
            yield from self._match_with_predicate(s, p, o)
            return
        if s is None and o is None:
            for triple in self.encoded_triples():
                yield triple
            return
        # Variable predicate with a bound subject and/or object: a binary
        # search per predicate slice (predicates are few in AnS instances).
        for predicate in self._pred_slices:
            yield from self._match_with_predicate(s, predicate, o)

    def _match_with_predicate(self, s, p: int, o):
        bounds = self._slice(p)
        if bounds is None:
            return
        lo, hi = bounds
        if s is not None:
            lo, hi = self._span(self._s, lo, hi, s)
            if lo == hi:
                return
            if o is not None:
                left, right = self._span(self._o, lo, hi, o)
                if left < right:
                    yield (s, p, o)
                return
            for value in self._o[lo:hi].tolist():
                yield (s, p, value)
            return
        if o is not None:
            left, right = self._span(self._obj_keys, lo, hi, o)
            for value in self._obj_vals[left:right].tolist():
                yield (value, p, o)
            return
        subjects = self._s[lo:hi].tolist()
        objects = self._o[lo:hi].tolist()
        for subject, object_ in zip(subjects, objects):
            yield (subject, p, object_)

    def match_single_ids(self, s, p, o, position: int):
        if s == -1 or p == -1 or o == -1:
            return ()
        if position == 2 and s is not None and p is not None:
            bounds = self._slice(p)
            if bounds is None:
                return ()
            lo, hi = self._span(self._s, bounds[0], bounds[1], s)
            return self._o[lo:hi].tolist()
        if position == 0 and p is not None and o is not None:
            bounds = self._slice(p)
            if bounds is None:
                return ()
            lo, hi = self._span(self._obj_keys, bounds[0], bounds[1], o)
            return self._obj_vals[lo:hi].tolist()
        if position == 1 and s is not None and o is not None:
            found = []
            for predicate, (lo, hi) in self._pred_slices.items():
                left, right = self._span(self._s, lo, hi, s)
                if left < right:
                    inner = self._span(self._o, left, right, o)
                    if inner[0] < inner[1]:
                        found.append(predicate)
            return found
        return (triple[position] for triple in self.match_ids(s, p, o))

    def count_ids(self, s, p, o) -> int:
        if s == -1 or p == -1 or o == -1:
            return 0
        if s is None and p is None and o is None:
            return self._triple_count
        if p is not None:
            bounds = self._slice(p)
            if bounds is None:
                return 0
            lo, hi = bounds
            if s is None and o is None:
                return hi - lo
            if s is not None and o is None:
                left, right = self._span(self._s, lo, hi, s)
                return right - left
            if o is not None and s is None:
                left, right = self._span(self._obj_keys, lo, hi, o)
                return right - left
            left, right = self._span(self._s, lo, hi, s)
            if left == right:
                return 0
            inner = self._span(self._o, left, right, o)
            return inner[1] - inner[0]
        if s is not None and o is None:
            return sum(
                self._span(self._s, lo, hi, s)[1] - self._span(self._s, lo, hi, s)[0]
                for lo, hi in self._pred_slices.values()
            )
        if o is not None and s is None:
            return sum(
                self._span(self._obj_keys, lo, hi, o)[1]
                - self._span(self._obj_keys, lo, hi, o)[0]
                for lo, hi in self._pred_slices.values()
            )
        return sum(1 for _ in self.match_ids(s, p, o))

    # -- zero-copy columnar hooks --------------------------------------

    def columnar_predicate_pairs(self, p_id: int):
        """Zero-copy ``(subjects, objects)`` slices for one predicate."""
        bounds = self._slice(p_id)
        if bounds is None:
            return (_np.empty(0, dtype=_np.int64), _np.empty(0, dtype=_np.int64))
        lo, hi = bounds
        return (self._s[lo:hi], self._o[lo:hi])

    def columnar_sorted_pairs(self, p_id: int, sort_position: int):
        """Zero-copy pre-sorted pair slices (both sort orders are on disk)."""
        bounds = self._slice(p_id)
        if bounds is None:
            empty = _np.empty(0, dtype=_np.int64)
            return (empty, empty)
        lo, hi = bounds
        if sort_position == 0:
            return (self._s[lo:hi], self._o[lo:hi])
        return (self._obj_keys[lo:hi], self._obj_vals[lo:hi])

    # -- statistics hook -----------------------------------------------

    def statistics_summary(self):
        """Header-stored summary counts, decoded to terms on demand.

        Lets :class:`~repro.rdf.statistics.GraphStatistics` skip its full
        instance scan: only the few predicate / class terms are decoded.
        """
        summary = self._snapshot.header.get("statistics")
        if summary is None:  # pragma: no cover - written by every current save
            return None
        decode = self._dictionary.decode
        predicate_counts = {}
        distinct_subjects = {}
        distinct_objects = {}
        for p_id, count, subjects, objects in summary["predicates"]:
            predicate = decode(p_id)
            predicate_counts[predicate] = count
            distinct_subjects[predicate] = subjects
            distinct_objects[predicate] = objects
        class_counts = {decode(o_id): count for o_id, count in summary["classes"]}
        return {
            "triple_count": summary["triple_count"],
            "predicate_counts": predicate_counts,
            "predicate_distinct_subjects": distinct_subjects,
            "predicate_distinct_objects": distinct_objects,
            "class_counts": class_counts,
        }

    # -- persistence ----------------------------------------------------

    def save_snapshot(self, path: str) -> None:
        """Re-serialize through the generic writer (id columns stream out)."""
        from repro.storage.snapshot import save_snapshot

        save_snapshot(self, path)

    def __repr__(self) -> str:  # pragma: no cover
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SnapshotGraph({label} {self._triple_count} triples, "
            f"mmap {self._snapshot.path!r})"
        )
