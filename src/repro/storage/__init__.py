"""On-disk columnar snapshots: out-of-core storage for RDF analytics.

A snapshot is a single versioned file holding a graph's fact columns
(S/P/O as contiguous little-endian int64 arrays in two sort orders), its
term dictionary (offset-indexed UTF-8 blob + typed-term table + lookup
permutation), the per-predicate slice index, and a statistics summary —
everything :mod:`repro`'s columnar kernels need, laid out so that
:func:`load_snapshot` with ``mmap=True`` only reads the header and lets
the OS fault pages in on demand.

See ``docs/guides/storage.md`` for the format layout and the cold-start /
zero-copy-worker trade-offs.
"""

from repro.storage.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    Snapshot,
    load_snapshot,
    open_snapshot,
    save_snapshot,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "Snapshot",
    "MappedTermDictionary",
    "SnapshotGraph",
    "load_snapshot",
    "open_snapshot",
    "save_snapshot",
]


def __getattr__(name):
    # SnapshotGraph / MappedTermDictionary import numpy-dependent modules;
    # resolve them lazily so `import repro.storage` works without numpy.
    if name in ("SnapshotGraph", "MappedTermDictionary"):
        from repro.storage import mapped

        return getattr(mapped, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
