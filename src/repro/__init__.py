"""repro — Efficient OLAP operations for RDF analytics.

A from-scratch Python implementation of the RDF analytics framework and its
optimized OLAP operations (Akbari-Azirani, Goasdoué, Manolescu, Roatiş —
DESWeb @ ICDE 2015):

* :mod:`repro.rdf` — RDF data model, in-memory triple store, Turtle /
  N-Triples I/O, RDFS saturation;
* :mod:`repro.algebra` — bag-relational algebra (σ, π, δ, ⋈, γ) and
  aggregation functions;
* :mod:`repro.bgp` — conjunctive (BGP) queries and their evaluation;
* :mod:`repro.analytics` — analytical schemas, analytical queries (RDF
  cubes), ``ans`` / ``pres`` / ``int`` materialization;
* :mod:`repro.olap` — SLICE / DICE / DRILL-OUT / DRILL-IN and their
  view-based rewritings (Proposition 1, Algorithms 1 and 2), cube
  navigation sessions;
* :mod:`repro.datagen` — synthetic dataset generators;
* :mod:`repro.bench` — the experiment harness.

Quickstart::

    from repro import (
        BloggerConfig, blogger_dataset, sites_per_blogger_query,
        OLAPSession, Slice, DrillOut,
    )

    dataset = blogger_dataset(BloggerConfig(bloggers=200))
    session = OLAPSession(dataset.instance, dataset.schema)
    cube = session.execute(sites_per_blogger_query(dataset.schema))
    by_city = session.transform("Q_sites", DrillOut("dage"), strategy="rewrite")
    print(by_city.to_text())
"""

from repro.errors import ReproError
from repro.rdf import (
    ANS,
    EX,
    RDF,
    RDFS,
    XSD,
    BlankNode,
    Graph,
    IRI,
    Literal,
    Namespace,
    PrefixMap,
    Triple,
    TriplePattern,
    Variable,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)
from repro.algebra import Relation
from repro.bgp import BGPEvaluator, BGPQuery, evaluate_query, parse_query
from repro.analytics import (
    AnalyticalQuery,
    AnalyticalQueryEvaluator,
    AnalyticalSchema,
    DimensionRestriction,
    InstanceBuilder,
    MaterializedQueryResults,
    Sigma,
    materialize_instance,
)
from repro.olap import (
    Cube,
    Dice,
    DrillIn,
    DrillOut,
    OLAPRewriter,
    OLAPSession,
    Slice,
    compose,
)
from repro.datagen import (
    BloggerConfig,
    GenericConfig,
    VideoConfig,
    blogger_dataset,
    generic_dataset,
    sites_per_blogger_query,
    video_dataset,
    views_per_url_query,
    words_per_blogger_query,
)
from repro.persistence import (
    load_materialized_results,
    load_relation,
    save_materialized_results,
    save_relation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # RDF layer
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Triple",
    "TriplePattern",
    "Graph",
    "Namespace",
    "PrefixMap",
    "RDF",
    "RDFS",
    "XSD",
    "EX",
    "ANS",
    "parse_ntriples",
    "serialize_ntriples",
    "parse_turtle",
    "serialize_turtle",
    # algebra / BGP
    "Relation",
    "BGPQuery",
    "BGPEvaluator",
    "evaluate_query",
    "parse_query",
    # analytics
    "AnalyticalSchema",
    "AnalyticalQuery",
    "AnalyticalQueryEvaluator",
    "InstanceBuilder",
    "materialize_instance",
    "Sigma",
    "DimensionRestriction",
    "MaterializedQueryResults",
    # OLAP
    "Slice",
    "Dice",
    "DrillOut",
    "DrillIn",
    "compose",
    "OLAPRewriter",
    "OLAPSession",
    "Cube",
    # data generators
    "BloggerConfig",
    "VideoConfig",
    "GenericConfig",
    "blogger_dataset",
    "video_dataset",
    "generic_dataset",
    "sites_per_blogger_query",
    "words_per_blogger_query",
    "views_per_url_query",
    # persistence
    "save_relation",
    "load_relation",
    "save_materialized_results",
    "load_materialized_results",
]
