"""Runtime-calibrated cost model for the OLAP planner.

The planner prices every answering strategy in an abstract "rows touched"
unit built from hand-set constants: per-row weights for σ-selection,
grouping and joins over materialized inputs, a per-cell weight for serving
cached answers, per-engine multipliers, and the merge / dispatch overheads
of the refresh and parallel paths.  Those constants were guessed once; on a
real host they are wrong in *relative* terms — and the planner only needs
relative correctness to rank strategies.

This module closes the loop from observed runtimes back into planning:

* :class:`CostModel` gathers every pricing constant in one object the
  planner (and :class:`~repro.olap.maintenance.DeltaMaintainer` /
  :func:`~repro.olap.parallel.estimate_parallel_cost`) reads instead of
  module-level constants.  ``CostModel()`` reproduces the hand-set
  defaults exactly, so an uncalibrated session plans identically to the
  static planner.

* :func:`fit_cost_model` performs a least-squares fit over the
  ``(predicted cost, observed execute seconds, strategy)`` samples a
  session's :attr:`~repro.olap.session.OLAPSession.history` records.
  Samples are grouped into strategy *families* that share pricing
  constants (instance evaluation, materialized-input reuse, cached
  serving, delta refresh, parallel dispatch); each family gets a
  through-origin least-squares slope — seconds per predicted row — and
  the family's constants are rescaled by its slope *relative to the
  instance-evaluation family*, which keeps the model in the same
  rows-touched unit while correcting the relative weights the planner
  actually ranks by.

Only **execute** time feeds the fit (see
:attr:`~repro.olap.session.TransformationRecord.execute_seconds`): planner
enumeration time is recorded separately precisely so that a cache hit's
sample is the cost of *serving* the hit, not of pricing its alternatives.

Calibration caveats
-------------------
Timings on a loaded or single-CPU host are noisy, and a short history
yields few samples per family.  The fit therefore clamps every family's
scale factor into ``[MIN_SCALE, MAX_SCALE]`` and falls back to 1.0 (the
static constant) for families with no usable samples — a fitted model can
drift toward the truth but never become degenerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "CostModel",
    "CalibrationSample",
    "strategy_family",
    "samples_from_history",
    "fit_family_scales",
    "fit_cost_model",
]

#: Clamp bounds for every fitted family scale factor: guards against noisy
#: timings (1-CPU CI hosts) and tiny sample counts producing a model that
#: inverts every planning decision.
MIN_SCALE = 0.1
MAX_SCALE = 10.0

#: Strategy families sharing pricing constants.  ``instance`` is the
#: reference family: its slope defines the seconds-per-row unit and every
#: other family is scaled relative to it.
FAMILIES = ("instance", "reuse", "cached", "refresh", "parallel")


@dataclass(frozen=True)
class CostModel:
    """Every constant of the planner's rows-touched cost model.

    The defaults reproduce the hand-set constants of
    :mod:`repro.olap.planner`, :mod:`repro.olap.maintenance` and
    :mod:`repro.olap.parallel` exactly — a default-constructed model is
    the static PR-2 planner.  Fitted models (see :func:`fit_cost_model`)
    carry ``source="fitted"`` and the per-family scale factors that
    produced them.

    Examples
    --------
    >>> model = CostModel()
    >>> model.select_row_cost
    1.0
    >>> model.engine_multiplier("columnar")
    0.35
    >>> model.source
    'static'
    """

    #: Per-row weight of a σ-selection over a materialized answer/partial.
    select_row_cost: float = 1.0
    #: Per-row weight of project + dedup + group-aggregate (Algorithm 1).
    group_row_cost: float = 2.0
    #: Per-row weight of the pres(Q) side of the auxiliary join (Alg. 2).
    join_row_cost: float = 2.0
    #: Per-cell weight of returning an already-computed cached answer.
    cached_cell_cost: float = 0.05
    #: Flat base cost of any strategy (lookup / bookkeeping).
    base_cost: float = 1.0
    #: Per unifying (delta triple, body pattern) pair of a refresh probe.
    delta_probe_cost: float = 2.0
    #: Per cached pres(Q) row of the retain-or-recompute partition scan.
    pres_scan_cost: float = 0.25
    #: Per cached ans(Q) cell of the touched-group splice.
    refresh_cell_cost: float = 0.05
    #: Per merged γ state / answer cell of the parallel merge step.
    merge_cell_cost: float = 0.5
    #: Per-shard dispatch overhead when the pool pickles the graph.
    dispatch_shard_cost: float = 200.0
    #: Per-shard dispatch overhead when workers attach a snapshot by mmap.
    mmap_dispatch_shard_cost: float = 8.0
    #: Rows-touched multiplier per execution engine (vectorized columnar
    #: kernels touch a row for a fraction of the interpreted loop's cost).
    engine_multipliers: Dict[str, float] = field(
        default_factory=lambda: {"rows": 1.0, "columnar": 0.35}
    )
    #: ``"static"`` for the hand-set defaults, ``"fitted"`` after calibration.
    source: str = "static"
    #: Number of history samples the fit consumed (0 for static models).
    samples: int = 0
    #: Per-family scale factors applied by the fit (empty for static models).
    family_scales: Dict[str, float] = field(default_factory=dict)

    def engine_multiplier(self, engine: str) -> float:
        """The rows-touched multiplier for ``engine`` (1.0 when unknown)."""
        return self.engine_multipliers.get(engine, 1.0)

    def dispatch_cost(self, graph) -> float:
        """Per-shard dispatch cost for ``graph``'s worker attach mode."""
        if getattr(graph, "snapshot_path", None) is not None:
            return self.mmap_dispatch_shard_cost
        return self.dispatch_shard_cost

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-friendly; used by bench records)."""
        return {
            "select_row_cost": self.select_row_cost,
            "group_row_cost": self.group_row_cost,
            "join_row_cost": self.join_row_cost,
            "cached_cell_cost": self.cached_cell_cost,
            "base_cost": self.base_cost,
            "delta_probe_cost": self.delta_probe_cost,
            "pres_scan_cost": self.pres_scan_cost,
            "refresh_cell_cost": self.refresh_cell_cost,
            "merge_cell_cost": self.merge_cell_cost,
            "dispatch_shard_cost": self.dispatch_shard_cost,
            "mmap_dispatch_shard_cost": self.mmap_dispatch_shard_cost,
            "engine_multipliers": dict(self.engine_multipliers),
            "source": self.source,
            "samples": self.samples,
            "family_scales": dict(self.family_scales),
        }

    def describe(self) -> str:
        """One-line human-readable summary (printed by ``demo --advise``)."""
        if self.source == "static":
            return "cost model: static defaults"
        scales = ", ".join(
            f"{family}x{scale:.2f}" for family, scale in sorted(self.family_scales.items())
        )
        return f"cost model: fitted from {self.samples} samples ({scales})"


@dataclass(frozen=True)
class CalibrationSample:
    """One ``(strategy, predicted cost, observed execute seconds)`` point."""

    strategy: str
    family: str
    predicted_cost: float
    seconds: float


def strategy_family(strategy: str) -> Optional[str]:
    """The pricing family of a recorded strategy name, or None.

    Planner strategies arrive as ``plan[...]``; the forced baselines and
    :meth:`~repro.olap.session.OLAPSession.execute` strategies are bare.
    Unknown strategies (e.g. custom experiment labels) yield None and are
    skipped by the fit.
    """
    if strategy.startswith("plan[") and strategy.endswith("]"):
        strategy = strategy[len("plan[") : -1]
    if strategy in ("scratch", "auto") or strategy.startswith("scratch["):
        # scratch[saturate] / scratch[rewrite]: entailment-aware evaluation
        # still touches the instance — same pricing family as plain scratch.
        return "instance"
    if strategy == "parallel":
        return "parallel"
    if (
        strategy.startswith("rewrite[")
        or strategy.startswith("compat[")
        or strategy == "rollup-from-cached"
    ):
        return "reuse"
    if strategy in ("cached", "cache", "cache[disk]"):
        return "cached"
    if strategy in ("refresh", "refresh-cached"):
        return "refresh"
    return None


def samples_from_history(history: Iterable) -> List[CalibrationSample]:
    """Extract calibration samples from a session's transformation history.

    Only records that carry the planner's ``estimated_cost`` detail can be
    samples — the fit needs the *predicted* cost next to the observed time.
    The observed time is the record's execute component
    (:attr:`~repro.olap.session.TransformationRecord.execute_seconds`);
    planner enumeration time is deliberately excluded so cache-hit samples
    measure serving, not planning.
    """
    samples: List[CalibrationSample] = []
    for record in history:
        predicted = record.details.get("estimated_cost")
        if predicted is None:
            continue
        family = strategy_family(record.strategy)
        if family is None:
            continue
        seconds = record.execute_seconds
        if seconds <= 0.0:
            seconds = record.seconds
        if predicted <= 0.0 or seconds <= 0.0:
            continue
        samples.append(
            CalibrationSample(record.strategy, family, float(predicted), float(seconds))
        )
    return samples


def _slope(samples: Sequence[CalibrationSample]) -> Optional[float]:
    """Least-squares slope through the origin of seconds vs. predicted cost.

    Minimizing ``Σ (t_i - m·c_i)²`` gives ``m = Σ c_i·t_i / Σ c_i²`` — the
    one-parameter least-squares fit, solvable exactly without numpy (the
    calibrator must work on row-engine-only installs).
    """
    denominator = sum(sample.predicted_cost ** 2 for sample in samples)
    if denominator <= 0.0:
        return None
    numerator = sum(sample.predicted_cost * sample.seconds for sample in samples)
    if numerator <= 0.0:
        return None
    return numerator / denominator


def fit_family_scales(
    samples: Sequence[CalibrationSample], min_samples: int = 1
) -> Dict[str, float]:
    """Per-family scale factors relative to the instance-evaluation family.

    Families without at least ``min_samples`` usable samples — or without a
    positive slope — keep factor 1.0 (their static constants).  When the
    reference ``instance`` family itself has no samples the first family
    with a slope becomes the reference, so a cache-hit-only history still
    normalizes consistently.
    """
    by_family: Dict[str, List[CalibrationSample]] = {}
    for sample in samples:
        by_family.setdefault(sample.family, []).append(sample)

    slopes: Dict[str, float] = {}
    for family, family_samples in by_family.items():
        if len(family_samples) < min_samples:
            continue
        slope = _slope(family_samples)
        if slope is not None:
            slopes[family] = slope

    reference = slopes.get("instance")
    if reference is None:
        for family in FAMILIES:
            if family in slopes:
                reference = slopes[family]
                break
    if reference is None or reference <= 0.0:
        return {}

    scales: Dict[str, float] = {}
    for family, slope in slopes.items():
        scales[family] = min(MAX_SCALE, max(MIN_SCALE, slope / reference))
    return scales


def fit_cost_model(
    history: Iterable,
    engine: str = "rows",
    base: Optional[CostModel] = None,
    min_samples: int = 1,
) -> CostModel:
    """Fit a :class:`CostModel` from a session's recorded history.

    Parameters
    ----------
    history:
        :class:`~repro.olap.session.TransformationRecord` sequence (e.g.
        ``session.history``).
    engine:
        The engine the history's instance-evaluating records ran on; its
        multiplier absorbs the instance family's scale so scratch stays the
        unit-defining strategy.
    base:
        Starting constants (defaults to the static model).
    min_samples:
        Minimum samples a family needs before its constants are rescaled.

    Returns the ``base`` model unchanged (aside from bookkeeping fields)
    when the history yields no usable samples — calibration can refine the
    planner but never leave it without a model.
    """
    base = base or CostModel()
    samples = samples_from_history(history)
    scales = fit_family_scales(samples, min_samples=min_samples)
    if not scales:
        return replace(base, source=base.source, samples=len(samples))

    reuse = scales.get("reuse", 1.0)
    cached = scales.get("cached", 1.0)
    refresh = scales.get("refresh", 1.0)
    parallel = scales.get("parallel", 1.0)
    multipliers = dict(base.engine_multipliers)
    # The instance family is the reference (scale 1.0 by construction), but
    # when the fit re-references off another family (no scratch samples)
    # its factor lands on the engine multiplier so instance-evaluating
    # candidates are still repriced relative to the new reference.
    instance = scales.get("instance", 1.0)
    multipliers[engine] = min(
        MAX_SCALE, max(MIN_SCALE / 10.0, base.engine_multiplier(engine) * instance)
    )
    return replace(
        base,
        select_row_cost=base.select_row_cost * reuse,
        group_row_cost=base.group_row_cost * reuse,
        join_row_cost=base.join_row_cost * reuse,
        cached_cell_cost=base.cached_cell_cost * cached,
        delta_probe_cost=base.delta_probe_cost * refresh,
        pres_scan_cost=base.pres_scan_cost * refresh,
        refresh_cell_cost=base.refresh_cell_cost * refresh,
        merge_cell_cost=base.merge_cell_cost * parallel,
        dispatch_shard_cost=base.dispatch_shard_cost * parallel,
        mmap_dispatch_shard_cost=base.mmap_dispatch_shard_cost * parallel,
        engine_multipliers=multipliers,
        source="fitted",
        samples=len(samples),
        family_scales=scales,
    )
