"""Workload-driven materialization advisor for OLAP sessions.

The session already records everything an index advisor needs: every
executed query and OLAP transformation lands in
:attr:`~repro.olap.session.OLAPSession.history` with its winning strategy,
predicted cost and observed plan/execute timings, and every cache entry
counts its hits.  :class:`WorkloadAdvisor` mines that record in the classic
profile-workload → recommend → evaluate loop:

* **materialize** — canonical query keys the workload keeps coming back to;
  pre-materializing them at session start turns the first access of the
  next replay into a cache hit.  :func:`apply_recommendations` warms them
  through :meth:`~repro.olap.session.OLAPSession.execute`, so with a
  ``cache_dir`` they also flow into the persistent store and survive the
  process.
* **pin** — hot entries protected against LRU eviction
  (:meth:`~repro.olap.cache.ResultCache.pin`), so a burst of one-off
  queries cannot wash out the results the dashboard replays every minute.
* **evict** — entries that never served a hit, dropped early to make room
  while the cache is under LRU pressure.

Each recommendation carries its predicted **benefit**: the rows-touched
the planner would spend answering the query from scratch minus the cost of
serving it from the cache, times the number of accesses the history
observed — i.e. rows saved per replay of the same workload.

The report also carries a :class:`~repro.olap.calibration.CostModel`
fitted from the same history (see :func:`~repro.olap.calibration.fit_cost_model`),
closing the loop: replay the workload in a new session constructed with
``cost_model=report.cost_model`` and warmed by
:func:`apply_recommendations`, and the planner both prices candidates from
observed runtimes and starts with the hot set already materialized.
``benchmarks/bench_advisor.py`` measures exactly that against the static
cold planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.query import AnalyticalQuery
from repro.olap.cache import canonical_query_key
from repro.olap.calibration import CostModel, fit_cost_model

__all__ = [
    "Recommendation",
    "AdvisorReport",
    "WorkloadAdvisor",
    "apply_recommendations",
]

#: Accesses a key needs before it is worth pre-materializing / pinning.
HOT_ACCESS_THRESHOLD = 2


@dataclass(frozen=True)
class Recommendation:
    """One advisor action on one canonical query key."""

    #: ``"materialize"``, ``"pin"`` or ``"evict"``.
    action: str
    #: Canonical key of the target query (see :func:`canonical_query_key`).
    key: str
    #: Display name of the query the key was derived from.
    query_name: str
    #: The query object (needed to re-materialize; not serialized).
    query: AnalyticalQuery
    #: Times the workload touched this key (history records + cache hits).
    accesses: int
    #: Predicted rows-touched saved per replay of the recorded workload.
    benefit: float
    #: Human-readable justification.
    reason: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (query object reduced to its name)."""
        return {
            "action": self.action,
            "key": self.key,
            "query_name": self.query_name,
            "accesses": self.accesses,
            "benefit": round(self.benefit, 3),
            "reason": self.reason,
        }


@dataclass
class AdvisorReport:
    """Ranked advisor output: recommendations plus a fitted cost model."""

    #: All recommendations, highest predicted benefit first.
    recommendations: List[Recommendation] = field(default_factory=list)
    #: Cost model fitted from the same history (static when unfittable).
    cost_model: CostModel = field(default_factory=CostModel)
    #: History records the advisor consumed.
    history_records: int = 0

    def __bool__(self) -> bool:
        return bool(self.recommendations)

    def __len__(self) -> int:
        return len(self.recommendations)

    def by_action(self, action: str) -> List[Recommendation]:
        return [rec for rec in self.recommendations if rec.action == action]

    @property
    def materializations(self) -> List[Recommendation]:
        return self.by_action("materialize")

    @property
    def pins(self) -> List[Recommendation]:
        return self.by_action("pin")

    @property
    def evictions(self) -> List[Recommendation]:
        return self.by_action("evict")

    def as_dict(self) -> Dict[str, object]:
        return {
            "recommendations": [rec.as_dict() for rec in self.recommendations],
            "cost_model": self.cost_model.as_dict(),
            "history_records": self.history_records,
        }

    def describe(self) -> str:
        """Multi-line human-readable report (printed by ``demo --advise``)."""
        lines = [
            f"advisor report ({self.history_records} history records, "
            f"{len(self.recommendations)} recommendations)"
        ]
        for rec in self.recommendations:
            lines.append(
                f"  {rec.action:<11} {rec.query_name:<24} "
                f"benefit~{rec.benefit:>10.1f} rows/replay  ({rec.reason})"
            )
        lines.append("  " + self.cost_model.describe())
        return "\n".join(lines)


class WorkloadAdvisor:
    """Mines one session's history into an :class:`AdvisorReport`.

    Parameters
    ----------
    session:
        The :class:`~repro.olap.session.OLAPSession` whose history, cache
        statistics and cost estimates drive the recommendations.
    hot_threshold:
        Minimum observed accesses before a key is recommended for
        pre-materialization and pinning (default
        :data:`HOT_ACCESS_THRESHOLD`).
    """

    def __init__(self, session, hot_threshold: int = HOT_ACCESS_THRESHOLD):
        self._session = session
        self._hot_threshold = max(1, int(hot_threshold))

    # -- profiling -----------------------------------------------------------

    def _access_counts(self) -> Dict[str, int]:
        """Observed accesses per canonical key.

        A key is touched whenever a history record answered its query
        *and* whenever the cache served its entry (transform origins are
        read through the cache without a record of their own, so entry
        hits are the only evidence of origin reuse).
        """
        counts: Dict[str, int] = {}
        keys_by_name: Dict[str, str] = {}
        for name, query in self._session._queries.items():
            keys_by_name[name] = canonical_query_key(query)
        for record in self._session.history:
            key = keys_by_name.get(record.query_name)
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
        for entry in self._session.cache.entries():
            if entry.hits:
                counts[entry.key] = counts.get(entry.key, 0) + entry.hits
        return counts

    def _benefit(self, query: AnalyticalQuery, cells: int, accesses: int) -> float:
        """Rows-touched saved per replay by serving ``query`` from cache."""
        model = self._session.cost_model
        scratch = model.engine_multiplier(
            self._session.engine
        ) * self._session.maintainer.estimate_scratch_cost(query)
        served = model.base_cost + cells * model.cached_cell_cost
        return max(0.0, scratch - served) * accesses

    # -- recommendation ------------------------------------------------------

    def report(self, top: int = 8) -> AdvisorReport:
        """Build the ranked report (at most ``top`` actions per category).

        Hot keys (``accesses >= hot_threshold``) are recommended for
        pre-materialization — and for pinning when they currently hold a
        live cache entry.  When nothing crosses the threshold the single
        highest-benefit key is still recommended, so a short history
        yields a usable (if modest) warm-start set.  Entries that never
        served a hit are recommended for early eviction only while the
        cache is actually under LRU pressure.
        """
        session = self._session
        counts = self._access_counts()
        cache = session.cache
        queries_by_key: Dict[str, AnalyticalQuery] = {}
        for query in session._queries.values():
            queries_by_key.setdefault(canonical_query_key(query), query)

        scored = []
        for key, query in queries_by_key.items():
            accesses = counts.get(key, 0)
            if accesses <= 0:
                continue
            entry = cache.peek(query, session.instance)
            cells = len(entry.materialized.answer) if entry is not None else 0
            benefit = self._benefit(query, cells, accesses)
            if benefit <= 0.0:
                continue
            scored.append((benefit, accesses, key, query, entry))
        scored.sort(key=lambda item: (-item[0], item[2]))

        recommendations: List[Recommendation] = []
        hot = [item for item in scored if item[1] >= self._hot_threshold]
        if not hot and scored:
            hot = scored[:1]
        for benefit, accesses, key, query, entry in hot[:top]:
            recommendations.append(
                Recommendation(
                    action="materialize",
                    key=key,
                    query_name=query.name,
                    query=query,
                    accesses=accesses,
                    benefit=benefit,
                    reason=f"accessed {accesses}x; warm start saves a scratch evaluation",
                )
            )
        for benefit, accesses, key, query, entry in hot[:top]:
            if entry is not None or cache.capacity > 0:
                recommendations.append(
                    Recommendation(
                        action="pin",
                        key=key,
                        query_name=query.name,
                        query=query,
                        accesses=accesses,
                        benefit=benefit,
                        reason="hot entry; protect from LRU eviction",
                    )
                )

        # Early eviction: only under real LRU pressure, and never a key we
        # just recommended keeping.
        keep = {rec.key for rec in recommendations}
        if cache.capacity > 0 and len(cache) >= cache.capacity:
            cold = [
                entry
                for entry in cache.entries()
                if entry.hits == 0 and entry.key not in keep
            ]
            for entry in cold[:top]:
                recommendations.append(
                    Recommendation(
                        action="evict",
                        key=entry.key,
                        query_name=entry.query.name,
                        query=entry.query,
                        accesses=counts.get(entry.key, 0),
                        benefit=0.0,
                        reason="never served a hit; free a slot under LRU pressure",
                    )
                )

        return AdvisorReport(
            recommendations=recommendations,
            cost_model=session.fit_cost_model(),
            history_records=len(session.history),
        )


def apply_recommendations(session, report: AdvisorReport) -> Dict[str, int]:
    """Apply ``report`` to ``session``; returns per-action counts.

    Pins are asserted first — they are latent
    (:meth:`~repro.olap.cache.ResultCache.pin` protects a key from the
    moment its entry lands), so the materializations that follow can never
    LRU-evict each other out of a small cache.  Materializations run
    through :meth:`~repro.olap.session.OLAPSession.execute`, so results
    flow into the cache — and its persistent store, when configured —
    then early evictions are applied.  Applying a report produced by one
    session to a *fresh* session over the same instance is the warm-start
    path: the fresh session's first replay of the workload starts with
    the hot set already cached and pinned.
    """
    counts = {"materialized": 0, "pinned": 0, "evicted": 0}
    for rec in report.pins:
        session.cache.pin(rec.key)
        counts["pinned"] += 1
    for rec in report.materializations:
        if session.cache.peek(rec.query, session.instance) is None:
            session.execute(rec.query)
            counts["materialized"] += 1
    for rec in report.evictions:
        if session.cache.evict(rec.key):
            counts["evicted"] += 1
    return counts
