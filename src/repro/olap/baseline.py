"""The from-scratch baseline: answering a transformed query over the instance.

The paper compares its rewritings against re-evaluating ``Q_T`` on the AnS
instance (classifier + measure + join + aggregation).  That evaluation is
already implemented by
:class:`~repro.analytics.evaluator.AnalyticalQueryEvaluator`; this module
gives it the explicit "baseline" name used by the OLAP session, the
benchmarks and EXPERIMENTS.md, so the comparison code reads like the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.analytics.answer import CubeAnswer
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.olap.operations import OLAPOperation

__all__ = ["answer_from_scratch", "transformed_answer_from_scratch"]


def answer_from_scratch(
    evaluator: AnalyticalQueryEvaluator, query: AnalyticalQuery
) -> CubeAnswer:
    """Evaluate ``query`` directly on the AnS instance (no reuse)."""
    return evaluator.answer(query)


def transformed_answer_from_scratch(
    evaluator: AnalyticalQueryEvaluator,
    query: AnalyticalQuery,
    operation: OLAPOperation,
    transformed_query: Optional[AnalyticalQuery] = None,
) -> CubeAnswer:
    """Apply ``operation`` to ``query`` and evaluate the result from scratch."""
    if transformed_query is None:
        transformed_query = operation.apply(query)
    return evaluator.answer(transformed_query)
