"""The :class:`Cube` abstraction over analytical-query answers.

``ans(Q)`` is "a cube of n dimensions, holding in each cube cell the
corresponding aggregate measure" (Section 2).  :class:`Cube` wraps the
answer relation with cell-level access, dimension introspection and
display helpers used by the examples and the benchmark reports.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import OLAPError
from repro.algebra.expressions import comparable
from repro.algebra.relation import Relation
from repro.analytics.answer import CubeAnswer
from repro.analytics.query import AnalyticalQuery

__all__ = ["Cube"]


class Cube:
    """An n-dimensional cube: dimension tuples mapped to aggregated measures."""

    def __init__(self, answer: CubeAnswer, query: Optional[AnalyticalQuery] = None):
        self._answer = answer
        self.query = query
        self._cells: Dict[Tuple, object] = {}
        storage = answer.storage
        measure_index = storage.column_index(answer.measure_column)
        dimension_indexes = storage.column_indexes(answer.dimension_columns)
        # The cube is the decoding boundary: iterate the answer's decoded
        # rows (a streaming decode on id-space answers) to build the cells.
        for row in answer:
            key = tuple(row[index] for index in dimension_indexes)
            self._cells[key] = row[measure_index]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def answer(self) -> CubeAnswer:
        return self._answer

    @property
    def relation(self) -> Relation:
        return self._answer.relation

    @property
    def dimensions(self) -> Tuple[str, ...]:
        return self._answer.dimension_columns

    @property
    def measure_column(self) -> str:
        return self._answer.measure_column

    @property
    def arity(self) -> int:
        return len(self.dimensions)

    def __len__(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def dimension_values(self, dimension: str) -> set:
        """Distinct values appearing along one dimension."""
        if dimension not in self.dimensions:
            raise OLAPError(f"unknown dimension {dimension!r}; cube dimensions are {self.dimensions}")
        return self._answer.relation.distinct_values(dimension)

    # ------------------------------------------------------------------
    # cell access
    # ------------------------------------------------------------------

    def cells(self) -> Dict[Tuple, object]:
        """Mapping from dimension-value tuples (in dimension order) to measures."""
        return dict(self._cells)

    def cell(self, *values, **named_values) -> object:
        """The measure of one cell, addressed positionally or by dimension name.

        Raises :class:`~repro.errors.OLAPError` when the cell is empty
        (no fact with those dimension values had a defined measure).
        """
        key = self._cell_key(values, named_values)
        if key in self._cells:
            return self._cells[key]
        # Second chance: compare via the literal-to-Python conversion so that
        # cube.cell(28, "Madrid") finds the cell keyed by typed literals.
        wanted = tuple(comparable(value) for value in key)
        for existing_key, measure in self._cells.items():
            if tuple(comparable(value) for value in existing_key) == wanted:
                return measure
        raise OLAPError(f"no cell for dimension values {key!r}")

    def get(self, *values, default=None, **named_values) -> object:
        """Like :meth:`cell` but returns ``default`` for empty cells."""
        try:
            return self.cell(*values, **named_values)
        except OLAPError:
            return default

    def _cell_key(self, values: Sequence, named_values: Mapping[str, object]) -> Tuple:
        if values and named_values:
            raise OLAPError("address a cell either positionally or by name, not both")
        if named_values:
            unknown = set(named_values) - set(self.dimensions)
            if unknown:
                raise OLAPError(f"unknown dimensions {sorted(unknown)}")
            missing = [name for name in self.dimensions if name not in named_values]
            if missing:
                raise OLAPError(f"missing dimension values for {missing}")
            return tuple(named_values[name] for name in self.dimensions)
        if len(values) != len(self.dimensions):
            raise OLAPError(
                f"expected {len(self.dimensions)} dimension values, got {len(values)}"
            )
        return tuple(values)

    def __iter__(self) -> Iterator[Tuple[Tuple, object]]:
        return iter(self._cells.items())

    # ------------------------------------------------------------------
    # comparison / display
    # ------------------------------------------------------------------

    def same_cells(self, other: "Cube", tolerance: float = 1e-9) -> bool:
        """True when both cubes have the same cells with (numerically) equal measures.

        Dimension values are compared through their Python conversion so a
        cube built by rewriting (whose keys may be raw literals) compares
        equal to one built from scratch.
        """
        if self.dimensions != other.dimensions:
            return False

        def normalize(cube: "Cube") -> Dict[Tuple, object]:
            return {
                tuple(comparable(value) for value in key): comparable(measure)
                for key, measure in cube._cells.items()
            }

        mine = normalize(self)
        theirs = normalize(other)
        if set(mine) != set(theirs):
            return False
        for key, value in mine.items():
            other_value = theirs[key]
            if isinstance(value, (int, float)) and isinstance(other_value, (int, float)):
                if abs(float(value) - float(other_value)) > tolerance:
                    return False
            elif value != other_value:
                return False
        return True

    def to_text(self, max_rows: int = 20) -> str:
        """ASCII rendering of the cube (sorted for stable output)."""
        return self._answer.relation.sorted().to_text(max_rows=max_rows)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Cube(dims={self.dimensions}, cells={len(self._cells)})"
