"""OLAP operations for RDF analytics and their view-based rewritings.

* :mod:`repro.olap.operations` — SLICE, DICE, DRILL-OUT, DRILL-IN as query
  transformations;
* :mod:`repro.olap.auxiliary` — the auxiliary DRILL-IN query (Definition 6);
* :mod:`repro.olap.rewriting` — Proposition 1, Algorithm 1, Algorithm 2, and
  the strategy-selecting :class:`OLAPRewriter`;
* :mod:`repro.olap.baseline` — the from-scratch baseline;
* :mod:`repro.olap.cube` — the cube result abstraction;
* :mod:`repro.olap.cache` — the bounded canonical-form result cache;
* :mod:`repro.olap.maintenance` — incremental refresh of cached results
  from triple-level graph deltas;
* :mod:`repro.olap.parallel` — shard-partitioned parallel evaluation with
  mergeable partial aggregates;
* :mod:`repro.olap.planner` — cost-based strategy planning per operation;
* :mod:`repro.olap.calibration` — :class:`CostModel` and the least-squares
  fit of its constants from recorded runtimes;
* :mod:`repro.olap.advisor` — workload-driven materialize/pin/evict
  recommendations mined from a session's history;
* :mod:`repro.olap.session` — :class:`OLAPSession`, the top-level API.
"""

from repro.olap.advisor import AdvisorReport, Recommendation, WorkloadAdvisor, apply_recommendations
from repro.olap.auxiliary import auxiliary_join_columns, build_auxiliary_query
from repro.olap.calibration import CalibrationSample, CostModel, fit_cost_model
from repro.olap.baseline import answer_from_scratch, transformed_answer_from_scratch
from repro.olap.cache import (
    CacheEntry,
    CacheStats,
    ResultCache,
    ResultCacheStats,
    canonical_query_key,
)
from repro.olap.cube import Cube
from repro.olap.maintenance import DeltaMaintainer, estimate_scratch_cost
from repro.olap.parallel import (
    ExecutorStats,
    ParallelExecutor,
    dispatch_shard_cost,
    estimate_parallel_cost,
)
from repro.olap.planner import OLAPPlanner, Plan, PlanCandidate
from repro.olap.hierarchy import (
    DimensionHierarchy,
    roll_up_from_answer_naive,
    roll_up_from_partial,
)
from repro.olap.operations import (
    Dice,
    DrillDown,
    DrillIn,
    DrillOut,
    OLAPOperation,
    RollUp,
    Slice,
    compose,
)
from repro.olap.rewriting import (
    OLAPRewriter,
    RewriteOption,
    RewritingResult,
    answer_from_rolled_partial,
    drill_in_from_partial,
    drill_out_from_answer_naive,
    drill_out_from_partial,
    slice_dice_from_answer,
    transform_partial,
)
from repro.olap.session import OLAPSession, TransformationRecord

__all__ = [
    "OLAPOperation",
    "Slice",
    "Dice",
    "DrillOut",
    "DrillIn",
    "RollUp",
    "DrillDown",
    "compose",
    "build_auxiliary_query",
    "auxiliary_join_columns",
    "slice_dice_from_answer",
    "drill_out_from_partial",
    "drill_in_from_partial",
    "drill_out_from_answer_naive",
    "transform_partial",
    "DimensionHierarchy",
    "roll_up_from_partial",
    "roll_up_from_answer_naive",
    "answer_from_rolled_partial",
    "OLAPRewriter",
    "RewriteOption",
    "RewritingResult",
    "ResultCache",
    "CacheEntry",
    "CacheStats",
    "ResultCacheStats",
    "canonical_query_key",
    "DeltaMaintainer",
    "estimate_scratch_cost",
    "ParallelExecutor",
    "ExecutorStats",
    "estimate_parallel_cost",
    "dispatch_shard_cost",
    "OLAPPlanner",
    "Plan",
    "PlanCandidate",
    "CostModel",
    "CalibrationSample",
    "fit_cost_model",
    "WorkloadAdvisor",
    "AdvisorReport",
    "Recommendation",
    "apply_recommendations",
    "answer_from_scratch",
    "transformed_answer_from_scratch",
    "Cube",
    "OLAPSession",
    "TransformationRecord",
]
