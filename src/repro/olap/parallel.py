"""Partitioned parallel execution of analytical queries.

The serial engine answers ``pres(Q)``/``ans(Q)`` by walking the whole AnS
instance on one core.  This module scales that out: the term-id space is
split into fact shards (:meth:`repro.rdf.graph.Graph.partition`), each shard
evaluates the query with the fact variable range-restricted to its interval
(classifier ⋈ₓ measure per shard, via
:meth:`~repro.analytics.evaluator.AnalyticalQueryEvaluator.shard_results`),
and the per-shard results are combined:

* ``pres(Q)`` is the concatenation of the shard partial results (facts are
  partitioned, so the shard relations are disjoint; ``newk()`` keys come
  from disjoint per-shard ranges);
* ``ans(Q)`` is merged through the partial-aggregate algebra of
  :mod:`repro.algebra.aggregates` — COUNT/SUM add, AVG merges ``(sum,
  count)`` pairs, MIN/MAX re-compare, count_distinct unions per-shard id
  sets — so γ results combine **without re-decoding** a single term.  On
  the columnar engine the shard states arrive in **array form**
  (:class:`~repro.algebra.columnar.ArrayGroupStates`: one row per group
  across parallel int64 arrays), and the merge is a concatenate +
  re-reduce instead of a per-group dict fold — no re-boxing.

Backends
--------

``serial``
    Shards evaluated inline, one after the other.  Still exercises the
    range-restricted evaluation and the merge algebra — the oracle-testing
    configuration, and the ``workers=1`` degenerate case.
``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor` over the live
    evaluator.  No pickling, always-current data; concurrency is bounded by
    the GIL, so this is the correctness/fallback backend, not the fast one.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` with one of two
    **attach modes** (see :attr:`ParallelExecutor.attach_mode`):

    * ``snapshot-mmap`` — when the instance is snapshot-backed (its
      :attr:`~repro.rdf.graph.Graph.snapshot_path` is set), the pool
      initializer ships only the **path**; each worker re-opens the
      snapshot by mmap and shares its pages with every other worker
      through the OS page cache.  Pool build cost is O(1) in the instance
      size — no graph is ever pickled.
    * ``pickled-graph`` — heap instances are pickled into every worker
      once via the initializer (the pre-snapshot behaviour): O(instance)
      per pool build.

    In both modes workers receive tiny pickled shard specs per task and
    ship back plain rows and state maps — term ids are identical across
    workers (the snapshot preserves the dense first-seen ids), so the
    merge side never re-encodes.  The pool is version-stamped: a graph
    mutation rebuilds it so workers never serve a stale snapshot.
``auto``
    ``process`` when the query pickles (Σ range restrictions carry
    closures and do not), ``thread`` otherwise; ``serial`` when
    ``workers <= 1``.

Every dispatch — and every silent downgrade (a broken pool, an
unpicklable query) — is counted in :class:`ExecutorStats`, which the
planner surfaces in :meth:`~repro.olap.planner.Plan.explain`, so
benchmark numbers can never unknowingly mix backends.

Cost model
----------

:func:`estimate_parallel_cost` prices the parallel candidate in the
planner's rows-touched unit: the from-scratch estimate divided by the
usable lanes, plus a per-cell merge term and a flat per-shard dispatch
overhead.  Small instances therefore price parallel *above* plain scratch
and the planner keeps them serial — parallelism has to be won, not assumed.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.errors import OLAPError

from repro.algebra.aggregates import partial_aggregate
from repro.algebra.grouping import finalize_group_states, merge_group_states
from repro.algebra.relation import IdRelation, Relation
from repro.analytics.answer import CubeAnswer, MaterializedQueryResults, PartialResult
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import KEY_COLUMN, AnalyticalQuery
from repro.olap.maintenance import estimate_scratch_cost
from repro.rdf.graph import GraphShard

__all__ = [
    "ParallelExecutor",
    "ExecutorStats",
    "estimate_parallel_cost",
    "dispatch_shard_cost",
    "KEY_STRIDE",
    "DISPATCH_SHARD_COST",
    "MMAP_DISPATCH_SHARD_COST",
    "MERGE_CELL_COST",
]

#: Disjoint ``newk()`` key range per shard: shard *i* draws keys from
#: ``[1 + i * KEY_STRIDE, ...)``.  Keys only need global distinctness
#: (Algorithm 1 dedups by key), and 2^40 keys per shard is unreachable.
KEY_STRIDE = 1 << 40

#: Flat rows-touched-equivalent overhead of dispatching one shard when the
#: pool must be seeded by **pickling the graph** (task submission, result
#: transfer, amortized pool-build).  Keeps tiny instances serial.
DISPATCH_SHARD_COST = 200.0

#: Per-shard dispatch overhead when workers **attach to a snapshot by
#: mmap**: pool build ships a path instead of a graph, so only task
#: submission and result transfer remain.  Measured ~O(1) in instance size
#: (see ``benchmarks/bench_snapshot_coldstart.py``).
MMAP_DISPATCH_SHARD_COST = 8.0

#: Per merged γ state / answer cell: cost of the merge-and-finalize step.
MERGE_CELL_COST = 0.5


def dispatch_shard_cost(graph) -> float:
    """The per-shard dispatch constant for ``graph``'s attach mode.

    Snapshot-backed graphs (non-None ``snapshot_path``) are priced at
    :data:`MMAP_DISPATCH_SHARD_COST` — their workers attach by path;
    heap graphs pay the pickled-shipping :data:`DISPATCH_SHARD_COST`.
    """
    if getattr(graph, "snapshot_path", None) is not None:
        return MMAP_DISPATCH_SHARD_COST
    return DISPATCH_SHARD_COST


def estimate_parallel_cost(
    statistics,
    query: AnalyticalQuery,
    workers: int,
    shard_count: int,
    dispatch_cost: Optional[float] = None,
    merge_cell_cost: Optional[float] = None,
) -> float:
    """Rows-touched estimate of the partitioned path for ``query``.

    Per-shard evaluation splits the from-scratch work across the usable
    lanes (``min(workers, shard_count)``); merging touches every answer
    cell once per shard in the worst case; dispatch pays a flat overhead
    per shard — :data:`DISPATCH_SHARD_COST` by default, or the caller's
    ``dispatch_cost`` (use :func:`dispatch_shard_cost` to price the
    instance's actual attach mode).  ``merge_cell_cost`` likewise defaults
    to :data:`MERGE_CELL_COST` and lets a fitted
    :class:`~repro.olap.calibration.CostModel` substitute its calibrated
    value.  Same unit as
    :func:`repro.olap.maintenance.estimate_scratch_cost`, so the planner
    can rank the two directly.
    """
    if dispatch_cost is None:
        dispatch_cost = DISPATCH_SHARD_COST
    if merge_cell_cost is None:
        merge_cell_cost = MERGE_CELL_COST
    lanes = max(1, min(int(workers), int(shard_count)))
    per_lane = estimate_scratch_cost(statistics, query) / lanes
    cells = statistics.estimate_bgp_cardinality(query.classifier)
    merge = merge_cell_cost * (cells + shard_count)
    return per_lane + merge + dispatch_cost * shard_count


class ExecutorStats:
    """Dispatch bookkeeping for one :class:`ParallelExecutor`.

    Counts every dispatch by the backend that actually served it and every
    **downgrade** (process pool broken, unpicklable query, unsupported
    aggregate) with its reason — the planner surfaces this in
    :meth:`~repro.olap.planner.Plan.explain` so a benchmark can never
    silently mix backends.
    """

    __slots__ = ("dispatches", "process_failures", "fallbacks")

    def __init__(self):
        #: Per-effective-backend dispatch counts, e.g. ``{"process": 4}``.
        self.dispatches: Dict[str, int] = {}
        #: Number of process-pool dispatch attempts that raised.
        self.process_failures = 0
        #: Chronological ``(from_backend, to_backend, reason)`` records.
        self.fallbacks: List[Tuple[str, str, str]] = []

    def record_dispatch(self, backend: str) -> None:
        self.dispatches[backend] = self.dispatches.get(backend, 0) + 1

    def record_fallback(self, from_backend: str, to_backend: str, reason: str) -> None:
        self.fallbacks.append((from_backend, to_backend, reason))

    @property
    def total_dispatches(self) -> int:
        return sum(self.dispatches.values())

    def summary(self) -> str:
        """One-line human-readable form used in plan explanations."""
        if not self.dispatches and not self.fallbacks:
            return "no dispatches yet"
        parts = [
            f"{backend}:{count}"
            for backend, count in sorted(self.dispatches.items())
        ]
        line = " ".join(parts)
        if self.fallbacks:
            reasons = ", ".join(
                f"{frm}->{to} ({reason})" for frm, to, reason in self.fallbacks
            )
            line += f"; {len(self.fallbacks)} fallback(s): {reasons}"
        return line

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExecutorStats({self.summary()})"


# ---------------------------------------------------------------------------
# process-pool worker side
# ---------------------------------------------------------------------------

#: Per-worker evaluator over the graph snapshot shipped by the initializer.
_WORKER_EVALUATOR: Optional[AnalyticalQueryEvaluator] = None


def _initialize_worker(graph, engine: Optional[str] = None) -> None:
    """Pickled-graph pool initializer: one evaluator per worker.

    ``engine`` carries the parent evaluator's resolved engine so an
    explicit pin (``OLAPSession(engine="rows")``) governs worker processes
    too — auto-resolution in the worker could disagree with the parent.
    """
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = AnalyticalQueryEvaluator(graph, engine=engine)


def _initialize_worker_snapshot(path: str, engine: Optional[str] = None) -> None:
    """Snapshot-attach pool initializer: workers mmap the file by path.

    Nothing instance-sized crosses the process boundary — the initializer
    payload is a path string.  Each worker re-opens the snapshot read-only
    and the OS page cache shares the hot pages across the whole pool, so
    pool build is O(header) regardless of instance size.  Statistics come
    from the snapshot header (no scan), making worker warm-up O(1) too.
    """
    from repro.storage.snapshot import load_snapshot

    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = AnalyticalQueryEvaluator(load_snapshot(path, mmap=True), engine=engine)


def _run_shard(payload: Tuple[AnalyticalQuery, GraphShard, int, bool]):
    """Evaluate one pickled shard spec in a worker process."""
    query, shard, key_base, keep_rows = payload
    assert _WORKER_EVALUATOR is not None, "worker initializer did not run"
    return _WORKER_EVALUATOR.shard_results(query, shard, key_base=key_base, keep_rows=keep_rows)


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class ParallelExecutor:
    """Runs analytical queries shard-parallel and merges the partial results.

    Parameters
    ----------
    evaluator:
        The serial :class:`~repro.analytics.evaluator.AnalyticalQueryEvaluator`
        over the AnS instance (must be id-space; it is also the fallback for
        non-mergeable aggregates).
    workers:
        Pool size.  ``1`` evaluates the shards inline (the merge algebra is
        still exercised).
    shard_count:
        Number of fact shards per query; defaults to ``workers``.  More
        shards than workers smooths load imbalance at a small dispatch cost.
    backend:
        ``"auto"`` (default), ``"process"``, ``"thread"`` or ``"serial"``
        — see the module docstring.

    Examples
    --------
    ``workers=1`` evaluates the shards inline — the partitioned path and
    the merge algebra are fully exercised, without pool plumbing:

    >>> from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
    >>> from repro.analytics.evaluator import AnalyticalQueryEvaluator
    >>> from repro.olap.cube import Cube
    >>> dataset = generic_dataset(GenericConfig(facts=30, dimensions=2, seed=9))
    >>> query = generic_query(dataset.config, aggregate="avg")
    >>> evaluator = AnalyticalQueryEvaluator(dataset.instance)
    >>> with ParallelExecutor(evaluator, workers=1, shard_count=4) as executor:
    ...     merged = executor.evaluate(query)
    >>> Cube(merged.answer, query).same_cells(Cube(evaluator.answer(query), query))
    True
    """

    def __init__(
        self,
        evaluator: AnalyticalQueryEvaluator,
        workers: int = 2,
        shard_count: Optional[int] = None,
        backend: str = "auto",
    ):
        if backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(
                f"unknown backend {backend!r}; expected auto, process, thread or serial"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._evaluator = evaluator
        self._graph = evaluator.instance
        self._workers = int(workers)
        self._shard_count = self._workers if shard_count is None else int(shard_count)
        if self._shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self._backend = backend
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_version: Optional[int] = None
        self._process_broken = False
        self._closed = False
        #: Backend used by the most recent dispatch (introspection / tests).
        self.last_backend: Optional[str] = None
        #: Running dispatch/fallback counters (surfaced by Plan.explain()).
        self.stats = ExecutorStats()

    @property
    def attach_mode(self) -> str:
        """How worker processes receive the instance.

        ``"snapshot-mmap"`` when the graph is snapshot-backed — the pool
        initializer ships a path and workers mmap it (O(1) pool build);
        ``"pickled-graph"`` otherwise.
        """
        if getattr(self._graph, "snapshot_path", None) is not None:
            return "snapshot-mmap"
        return "pickled-graph"

    # -- introspection -------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def backend(self) -> str:
        """The *requested* backend (the effective one is :attr:`last_backend`)."""
        return self._backend

    def supports(self, query: AnalyticalQuery) -> bool:
        """True when ``query`` can be answered by partitioned evaluation.

        Requires the id-space engine (shards merge on shared term ids) and
        a mergeable partial form of the aggregate; anything else falls back
        to the serial evaluator inside :meth:`evaluate`.  Rolled-up queries
        are unsupported: their hierarchy objects (often closures) do not
        survive the worker-process pickle boundary.
        """
        if query.rollup:
            return False
        return self._evaluator.id_space and partial_aggregate(query.aggregate) is not None

    # -- execution -----------------------------------------------------

    def evaluate(
        self,
        query: AnalyticalQuery,
        materialize_partial: bool = True,
        shard_count: Optional[int] = None,
    ) -> MaterializedQueryResults:
        """Answer ``query`` shard-parallel; fall back to serial when unsupported.

        The result equals the serial engine's under
        :meth:`~repro.olap.cube.Cube.same_cells` — exact for COUNT, MIN,
        MAX, count_distinct and for SUM/AVG over integer bags; SUM/AVG over
        float measures may differ by an ulp (float addition is not
        associative), within same_cells' 1e-9 tolerance.  ``pres(Q)`` is
        equal as a bag modulo the opaque ``newk()`` key values.  The
        property suite in ``tests/properties/test_property_parallel.py``
        holds all of this across worker/shard combinations.
        """
        if not self.supports(query):
            self.last_backend = "fallback-serial"
            self.stats.record_dispatch("fallback-serial")
            self._record_fallback(self._backend, "serial", "unsupported aggregate")
            return self._evaluator.evaluate(query, materialize_partial=materialize_partial)
        count = self._shard_count if shard_count is None else int(shard_count)
        shards = self._graph.partition(count)
        results = self._dispatch(query, shards, materialize_partial)
        return self._merge(query, results, materialize_partial)

    def answer(self, query: AnalyticalQuery, shard_count: Optional[int] = None) -> CubeAnswer:
        """``ans(Q)`` without retaining ``pres(Q)`` (workers ship no rows)."""
        return self.evaluate(query, materialize_partial=False, shard_count=shard_count).answer

    # -- dispatch ------------------------------------------------------

    def _dispatch(
        self, query: AnalyticalQuery, shards: Tuple[GraphShard, ...], keep_rows: bool
    ) -> List[Tuple[Optional[list], Dict]]:
        if self._closed:
            raise OLAPError(
                "ParallelExecutor is closed: its worker pools were shut down "
                "and will not be rebuilt (create a new session/executor)"
            )
        backend = self._effective_backend(query, shards)
        if backend == "process":
            try:
                results = self._dispatch_process(query, shards, keep_rows)
                self.last_backend = "process"
                self.stats.record_dispatch("process")
                return results
            except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
                # A torn-down pool or unpicklable instance data (workers die
                # unpickling the initializer's graph): count the failure,
                # record the downgrade, and serve this (and future) queries
                # on threads.  Genuine evaluation errors (e.g. min over
                # mixed types) propagate — they would raise identically on
                # any backend.
                self._process_broken = True
                self._shutdown_process_pool()
                self.stats.process_failures += 1
                self._record_fallback("process", "thread", type(exc).__name__)
                backend = "thread"
        if backend == "thread":
            results = self._dispatch_thread(query, shards, keep_rows)
            self.last_backend = "thread"
            self.stats.record_dispatch("thread")
            return results
        self.last_backend = "serial"
        self.stats.record_dispatch("serial")
        return [
            self._evaluator.shard_results(
                query, shard, key_base=_shard_key_base(shard), keep_rows=keep_rows
            )
            for shard in shards
        ]

    def _effective_backend(self, query: AnalyticalQuery, shards) -> str:
        if self._backend == "serial" or self._workers <= 1 or len(shards) <= 1:
            return "serial"
        if self._backend == "thread":
            return "thread"
        if self._process_broken:
            return "thread"
        try:
            pickle.dumps(query)
        except Exception:
            # Σ predicate restrictions (e.g. ranges) carry closures; those
            # queries cannot cross a process boundary.
            self._record_fallback("process", "thread", "query not picklable")
            return "thread"
        return "process"

    def _record_fallback(self, from_backend: str, to_backend: str, reason: str) -> None:
        """Record a downgrade, deduping immediate repeats of the same cause."""
        record = (from_backend, to_backend, reason)
        if not self.stats.fallbacks or self.stats.fallbacks[-1] != record:
            self.stats.record_fallback(*record)

    def _dispatch_thread(self, query, shards, keep_rows):
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-shard"
            )
        evaluator = self._evaluator
        futures = [
            self._thread_pool.submit(
                evaluator.shard_results,
                query,
                shard,
                _shard_key_base(shard),
                keep_rows,
            )
            for shard in shards
        ]
        return [future.result() for future in futures]

    def _dispatch_process(self, query, shards, keep_rows):
        pool = self._ensure_process_pool()
        futures = [
            pool.submit(_run_shard, (query, shard, _shard_key_base(shard), keep_rows))
            for shard in shards
        ]
        return [future.result() for future in futures]

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        version = self._graph.version
        if self._process_pool is not None and self._process_pool_version == version:
            return self._process_pool
        # The graph changed since the workers were seeded (or no pool exists
        # yet): rebuild so every worker snapshot matches the live instance.
        # An unpicklable graph surfaces as BrokenProcessPool on the first
        # result (workers die in the initializer) — _dispatch falls back.
        self._shutdown_process_pool()
        engine = getattr(self._evaluator, "engine", None)
        snapshot_path = getattr(self._graph, "snapshot_path", None)
        if snapshot_path is not None:
            # Snapshot attach mode: ship the path, not the graph.  Workers
            # mmap the file and share pages through the OS cache — pool
            # build cost is O(1) in the instance size.
            initializer, initargs = _initialize_worker_snapshot, (snapshot_path, engine)
        else:
            initializer, initargs = _initialize_worker, (self._graph, engine)
        self._process_pool = ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=initializer,
            initargs=initargs,
        )
        self._process_pool_version = version
        return self._process_pool

    # -- merge ---------------------------------------------------------

    def _merge(
        self,
        query: AnalyticalQuery,
        results: List[Tuple[Optional[list], Dict]],
        materialize_partial: bool,
    ) -> MaterializedQueryResults:
        dictionary = self._graph.dictionary
        fact = query.fact_variable.name
        dimension_columns = query.dimension_names
        measure_column = query.measure_variable.name

        merged = merge_group_states((states for _, states in results), query.aggregate)
        answer_rows = finalize_group_states(merged, query.aggregate, decode=dictionary.decode)
        answer_columns = (*dimension_columns, measure_column)
        if dimension_columns:
            answer_relation: Relation = IdRelation.adopt_encoded(
                answer_columns, answer_rows, dictionary, encoded=dimension_columns
            )
        else:
            answer_relation = Relation.adopt(answer_columns, answer_rows)
        answer = CubeAnswer(answer_relation, dimension_columns, measure_column)

        partial = None
        if materialize_partial:
            pres_columns = (fact, *dimension_columns, KEY_COLUMN, measure_column)
            pres_rows: list = []
            for shard_rows, _ in results:
                pres_rows.extend(shard_rows or ())
            pres_relation = IdRelation.adopt_encoded(
                pres_columns,
                pres_rows,
                dictionary,
                encoded=(fact, *dimension_columns, measure_column),
            )
            partial = PartialResult(
                pres_relation,
                fact_column=fact,
                dimension_columns=dimension_columns,
                key_column=KEY_COLUMN,
                measure_column=measure_column,
            )
        return MaterializedQueryResults(query, answer=answer, partial=partial)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; dispatch raises from then on."""
        return self._closed

    def close(self) -> None:
        """Shut down the worker pools (idempotent).

        Both pools are released even if shutting down the thread pool
        raises; after closing, any further dispatch raises
        :class:`~repro.errors.OLAPError` instead of silently rebuilding a
        pool that nobody would ever shut down again.
        """
        self._closed = True
        try:
            if self._thread_pool is not None:
                self._thread_pool.shutdown(wait=True)
                self._thread_pool = None
        finally:
            self._shutdown_process_pool()

    def _shutdown_process_pool(self) -> None:
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
            self._process_pool_version = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ParallelExecutor({self._workers} workers, {self._shard_count} shards, "
            f"backend={self._backend})"
        )


def _shard_key_base(shard: GraphShard) -> int:
    """The start of one shard's disjoint ``newk()`` key range."""
    return 1 + shard.index * KEY_STRIDE
