"""Bounded cache of materialized query results, keyed by canonical query form.

The paper assumes "pres(Q) ... has been materialized and stored as part of
the evaluation of the original query Q".  In a session answering a *stream*
of OLAP operations that assumption needs infrastructure: results must be
findable by the query they answer (not by the navigation path that produced
them), memory must stay bounded, results computed against a graph that has
since been mutated must never be served, and results should outlive the
process that computed them.  :class:`ResultCache` provides exactly that:

* entries are keyed by :func:`canonical_query_key`, a *value-based* canonical
  form of the analytical query (classifier, measure, aggregate and Σ —
  display names excluded), so a DICE of a SLICE finds the SLICE's
  materialized results no matter which operation chain produced them;
* the store is a bounded LRU: reads refresh recency, inserts beyond
  ``capacity`` evict the least recently used entry;
* every entry is stamped with the instance graph's change counter
  (:attr:`repro.rdf.graph.Graph.version`); a stamped-version mismatch on
  lookup never returns the stale result — but when the graph's change log
  can still produce the triple deltas since the stamp
  (:meth:`~repro.rdf.graph.Graph.deltas_since`), the entry is *retained*
  for :meth:`ResultCache.refresh`, which patches it in place via a
  :class:`~repro.olap.maintenance.DeltaMaintainer` instead of throwing the
  work away; only entries past the log window (or lacking the partial
  result patching needs) are dropped as invalidated;
* the mutation paths (LRU recency moves, inserts, evictions, pin
  bookkeeping) are guarded by a reentrant lock, so the cache can be shared
  by the serving layer's concurrent reader threads (one writer at a time;
  see :mod:`repro.serving`);
* with a ``store_dir`` the cache writes entries through to disk
  (:func:`repro.persistence.save_cache_entry`) and serves misses from disk,
  which is how a new session warm-starts from a previous one's work;
* entries can be **pinned** against LRU eviction (:meth:`ResultCache.pin`)
  — the workload advisor pins the entries whose replay benefit it values
  most, so a burst of one-off queries cannot wash them out of the cache.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analytics.answer import MaterializedQueryResults
from repro.analytics.query import AnalyticalQuery
from repro.bgp.query import BGPQuery
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable

__all__ = [
    "canonical_bgp_key",
    "canonical_core_key",
    "canonical_query_key",
    "graph_fingerprint",
    "CacheStats",
    "ResultCacheStats",
    "CacheEntry",
    "ResultCache",
]

#: Default number of in-memory entries an :class:`ResultCache` retains.
DEFAULT_CAPACITY = 64


# ---------------------------------------------------------------------------
# graph content fingerprint (cross-process staleness checks)
# ---------------------------------------------------------------------------


def graph_fingerprint(graph: Graph) -> str:
    """Order-independent content digest of a graph, stable across processes.

    The in-memory staleness check uses :attr:`Graph.version`, but that
    counter restarts with every process, so persisted cache entries need a
    stamp derived from the *content*: the XOR of per-triple SHA-256 digests
    over the triples' N-Triples rendering.  XOR-accumulation makes the
    digest independent of iteration order (and of dictionary-id assignment
    order, which differs between processes).  The O(n) scan is memoized per
    mutation generation *on the graph instance itself* — never keyed by
    ``id()``, whose values are recycled after garbage collection and could
    hand a dead graph's digest to a new one.
    """
    memo = getattr(graph, "_content_fingerprint", None)
    if memo is not None and memo[0] == graph.version:
        return memo[1]
    accumulator = 0
    for triple in graph:
        line = f"{triple.subject.n3()} {triple.predicate.n3()} {triple.object.n3()}"
        accumulator ^= int.from_bytes(
            hashlib.sha256(line.encode("utf-8")).digest()[:16], "big"
        )
    digest = f"{accumulator:032x}"
    graph._content_fingerprint = (graph.version, digest)
    return digest


# ---------------------------------------------------------------------------
# canonical query keys
# ---------------------------------------------------------------------------


def canonical_bgp_key(query: BGPQuery) -> str:
    """Canonical text of a BGP query: ordered head, sorted body atoms.

    Body order is semantically irrelevant, so atoms are sorted; variable
    names matter (they name answer columns) and are kept as-is.
    """
    head = ",".join(f"?{variable.name}" for variable in query.head)
    atoms = sorted(
        " ".join(
            f"?{term.name}" if isinstance(term, Variable) else term.n3()
            for term in pattern.as_tuple()
        )
        for pattern in query.body
    )
    return f"({head}):-{'&'.join(atoms)}"


def canonical_core_key(query: AnalyticalQuery) -> str:
    """The Σ-independent part of a query's canonical form.

    Two queries with equal core keys define the same cube modulo dimension
    restrictions — the planner scans cache entries by core key when looking
    for a weaker-Σ ancestor whose ``ans(Q)`` can be σ-selected.
    """
    return "|".join(
        (
            "c:" + canonical_bgp_key(query.classifier),
            "m:" + canonical_bgp_key(query.measure),
            "agg:" + query.aggregate.name,
        )
    )


def canonical_query_key(query: AnalyticalQuery) -> str:
    """The full canonical form: core key, rollup-stage tokens, Σ value tokens.

    Display names are deliberately excluded: the session names transformed
    queries after their navigation path (``Q_slice_dage_dice``...), but two
    paths reaching the same analytical query must share cached results.

    Rolled-up queries additionally key on their position in the hierarchy
    lattice: one token per :class:`~repro.analytics.query.RollStage`
    (dimension, hierarchy identity and the finer-level Σ), in stack order —
    two navigation paths reaching the same granularity share the key, while
    cubes at different levels (or rolled through different hierarchies)
    never collide.
    """
    key = canonical_core_key(query)
    for level, stage in enumerate(query.rollup):
        key += f"|roll[{level}]:{stage.canonical_token()}"
    sigma = ";".join(f"{name}->{token}" for name, token in query.sigma.canonical_tokens())
    return key + "|sigma:" + sigma


def _key_is_persistable(key: str) -> bool:
    """True when the canonical key identifies the query by *value* alone.

    Opaque predicate restrictions canonicalize by object identity
    (``pred@<id>``, see ``DimensionRestriction.canonical_token``), and so do
    hierarchies built from arbitrary ``classify`` functions (``hier@<id>``,
    see ``DimensionHierarchy.canonical_token``).  That is sound while the
    predicate/hierarchy object is alive in this process, but an ``id`` can
    be recycled after garbage collection or in another process, so such keys
    must never reach the disk store — a different object could collide with
    a dead one's key and be served the wrong cube.
    """
    return "pred@" not in key and "hier@" not in key


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


class CacheStats:
    """Hit / miss / eviction / invalidation / refresh accounting of one cache.

    ``refreshes`` counts stale entries successfully patched from graph
    deltas (see :meth:`ResultCache.refresh`); ``invalidations`` counts
    entries actually dropped because they could not (or should not) be
    patched.
    """

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "refreshes",
        "lazy_refreshes",
        "disk_hits",
        "puts",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.refreshes = 0
        #: Subset of ``refreshes`` that patched an entry the refresh
        #: scheduler had marked for lazy refresh-on-read.
        self.lazy_refreshes = 0
        self.disk_hits = 0
        self.puts = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"CacheStats({parts})"


#: Alias matching the ``ResultCache`` naming (both refer to the same class).
ResultCacheStats = CacheStats


class CacheEntry:
    """One cached materialized result with its validity stamp."""

    __slots__ = ("key", "core_key", "materialized", "graph_version", "origin", "hits")

    def __init__(
        self,
        key: str,
        core_key: str,
        materialized: MaterializedQueryResults,
        graph_version: int,
        origin: str = "memory",
    ):
        self.key = key
        self.core_key = core_key
        self.materialized = materialized
        self.graph_version = graph_version
        #: ``"memory"`` for entries computed this session, ``"disk"`` for
        #: entries served from the persistent store (warm start).
        self.origin = origin
        self.hits = 0

    @property
    def query(self) -> AnalyticalQuery:
        return self.materialized.query

    def size_rows(self) -> int:
        """Rows held by this entry (answer cells + partial rows)."""
        rows = 0
        if self.materialized.has_answer():
            rows += len(self.materialized.answer)
        if self.materialized.has_partial():
            rows += len(self.materialized.partial)
        return rows

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CacheEntry({self.query.name!r}, {self.size_rows()} rows, "
            f"v{self.graph_version}, {self.origin})"
        )


class ResultCache:
    """Bounded LRU store of materialized pres(Q)/ans(Q) results.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory entries; 0 disables in-memory caching
        entirely (lookups only consult the disk store, if any).
    store_dir:
        Optional directory for write-through persistence and warm starts.
        Entries land in per-key subdirectories named by a digest of the
        canonical key.

    Examples
    --------
    Sessions store every materialized result here; a repeated execution
    is a cache hit and never touches the instance:

    >>> from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
    >>> from repro.olap.session import OLAPSession
    >>> dataset = generic_dataset(GenericConfig(facts=25, dimensions=2, seed=5))
    >>> query = generic_query(dataset.config, aggregate="count")
    >>> session = OLAPSession(dataset.instance, dataset.schema)
    >>> _ = session.execute(query)            # miss: evaluated, then stored
    >>> _ = session.execute(query)            # hit: served from the cache
    >>> session.history[-1].strategy
    'cache'
    >>> len(session.cache) >= 1 and session.cache.stats.hits >= 1
    True
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, store_dir: Optional[str] = None):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._store_dir = store_dir
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._pinned: set = set()
        # Keys the refresh scheduler deferred: stale entries to be patched
        # on their next read instead of eagerly after the publishing batch.
        self._lazy: set = set()
        # Reentrant: refresh() re-enters stale_entry(), and the serving
        # layer's reader threads race get/put/pin against each other.
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- introspection -------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def store_dir(self) -> Optional[str]:
        return self._store_dir

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Tuple[str, ...]:
        """Canonical keys, least recently used first."""
        with self._lock:
            return tuple(self._entries)

    def entries(self) -> List[CacheEntry]:
        """The live entries, least recently used first (read-only use)."""
        with self._lock:
            return list(self._entries.values())

    def entries_with_core(self, query: AnalyticalQuery) -> Iterator[CacheEntry]:
        """Entries whose Σ-independent canonical form matches ``query``'s.

        These are the reuse candidates for SLICE/DICE-style answering: same
        classifier/measure/aggregate, possibly different Σ.  Iteration does
        not touch recency (the candidate list is snapshotted under the
        lock, so a concurrent insert cannot corrupt it).
        """
        core = canonical_core_key(query)
        with self._lock:
            candidates = list(self._entries.values())
        for entry in candidates:
            if entry.core_key == core:
                yield entry

    # -- lookup / insertion --------------------------------------------------

    def get(
        self, query: AnalyticalQuery, graph: Graph, require_partial: bool = False
    ) -> Optional[CacheEntry]:
        """The entry for ``query``'s canonical form, or None.

        A hit refreshes LRU recency.  An entry stamped with an older graph
        version is never served — a cache hit must not return a result
        computed against a graph that has since been mutated.  When the
        graph can still report the triple deltas since the stamp and the
        entry carries the partial result patching needs, the stale entry is
        *retained* (a miss, awaiting :meth:`refresh`); otherwise it is
        dropped and counted as an invalidation.  With
        ``require_partial=True`` an entry lacking ``pres(Q)`` counts as a
        miss and keeps its recency: the caller cannot use it, so it must
        neither inflate the hit statistics nor crowd out genuinely reusable
        entries.  On a miss the disk store, when configured, is consulted
        and a disk hit is promoted into memory.
        """
        key = canonical_query_key(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.graph_version != graph.version:
                if not self._refreshable(entry, graph):
                    del self._entries[key]
                    self._lazy.discard(key)
                    self.stats.invalidations += 1
                entry = None
            if entry is not None and require_partial and not entry.materialized.has_partial():
                # The persisted copy (same entry, written at put time) cannot
                # have a partial either, so the disk store is not consulted.
                self.stats.misses += 1
                return None
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            loaded = self._load_from_store(key, query, graph)
            if loaded is not None and require_partial and not loaded.materialized.has_partial():
                return None
            return loaded

    @staticmethod
    def _refreshable(entry: CacheEntry, graph: Graph) -> bool:
        """True when a stale entry is worth retaining for a later refresh."""
        if not entry.materialized.has_partial():
            return False
        return graph.deltas_since(entry.graph_version) is not None

    def peek(self, query: AnalyticalQuery, graph: Graph) -> Optional[CacheEntry]:
        """The *fresh* in-memory entry for ``query``, without side effects.

        No statistics, no recency, no disk lookup, no invalidation — used by
        callers deciding whether other work (e.g. refreshing an origin
        query) is worth doing before the accounted lookup happens.
        """
        with self._lock:
            entry = self._entries.get(canonical_query_key(query))
            if entry is None or entry.graph_version != graph.version:
                return None
            return entry

    def stale_entry(self, query: AnalyticalQuery, graph: Graph):
        """The retained stale entry for ``query`` plus its pending deltas.

        Returns ``(entry, delta)`` when the in-memory entry for ``query``'s
        canonical form is stamped with an older graph version, still holds
        its partial result, and the graph can produce the deltas since that
        stamp; None otherwise (entries that turn out unpatchable are dropped
        and counted as invalidations).  No statistics or recency updates —
        this is the planner's candidate-enumeration probe.
        """
        key = canonical_query_key(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.graph_version == graph.version:
                return None
            delta = (
                graph.deltas_since(entry.graph_version)
                if entry.materialized.has_partial()
                else None
            )
            if delta is None:
                del self._entries[key]
                self._lazy.discard(key)
                self.stats.invalidations += 1
                return None
            return entry, delta

    def refresh(self, query: AnalyticalQuery, graph: Graph, maintainer) -> Optional[CacheEntry]:
        """Patch the stale entry for ``query`` from graph deltas, in place.

        ``maintainer`` is a :class:`~repro.olap.maintenance.DeltaMaintainer`
        over the same graph.  On success the entry holds results equal to a
        from-scratch recompute at the graph's current version, is re-stamped
        and re-persisted (write-through), gains recency, and ``refreshes``
        is counted.  When the entry is missing, already fresh, or the patch
        is not possible, None is returned (an unpatchable entry is dropped
        as an invalidation) and the caller should fall back to recomputing.
        """
        with self._lock:
            found = self.stale_entry(query, graph)
            if found is None:
                return None
            entry, delta = found
            refreshed = maintainer.refresh(entry.materialized, delta)
            if refreshed is None:
                del self._entries[entry.key]
                self._lazy.discard(entry.key)
                self.stats.invalidations += 1
                return None
            entry.materialized = refreshed
            entry.graph_version = graph.version
            self.stats.refreshes += 1
            if entry.key in self._lazy:
                self._lazy.discard(entry.key)
                self.stats.lazy_refreshes += 1
            self._entries.move_to_end(entry.key)
            if self._store_dir is not None and _key_is_persistable(entry.key):
                from repro.persistence import save_cache_entry

                save_cache_entry(
                    refreshed, self._entry_dir(entry.key), entry.key, len(graph), graph_fingerprint(graph)
                )
            return entry

    def put(
        self,
        query: AnalyticalQuery,
        materialized: MaterializedQueryResults,
        graph: Graph,
        persist: bool = True,
        version: Optional[int] = None,
    ) -> CacheEntry:
        """Insert (or refresh) the entry for ``query``, evicting LRU overflow.

        The entry is stamped with ``version`` — the graph change counter the
        caller *observed when it materialized the result* — falling back to
        the graph's current counter when omitted.  Callers that evaluate and
        insert in two steps must pass the execute-time version: a mutation
        interleaved between materialization and insertion otherwise yields a
        fresh-stamped entry holding stale cells.  An entry stamped with an
        older version is inserted *born stale*: :meth:`get` will never serve
        it, but :meth:`refresh` can still patch it from the change log.

        With a disk store and ``persist=True`` the entry is also written
        through; a ``capacity`` of 0 keeps nothing in memory but still
        writes through, so a cacheless session can feed a later warm start.
        The persisted stamp is only written when the result is known fresh —
        a born-stale entry must not poison a later warm start with a
        fingerprint it never matched.
        """
        key = canonical_query_key(query)
        stamped = graph.version if version is None else int(version)
        entry = CacheEntry(key, canonical_core_key(query), materialized, stamped)
        with self._lock:
            self.stats.puts += 1
            # A new result supersedes any lazy mark left on the key: the
            # mark priced a *previous* entry's patch, not this one's.
            self._lazy.discard(key)
            if self._capacity > 0:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                self._evict_overflow()
            if (
                persist
                and stamped == graph.version
                and self._store_dir is not None
                and _key_is_persistable(key)
            ):
                from repro.persistence import save_cache_entry

                save_cache_entry(
                    materialized, self._entry_dir(key), key, len(graph), graph_fingerprint(graph)
                )
        return entry

    def discard(self, query: AnalyticalQuery) -> bool:
        """Drop the in-memory entry for ``query`` (disk copies are kept)."""
        key = canonical_query_key(query)
        with self._lock:
            self._pinned.discard(key)
            self._lazy.discard(key)
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pinned.clear()
            self._lazy.clear()

    # -- lazy refresh-on-read marks (refresh-scheduler support) ----------------

    def mark_lazy(self, query_or_key) -> bool:
        """Mark an entry for lazy refresh-on-read (scheduler decision).

        The refresh scheduler marks stale-but-patchable entries it chose
        *not* to refresh eagerly; the session's read path then patches a
        marked entry on its next access without re-pricing the decision.
        Accepts a query or canonical key; returns True when the mark was
        recorded.  Only a key with a live in-memory entry is marked — a
        mark is a decision *about an entry*, and an orphaned mark would
        ambush a future entry stored under the same key with a refresh
        that skipped the refresh-vs-scratch pricing.  Marks are dropped
        when the entry is refreshed, invalidated, evicted or re-``put``.
        """
        key = self._resolve_key(query_or_key)
        with self._lock:
            if key not in self._entries:
                return False
            self._lazy.add(key)
            return True

    def unmark_lazy(self, query_or_key) -> bool:
        """Remove a lazy mark; True when the key was marked."""
        key = self._resolve_key(query_or_key)
        with self._lock:
            if key in self._lazy:
                self._lazy.remove(key)
                return True
            return False

    def is_lazy(self, query_or_key) -> bool:
        with self._lock:
            return self._resolve_key(query_or_key) in self._lazy

    def lazy_keys(self) -> Tuple[str, ...]:
        """Canonical keys currently marked for lazy refresh-on-read."""
        with self._lock:
            return tuple(sorted(self._lazy))

    # -- pinning (advisor support) -------------------------------------------

    @staticmethod
    def _resolve_key(query_or_key) -> str:
        if isinstance(query_or_key, str):
            return query_or_key
        return canonical_query_key(query_or_key)

    def pin(self, query_or_key) -> bool:
        """Protect an entry from LRU eviction until :meth:`unpin`.

        Accepts an :class:`~repro.analytics.query.AnalyticalQuery` or a
        canonical key string.  Pins are keyed by canonical form, so they
        survive the entry being refreshed or re-``put`` (a fresher result
        for the same query stays pinned).  Pinning a key with no in-memory
        entry is allowed — the pin takes effect as soon as the entry is
        (re)inserted — and returns False.  A fully pinned cache may exceed
        ``capacity`` rather than drop pinned work.
        """
        key = self._resolve_key(query_or_key)
        with self._lock:
            self._pinned.add(key)
            return key in self._entries

    def unpin(self, query_or_key) -> bool:
        """Drop an entry's eviction protection; True when it was pinned."""
        key = self._resolve_key(query_or_key)
        with self._lock:
            if key in self._pinned:
                self._pinned.remove(key)
                return True
            return False

    def is_pinned(self, query_or_key) -> bool:
        with self._lock:
            return self._resolve_key(query_or_key) in self._pinned

    def pinned_keys(self) -> Tuple[str, ...]:
        """Canonical keys currently pinned (whether or not in memory)."""
        with self._lock:
            return tuple(sorted(self._pinned))

    def evict(self, query_or_key) -> bool:
        """Explicitly evict an entry (advisor early-eviction), unpinning it.

        Unlike LRU overflow this also removes the pin, and the drop is
        counted in ``stats.evictions``.  Disk copies are kept.
        """
        key = self._resolve_key(query_or_key)
        with self._lock:
            self._pinned.discard(key)
            self._lazy.discard(key)
            if self._entries.pop(key, None) is not None:
                self.stats.evictions += 1
                return True
            return False

    def _evict_overflow(self) -> None:
        """Evict least-recently-used *unpinned* entries down to capacity."""
        while len(self._entries) > self._capacity:
            victim = next(
                (key for key in self._entries if key not in self._pinned), None
            )
            if victim is None:
                # Every entry is pinned: exceeding capacity is the lesser
                # evil — the caller asked for all of them explicitly.
                break
            del self._entries[victim]
            self._lazy.discard(victim)
            self.stats.evictions += 1

    # -- disk store ----------------------------------------------------------

    def _entry_dir(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:20]
        return os.path.join(self._store_dir, digest)  # type: ignore[arg-type]

    def _load_from_store(
        self, key: str, query: AnalyticalQuery, graph: Graph
    ) -> Optional[CacheEntry]:
        if self._store_dir is None or not _key_is_persistable(key):
            return None
        directory = self._entry_dir(key)
        if not os.path.isdir(directory):
            return None
        from repro.persistence import load_cache_entry

        materialized = load_cache_entry(
            directory, query, key, len(graph), graph_fingerprint(graph)
        )
        if materialized is None:
            return None
        entry = CacheEntry(
            key, canonical_core_key(query), materialized, graph.version, origin="disk"
        )
        entry.hits += 1
        self.stats.disk_hits += 1
        if self._capacity > 0:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict_overflow()
        return entry

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ResultCache({len(self._entries)}/{self._capacity} entries, "
            f"{self.stats.hits} hits, {self.stats.misses} misses)"
        )
