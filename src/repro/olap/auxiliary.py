"""The auxiliary DRILL-IN query ``q_aux`` (Definition 6).

Answering ``Q_DRILL-IN`` from ``pres(Q)`` requires the values of the new
dimension ``d_{n+1}`` for each fact, information that ``pres(Q)`` does not
carry.  Algorithm 2 obtains it by evaluating, against the AnS instance, a
small *auxiliary query* built from the classifier:

* start with the classifier triples mentioning ``d_{n+1}``;
* repeatedly add classifier triples sharing a **non-distinguished**
  (existential) variable with a triple already selected — distinguished
  variables do not propagate, because their values are already present in
  ``pres(Q)`` and will be used as join columns;
* the distinguished variables of ``q_aux`` are the classifier-distinguished
  variables occurring in the selected triples, plus ``d_{n+1}``.

The returned query is joined with ``pres(Q)`` on exactly those
classifier-distinguished variables (``dvars``).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple, Union

from repro.errors import InvalidOperationError
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery
from repro.analytics.query import AnalyticalQuery

__all__ = ["build_auxiliary_query", "auxiliary_join_columns"]


def build_auxiliary_query(
    classifier: BGPQuery,
    new_dimensions: Union[str, Variable, Sequence[Union[str, Variable]]],
    name: str = "q_aux",
) -> BGPQuery:
    """Build ``q_aux(dvars, d_{n+1}, ...)`` for one or more new dimensions.

    The paper defines the construction for a single dimension; for several
    new dimensions the natural generalization is used: the seed set contains
    the triples mentioning any of them, and every new dimension is appended
    to the head.

    Raises
    ------
    InvalidOperationError
        When a requested dimension is not a non-distinguished variable of
        the classifier body.
    """
    if isinstance(new_dimensions, (str, Variable)):
        new_dimensions = [new_dimensions]
    new_variables = [
        dimension if isinstance(dimension, Variable) else Variable(dimension)
        for dimension in new_dimensions
    ]
    if not new_variables:
        raise InvalidOperationError("at least one new dimension is required to build q_aux")

    distinguished: Set[Variable] = set(classifier.head)
    body_variables = classifier.variables()
    for variable in new_variables:
        if variable in distinguished:
            raise InvalidOperationError(
                f"?{variable.name} is already distinguished in the classifier; "
                "drill-in requires a non-distinguished variable"
            )
        if variable not in body_variables:
            raise InvalidOperationError(
                f"?{variable.name} does not occur in the classifier body"
            )

    # Seed: triples containing any of the new dimensions.
    body: List[TriplePattern] = []
    selected: Set[TriplePattern] = set()
    for pattern in classifier.body:
        if pattern.variables() & set(new_variables):
            body.append(pattern)
            selected.add(pattern)

    # Closure through shared *non-distinguished* variables of the classifier.
    existential = classifier.existential_variables()
    changed = True
    while changed:
        changed = False
        reachable_existentials: Set[Variable] = set()
        for pattern in selected:
            reachable_existentials |= pattern.variables() & existential
        for pattern in classifier.body:
            if pattern in selected:
                continue
            if pattern.variables() & reachable_existentials:
                body.append(pattern)
                selected.add(pattern)
                changed = True

    # Head: classifier-distinguished variables occurring in the selected
    # triples, in classifier-head order, followed by the new dimensions.
    selected_variables: Set[Variable] = set()
    for pattern in selected:
        selected_variables |= pattern.variables()
    head: List[Variable] = [
        variable for variable in classifier.head if variable in selected_variables
    ]
    head.extend(new_variables)
    return BGPQuery(head, body, name=name)


def auxiliary_join_columns(classifier: BGPQuery, auxiliary: BGPQuery) -> Tuple[str, ...]:
    """The ``dvars`` on which ``pres(Q)`` and ``q_aux`` are joined.

    These are the classifier-distinguished variables that made it into the
    auxiliary query head (everything in the head except the new dimensions,
    i.e. except the variables that are not distinguished in the classifier).
    """
    distinguished = set(classifier.head)
    return tuple(variable.name for variable in auxiliary.head if variable in distinguished)
