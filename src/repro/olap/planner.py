"""Cost-based planning of OLAP-operation answering strategies.

The paper's contribution is that a transformed query ``Q_T = T(Q)`` *can* be
answered from materialized results of ``Q``; whether it *should* be depends
on what is cached and how big everything is.  :class:`OLAPPlanner` makes
that choice per operation: it enumerates every candidate answering strategy,
prices each with a row-count cost model, and executes the cheapest.

Candidate strategies, in the order they are enumerated:

``cached``
    The transformed query's own canonical form is already in the result
    cache (a repeated operation, or a warm start from disk): return the
    stored answer.

``rewrite[...]``
    One of the paper's rewritings applied to the materialized results of
    the *origin* query — Proposition 1 (SLICE/DICE over ``ans(Q)``),
    Algorithm 1 (DRILL-OUT from ``pres(Q)``), Algorithm 2 (DRILL-IN from
    ``pres(Q)`` + auxiliary query).  The applicable rewritings are reported
    by :meth:`repro.olap.rewriting.OLAPRewriter.options`.

``compat[...]``
    A cached entry for a *different* query with the same classifier,
    measure and aggregate whose Σ is pointwise weaker than ``Q_T``'s: then
    ``ans(Q_T) = σ_Σ'(ans(Q_C))`` (Proposition 1 applied dimension-wise).
    This is how a DICE of a SLICE reuses the SLICE's materialized results
    even when the origin query handed to the session is the root query.

``refresh-cached``
    The transformed query's canonical form is cached but **stale** (the
    instance was mutated since), and the graph's change log still covers
    the gap: patch the entry's ``pres(Q)``/``ans(Q)`` from the triple
    deltas (:class:`~repro.olap.maintenance.DeltaMaintainer`) instead of
    recomputing.  Priced by delta size plus the cached input sizes, so the
    planner — not a heuristic flag — decides when patching beats rewriting
    or starting from scratch.

``parallel``
    Re-evaluate ``Q_T`` shard-parallel on the AnS instance
    (:class:`~repro.olap.parallel.ParallelExecutor`): per-shard evaluation
    plus a partial-aggregate merge, priced as the scratch estimate divided
    by the usable worker lanes plus merge and dispatch overheads.  Only
    enumerated when the session was built with ``workers > 1`` and the
    aggregate has a mergeable partial form.

``scratch``
    Re-evaluate ``Q_T`` on the AnS instance with the id-space engine,
    priced with :class:`~repro.rdf.statistics.GraphStatistics` estimates.

Cost model
----------
All costs are in "rows touched".  Reuse candidates count the rows of the
materialized inputs they read (with per-row weights reflecting selection vs.
group-by vs. join work) plus their estimated output rows (reported by
:class:`~repro.olap.rewriting.RewriteOption`); the from-scratch candidate
sums per-triple-pattern match estimates plus the estimated BGP output
cardinalities — the same statistics the BGP evaluator's join optimizer uses.  Cache hits pay a small
per-cell touch cost.  The model only needs to *rank* strategies, and its
inputs (cache entry sizes, graph statistics) are all O(1) to read, so
planning overhead stays negligible next to evaluation.

Every constant lives in a :class:`~repro.olap.calibration.CostModel`; the
defaults are the hand-set values, and
:func:`~repro.olap.calibration.fit_cost_model` refits them from the
observed runtimes a session records — see :mod:`repro.olap.calibration`
and :mod:`repro.olap.advisor`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.algebra.operators import select
from repro.analytics.answer import CubeAnswer, MaterializedQueryResults, PartialResult
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.olap.auxiliary import build_auxiliary_query
from repro.olap.cache import CacheEntry, ResultCache, canonical_query_key
from repro.olap.calibration import CostModel
from repro.olap.maintenance import DeltaMaintainer, estimate_scratch_cost
from repro.olap.operations import OLAPOperation
from repro.olap.parallel import ParallelExecutor, estimate_parallel_cost
from repro.analytics.rolling import roll_partial
from repro.olap.rewriting import (
    OLAPRewriter,
    answer_from_rolled_partial,
    slice_dice_from_answer,
    transform_partial,
)
from repro.rdf.graph import GraphDelta

__all__ = ["PlanCandidate", "Plan", "OLAPPlanner"]

# The hand-set constants now live as the defaults of
# :class:`repro.olap.calibration.CostModel`; the module-level aliases are
# kept for backwards compatibility and for tests that pin the static values.
_STATIC_MODEL = CostModel()

#: Per-row weight of a σ-selection over a materialized answer or partial.
SELECT_ROW_COST = _STATIC_MODEL.select_row_cost
#: Per-row weight of project + dedup + group-aggregate (Algorithm 1).
GROUP_ROW_COST = _STATIC_MODEL.group_row_cost
#: Per-row weight of the pres(Q) side of the auxiliary join (Algorithm 2).
JOIN_ROW_COST = _STATIC_MODEL.join_row_cost
#: Per-cell weight of returning an already-computed cached answer.
CACHED_CELL_COST = _STATIC_MODEL.cached_cell_cost
#: Flat base cost of any strategy (lookup / bookkeeping), keeps costs > 0.
BASE_COST = _STATIC_MODEL.base_cost


class PlanCandidate:
    """One costed way of answering the transformed query."""

    __slots__ = ("strategy", "cost", "input_rows", "detail", "_execute")

    def __init__(
        self,
        strategy: str,
        cost: float,
        input_rows: int,
        detail: str,
        execute: Callable[[], Tuple[CubeAnswer, Optional[PartialResult]]],
    ):
        self.strategy = strategy
        self.cost = cost
        self.input_rows = input_rows
        self.detail = detail
        self._execute = execute

    def execute(self) -> Tuple[CubeAnswer, Optional[PartialResult]]:
        return self._execute()

    def __repr__(self) -> str:  # pragma: no cover
        return f"PlanCandidate({self.strategy}, cost~{self.cost:.1f})"


class Plan:
    """The costed candidates for one operation, cheapest first."""

    def __init__(
        self,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
        candidates: List[PlanCandidate],
    ):
        if not candidates:
            raise ValueError("a plan needs at least one candidate (scratch is always available)")
        self.operation = operation
        self.transformed_query = transformed_query
        # The strategy name breaks cost ties: explain() output and golden
        # comparisons must not depend on candidate enumeration order.
        self.candidates = sorted(
            candidates, key=lambda candidate: (candidate.cost, candidate.strategy)
        )

    @property
    def chosen(self) -> PlanCandidate:
        return self.candidates[0]

    def execute(self) -> Tuple[CubeAnswer, Optional[PartialResult]]:
        return self.chosen.execute()

    def explain(self) -> str:
        """Human-readable plan, one line per candidate, chosen first."""
        lines = [
            f"plan: {self.operation.describe()} -> {self.transformed_query.name}"
        ]
        for index, candidate in enumerate(self.candidates):
            marker = "->" if index == 0 else "  "
            lines.append(
                f"  {marker} {candidate.strategy:<28} cost~{candidate.cost:>10.1f}  ({candidate.detail})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Plan({self.operation.describe()}, chosen={self.chosen.strategy})"


class OLAPPlanner:
    """Chooses and runs the cheapest answering strategy per OLAP operation.

    Parameters
    ----------
    evaluator:
        The from-scratch analytical evaluator over the AnS instance (also
        supplies the graph statistics used to price the scratch candidate).
    cache:
        The session's bounded result cache (canonical-form keyed).
    rewriter:
        Optional pre-built :class:`~repro.olap.rewriting.OLAPRewriter`; one
        is constructed over the evaluator's BGP evaluator otherwise.
    maintainer:
        Optional :class:`~repro.olap.maintenance.DeltaMaintainer` pricing
        and executing the ``refresh-cached`` candidate.
    parallel:
        Optional :class:`~repro.olap.parallel.ParallelExecutor`; when
        present (session built with ``workers > 1``) a ``parallel``
        candidate is enumerated for mergeable aggregates.
    cost_model:
        Optional :class:`~repro.olap.calibration.CostModel` supplying
        every pricing constant.  Defaults to the static hand-set model; a
        model fitted from observed runtimes
        (:func:`~repro.olap.calibration.fit_cost_model`) recalibrates the
        *relative* strategy weights without changing any answer.

    Examples
    --------
    Plans are inspectable: every candidate carries its strategy, its
    estimated cost in rows touched, and a human-readable detail line.

    >>> from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
    >>> from repro.olap.operations import Slice
    >>> from repro.olap.session import OLAPSession
    >>> dataset = generic_dataset(GenericConfig(facts=30, dimensions=2, seed=7))
    >>> query = generic_query(dataset.config, aggregate="count")
    >>> session = OLAPSession(dataset.instance, dataset.schema)
    >>> cube = session.execute(query)
    >>> value = sorted(cube.dimension_values("d0"), key=repr)[0]
    >>> operation = Slice("d0", value)
    >>> plan = session.planner.plan(query, operation, operation.apply(query),
    ...                             session.materialized(query))
    >>> len(plan.candidates) >= 2          # at least a reuse option + scratch
    True
    >>> plan.chosen is plan.candidates[0]  # cheapest first
    True
    >>> plan.chosen.strategy in ("rewrite[slice-dice/ans]", "scratch")
    True
    """

    def __init__(
        self,
        evaluator: AnalyticalQueryEvaluator,
        cache: ResultCache,
        rewriter: Optional[OLAPRewriter] = None,
        maintainer: Optional[DeltaMaintainer] = None,
        parallel: Optional[ParallelExecutor] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self._evaluator = evaluator
        self._cache = cache
        self._rewriter = rewriter or OLAPRewriter(evaluator.bgp_evaluator)
        self._statistics = evaluator.bgp_evaluator.statistics
        self._model = cost_model or CostModel()
        self._maintainer = maintainer or DeltaMaintainer(
            evaluator, cost_model=self._model
        )
        self._parallel = parallel
        # Per-engine rows-touched multiplier: a row touched by the columnar
        # engine's vectorized kernels is cheaper than one touched by the
        # interpreted row loop, so instance-evaluating candidates (scratch,
        # parallel) are priced down accordingly while the row-level reuse
        # candidates (rewrite, refresh, compat) keep weight 1.
        self._engine_multiplier = self._model.engine_multiplier(
            getattr(evaluator, "engine", "rows")
        )

    @property
    def cost_model(self) -> CostModel:
        """The pricing constants every candidate is costed with."""
        return self._model

    @property
    def maintainer(self) -> DeltaMaintainer:
        """The delta maintainer pricing and executing refresh candidates."""
        return self._maintainer

    @property
    def parallel(self) -> Optional[ParallelExecutor]:
        """The shard-parallel executor, or None for a single-worker session."""
        return self._parallel

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(
        self,
        original_query: AnalyticalQuery,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
        origin_materialized: Optional[MaterializedQueryResults] = None,
        materialize_partial: bool = True,
    ) -> Plan:
        """Enumerate and cost every candidate strategy for ``T(Q)``.

        ``origin_materialized`` carries the materialized results of the
        origin query when the session still holds them; the cache supplies
        the transformed query's own entry and compatible weaker-Σ entries.
        The scratch candidate is always present, so a plan always exists.
        """
        graph = self._evaluator.instance
        candidates: List[PlanCandidate] = []

        exact = self._cache.get(transformed_query, graph)
        if exact is not None and exact.materialized.has_answer():
            candidates.append(self._cached_candidate(exact.materialized))
        else:
            stale = self._cache.stale_entry(transformed_query, graph)
            if stale is not None:
                candidates.append(
                    self._refresh_candidate(
                        transformed_query, stale[0], stale[1], materialize_partial
                    )
                )

        if origin_materialized is not None:
            candidates.extend(
                self._rewrite_candidates(
                    origin_materialized, operation, transformed_query, materialize_partial
                )
            )

        candidates.extend(
            self._compatible_candidates(transformed_query, original_query, materialize_partial)
        )

        rollup_candidates = self._rollup_candidates(
            transformed_query, original_query, materialize_partial
        )
        candidates.extend(rollup_candidates)

        if self._parallel is not None and self._parallel.supports(transformed_query):
            candidates.append(self._parallel_candidate(transformed_query, materialize_partial))

        # Cached lattice entries reveal the *actual* pres(Q) row count the
        # scratch evaluation would have to roll (rolling preserves rows);
        # pricing scratch's rolling pass with the statistics estimate while
        # the reuse candidates carry actual counts would skew the comparison.
        pres_rows_hint: Optional[int] = None
        if transformed_query.rollup:
            observed = [candidate.input_rows for candidate in rollup_candidates]
            if origin_materialized is not None and origin_materialized.has_partial():
                observed.append(len(origin_materialized.partial))
            if observed:
                pres_rows_hint = max(observed)

        candidates.append(
            self._scratch_candidate(transformed_query, materialize_partial, pres_rows_hint)
        )
        return Plan(operation, transformed_query, candidates)

    # ------------------------------------------------------------------
    # candidate builders
    # ------------------------------------------------------------------

    def _cached_candidate(self, materialized: MaterializedQueryResults) -> PlanCandidate:
        cells = len(materialized.answer)

        def run() -> Tuple[CubeAnswer, Optional[PartialResult]]:
            partial = materialized.partial if materialized.has_partial() else None
            return materialized.answer, partial

        return PlanCandidate(
            "cached",
            self._model.base_cost + cells * self._model.cached_cell_cost,
            cells,
            f"ans already cached: {cells} cells",
            run,
        )

    def _refresh_candidate(
        self,
        transformed_query: AnalyticalQuery,
        entry: CacheEntry,
        delta: GraphDelta,
        materialize_partial: bool,
    ) -> PlanCandidate:
        cost = self._model.base_cost + self._maintainer.estimate_refresh_cost(
            entry.materialized, delta
        )
        pres_rows = len(entry.materialized.partial)

        def run() -> Tuple[CubeAnswer, Optional[PartialResult]]:
            refreshed = self._cache.refresh(
                transformed_query, self._evaluator.instance, self._maintainer
            )
            if refreshed is not None:
                materialized = refreshed.materialized
                partial = materialized.partial if materialized.has_partial() else None
                return materialized.answer, partial
            # The entry turned out unpatchable (e.g. the change log rolled
            # over between planning and execution): recompute instead, and
            # store the result — the session skips re-storing for this
            # strategy because the cache normally already holds it.
            materialized = self._evaluator.evaluate(
                transformed_query, materialize_partial=materialize_partial
            )
            self._cache.put(transformed_query, materialized, self._evaluator.instance)
            return materialized.answer, materialized.partial if materialize_partial else None

        return PlanCandidate(
            "refresh-cached",
            cost,
            pres_rows,
            f"patch stale pres/ans ({pres_rows} rows) from {len(delta)} triple deltas",
            run,
        )

    def _rewrite_candidates(
        self,
        materialized: MaterializedQueryResults,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
        materialize_partial: bool,
    ) -> List[PlanCandidate]:
        candidates = []
        for option in self._rewriter.options(materialized, operation, transformed_query):
            # Every rewriting reads its materialized input and writes its
            # estimated output (mirroring the scratch candidate, whose
            # estimate also includes the output cardinality).
            cost = self._model.base_cost + option.estimated_output_rows
            if option.input_kind == "answer":
                cost += option.input_rows * self._model.select_row_cost
            elif option.needs_instance:
                # The auxiliary query evaluates on the instance through the
                # same engine as scratch, so it gets the same multiplier;
                # the join over pres(Q) stays row-level work.
                cost += option.input_rows * self._model.join_row_cost + (
                    self._engine_multiplier
                    * self._auxiliary_cost(materialized.query, transformed_query)
                )
            else:
                cost += option.input_rows * self._model.group_row_cost

            def run(op=operation, mat=materialized, tq=transformed_query):
                result = self._rewriter.answer(
                    mat, op, tq, materialize_partial=materialize_partial
                )
                return result.answer, result.partial

            candidates.append(
                PlanCandidate(
                    f"rewrite[{option.strategy}]",
                    cost,
                    option.input_rows,
                    f"{option.input_kind}({materialized.query.name}): {option.input_rows} rows",
                    run,
                )
            )
        return candidates

    def _compatible_candidates(
        self,
        transformed_query: AnalyticalQuery,
        original_query: AnalyticalQuery,
        materialize_partial: bool,
    ) -> List[PlanCandidate]:
        graph = self._evaluator.instance
        target_key = canonical_query_key(transformed_query)
        origin_key = canonical_query_key(original_query)
        candidates = []
        for entry in self._cache.entries_with_core(transformed_query):
            if entry.key in (target_key, origin_key):
                continue  # exact hits and the origin are covered elsewhere
            if entry.graph_version != graph.version:
                continue
            if not entry.materialized.has_answer():
                continue
            if tuple(entry.query.rollup) != tuple(transformed_query.rollup):
                # Entries share the core key across lattice levels; σ-selecting
                # an answer at a different granularity would be wrong.
                continue
            if not entry.query.sigma.subsumes(transformed_query.sigma):
                continue
            rows = len(entry.materialized.answer)

            def run(mat=entry.materialized, tq=transformed_query):
                answer = slice_dice_from_answer(mat.answer, tq)
                partial = None
                if materialize_partial and mat.has_partial():
                    source = mat.partial
                    partial = PartialResult(
                        select(source.storage, tq.sigma.predicate()),
                        fact_column=source.fact_column,
                        dimension_columns=source.dimension_columns,
                        key_column=source.key_column,
                        measure_column=source.measure_column,
                    )
                return answer, partial

            candidates.append(
                PlanCandidate(
                    "compat[slice-dice/ans]",
                    self._model.base_cost + rows * self._model.select_row_cost,
                    rows,
                    f"ans({entry.query.name}) with weaker sigma: {rows} rows",
                    run,
                )
            )
        return candidates

    def _rollup_candidates(
        self,
        transformed_query: AnalyticalQuery,
        original_query: AnalyticalQuery,
        materialize_partial: bool,
    ) -> List[PlanCandidate]:
        """Answer a rolled-up cube from any cached finer-grained cube.

        A cached entry qualifies when it sits *below* the target in the
        hierarchy lattice: its rollup stack is a prefix of the target's
        (stage-for-stage, by canonical token) and its Σ subsumes the Σ the
        target records at the junction level — then σ-selecting the entry's
        ``pres`` down to the junction Σ and rolling it through the remaining
        stages yields exactly ``pres(Q_T)`` (Σ-subsumption machinery of the
        ``compat`` candidates, lifted to lattice levels).  The cached base
        query itself is the ``level 0`` case.
        """
        if not transformed_query.rollup:
            return []
        graph = self._evaluator.instance
        target_key = canonical_query_key(transformed_query)
        origin_key = canonical_query_key(original_query)
        stages = transformed_query.rollup
        candidates = []
        for entry in self._cache.entries_with_core(transformed_query):
            if entry.key in (target_key, origin_key):
                continue  # exact hits and the origin are covered elsewhere
            if entry.graph_version != graph.version:
                continue
            if not entry.materialized.has_partial():
                continue
            source = entry.query
            level = len(source.rollup)
            if level >= len(stages):
                continue
            if tuple(source.rollup) != tuple(stages[:level]):
                continue
            junction_sigma = stages[level].sigma_before
            if not source.sigma.subsumes(junction_sigma):
                continue
            rows = len(entry.materialized.partial)
            remaining = len(stages) - level
            cost = self._model.base_cost + rows * self._model.group_row_cost * remaining

            def run(mat=entry.materialized, lvl=level):
                partial = roll_partial(mat.partial, transformed_query, start=lvl)
                answer = answer_from_rolled_partial(partial, transformed_query)
                return answer, (partial if materialize_partial else None)

            candidates.append(
                PlanCandidate(
                    "rollup-from-cached",
                    cost,
                    rows,
                    f"pres({entry.query.name}) at lattice level {level}: "
                    f"{rows} rows through {remaining} stage(s)",
                    run,
                )
            )
        return candidates

    def _parallel_candidate(
        self, transformed_query: AnalyticalQuery, materialize_partial: bool
    ) -> PlanCandidate:
        executor = self._parallel
        cost = self._model.base_cost + self._engine_multiplier * estimate_parallel_cost(
            self._statistics,
            transformed_query,
            executor.workers,
            executor.shard_count,
            dispatch_cost=self._model.dispatch_cost(self._evaluator.instance),
            merge_cell_cost=self._model.merge_cell_cost,
        )
        instance_triples = len(self._evaluator.instance)

        def run() -> Tuple[CubeAnswer, Optional[PartialResult]]:
            materialized = executor.evaluate(
                transformed_query, materialize_partial=materialize_partial
            )
            return materialized.answer, materialized.partial if materialize_partial else None

        detail = (
            f"{executor.shard_count} shards on {executor.workers} workers "
            f"({executor.backend} backend, {executor.attach_mode} attach)"
        )
        stats = executor.stats
        if stats.fallbacks or stats.process_failures:
            detail += f"; dispatched {stats.summary()}"
        return PlanCandidate(
            "parallel",
            cost,
            instance_triples,
            detail,
            run,
        )

    def _scratch_candidate(
        self,
        transformed_query: AnalyticalQuery,
        materialize_partial: bool,
        pres_rows_hint: Optional[int] = None,
    ) -> PlanCandidate:
        cost = self._model.base_cost + self._estimate_scratch_cost(
            transformed_query, pres_rows_hint
        )
        instance_triples = len(self._evaluator.instance)

        def run() -> Tuple[CubeAnswer, Optional[PartialResult]]:
            materialized = self._evaluator.evaluate(
                transformed_query, materialize_partial=materialize_partial
            )
            return materialized.answer, materialized.partial if materialize_partial else None

        # Entailment-aware sessions evaluate scratch over the saturated graph
        # or through query rewriting; the plan names which, so explain()
        # shows what "from scratch" actually means in this session.
        mode = getattr(self._evaluator, "entailment", None)
        return PlanCandidate(
            "scratch" if mode is None else f"scratch[{mode}]",
            cost,
            instance_triples,
            f"instance: {instance_triples} triples, est. {cost:.0f} rows touched",
            run,
        )

    # ------------------------------------------------------------------
    # cost estimation helpers
    # ------------------------------------------------------------------

    def _estimate_scratch_cost(
        self, query: AnalyticalQuery, pres_rows_hint: Optional[int] = None
    ) -> float:
        """Estimated rows touched by a from-scratch evaluation of ``query``.

        Shared with the refresh-vs-recompute decision (see
        :func:`repro.olap.maintenance.estimate_scratch_cost`) so every
        strategy is priced in the same unit, then scaled by the per-engine
        multiplier (the columnar engine touches rows vectorized).

        Under ``entailment="rewrite"`` every BGP expands into its entailment
        branches, so scratch pays the branch fan-out; under ``"saturate"``
        the statistics already describe the (bigger) saturated graph and no
        extra factor applies.

        A rolled query pays the base-query evaluation *plus* the rolling
        pass: every pres row goes through every hierarchy stage at the same
        ``group_row_cost`` the ``rollup-from-cached`` candidate is priced
        at — otherwise scratch would look artificially cheap exactly where
        the lattice has a cached shortcut.  Rolling is row-level work
        regardless of engine, so it lands outside the engine multiplier.
        """
        cost = self._engine_multiplier * estimate_scratch_cost(self._statistics, query)
        branch_count = getattr(self._evaluator, "branch_count", None)
        if branch_count is not None:
            try:
                factor = max(branch_count(query.classifier), branch_count(query.measure))
            except Exception:
                factor = 1
            cost *= max(1, factor)
        if query.rollup:
            if pres_rows_hint is not None:
                pres_rows = float(pres_rows_hint)
            else:
                # Same pres-rows proxy as the join term of estimate_scratch_cost.
                pres_rows = self._statistics.estimate_bgp_cardinality(
                    query.classifier
                ) + self._statistics.estimate_bgp_cardinality(query.measure)
            cost += pres_rows * self._model.group_row_cost * len(query.rollup)
        return cost

    def _auxiliary_cost(
        self, original_query: AnalyticalQuery, transformed_query: AnalyticalQuery
    ) -> float:
        """Estimated cost of DRILL-IN's auxiliary query over the instance."""
        original_dimensions = set(original_query.dimension_names)
        new_dimensions = [
            name
            for name in transformed_query.dimension_names
            if name not in original_dimensions
        ]
        if not new_dimensions:
            return 0.0
        try:
            auxiliary = build_auxiliary_query(original_query.classifier, new_dimensions)
        except Exception:  # not applicable — the rewrite will fail anyway
            return float("inf")
        return self._statistics.estimate_evaluation_cost(auxiliary)
