"""View-based rewriting of OLAP operations (the paper's core contribution).

Given a query ``Q`` whose results have been materialized (its answer
``ans(Q)`` and/or its partial result ``pres(Q)``), and an OLAP
transformation ``T`` with ``Q_T = T(Q)``, this module computes
``ans(Q_T)`` *without re-evaluating the classifier and measure over the AnS
instance* — except for the small auxiliary query needed by DRILL-IN.

Implemented algorithms:

* :func:`slice_dice_from_answer` — Proposition 1: σ_dice over ``ans(Q)``;
* :func:`drill_out_from_partial` — Algorithm 1: project ``pres(Q)``,
  deduplicate (δ), re-aggregate (γ);
* :func:`drill_in_from_partial` — Algorithm 2: join ``pres(Q)`` with the
  auxiliary query's answer over the instance, then aggregate;
* :func:`drill_out_from_answer_naive` — the *incorrect* relational-style
  re-aggregation of ``ans(Q)`` discussed in Example 5, kept for the
  benchmark that demonstrates why ``pres(Q)`` is needed.

:class:`OLAPRewriter` packages these together with strategy selection.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import InvalidOperationError, MaterializationError, RewritingError
from repro.algebra.grouping import group_aggregate
from repro.algebra.operators import dedup, join_on, project, select
from repro.algebra.relation import IdRelation, Relation
from repro.bgp.evaluator import BGPEvaluator
from repro.analytics.answer import CubeAnswer, MaterializedQueryResults, PartialResult
from repro.analytics.query import AnalyticalQuery
from repro.analytics.rolling import roll_partial
from repro.olap.auxiliary import auxiliary_join_columns, build_auxiliary_query
from repro.olap.operations import Dice, DrillDown, DrillIn, DrillOut, OLAPOperation, RollUp, Slice

__all__ = [
    "slice_dice_from_answer",
    "drill_out_from_partial",
    "drill_in_from_partial",
    "drill_out_from_answer_naive",
    "answer_from_rolled_partial",
    "transform_partial",
    "OLAPRewriter",
    "RewriteOption",
    "RewritingResult",
]


# ---------------------------------------------------------------------------
# Proposition 1: SLICE / DICE by selection over ans(Q)
# ---------------------------------------------------------------------------


def slice_dice_from_answer(answer: CubeAnswer, transformed_query: AnalyticalQuery) -> CubeAnswer:
    """σ_dice(ans(Q)) = ans(Q_DICE) (Definition 5 / Proposition 1).

    ``transformed_query`` carries the Σ′ of the SLICE/DICE; the selection
    keeps the answer rows whose dimension values all belong to their Σ′
    sets.  It runs on the answer's native value space — on an encoded
    ``ans(Q)`` the Σ tests operate on term ids without decoding.
    """
    sigma = transformed_query.sigma
    selected = select(answer.storage, sigma.predicate())
    return CubeAnswer(selected, answer.dimension_columns, answer.measure_column)


# ---------------------------------------------------------------------------
# Algorithm 1: DRILL-OUT from pres(Q)
# ---------------------------------------------------------------------------


def drill_out_from_partial(
    partial: PartialResult,
    query: AnalyticalQuery,
    transformed_query: AnalyticalQuery,
) -> CubeAnswer:
    """Algorithm 1: answer ``Q_DRILL-OUT`` from ``pres(Q)``.

    Steps (lines of Algorithm 1):

    2. ``T ← Π_{root, d₁..d_{i-1}, d_{i+1}..dₙ, k, v}(pres(Q))``
    3. ``T ← δ(T)`` — the deduplication is what prevents facts that are
       multi-valued along the removed dimension(s) from being counted
       several times;
    4. ``T ← γ_{remaining dims, ⊕(v)}(T)``.

    Applicability: the removed dimensions must be **unrestricted** in Q's Σ.
    DRILL-OUT drops the removed dimension's Σ entry from the transformed
    query, so ``ans(Q_T)`` re-admits facts the restriction excluded — facts
    that ``pres(Q)`` (computed under Σ) no longer contains.  Rewriting from
    this pres would silently produce the *navigation-filtered* cube instead
    of ``ans(Q_T)``, so it refuses.
    """
    remaining = transformed_query.dimension_names
    unknown = [name for name in remaining if name not in partial.dimension_columns]
    if unknown:
        raise RewritingError(
            f"the materialized pres({query.name}) does not contain dimensions {unknown}"
        )
    _require_removed_dimensions_unrestricted(query, transformed_query)
    kept_columns = (
        partial.fact_column,
        *remaining,
        partial.key_column,
        partial.measure_column,
    )
    table = project(partial.storage, kept_columns)
    table = dedup(table)
    aggregated = group_aggregate(
        table,
        by=remaining,
        measure=partial.measure_column,
        function=transformed_query.aggregate,
        output_column=partial.measure_column,
    )
    return CubeAnswer(aggregated, tuple(remaining), partial.measure_column)


def _require_removed_dimensions_unrestricted(
    query: AnalyticalQuery, transformed_query: AnalyticalQuery
) -> None:
    """Refuse pres(Q)-based DRILL-OUT when a removed dimension carried a Σ restriction."""
    remaining = set(transformed_query.dimension_names)
    restricted = [
        name
        for name in query.sigma.restricted_dimensions()
        if name not in remaining
    ]
    if restricted:
        raise RewritingError(
            f"DRILL-OUT removes dimensions {restricted} whose Σ restricts the values; "
            f"pres({query.name}) lacks the facts the restriction excluded, so the "
            f"transformed query must be evaluated from scratch"
        )


# ---------------------------------------------------------------------------
# Algorithm 2: DRILL-IN from pres(Q) + the instance
# ---------------------------------------------------------------------------


def drill_in_from_partial(
    partial: PartialResult,
    query: AnalyticalQuery,
    transformed_query: AnalyticalQuery,
    instance_evaluator: BGPEvaluator,
) -> CubeAnswer:
    """Algorithm 2: answer ``Q_DRILL-IN`` from ``pres(Q)`` and the instance.

    Steps (lines of Algorithm 2):

    2. build the auxiliary query ``q_aux(dvars, d_{n+1})`` (Definition 6);
    3. ``T ← pres(Q) ⋈_{dvars} q_aux(I)`` — the instance is consulted only
       through ``q_aux``, which touches a small part of it;
    4. ``T ← γ_{d₁..dₙ, d_{n+1}, ⊕(v)}(T)``.
    """
    original_dimensions = set(query.dimension_names)
    new_dimensions = [
        name for name in transformed_query.dimension_names if name not in original_dimensions
    ]
    if not new_dimensions:
        raise RewritingError(
            "the transformed query adds no new dimension; nothing to drill in"
        )
    auxiliary = build_auxiliary_query(query.classifier, new_dimensions)
    join_columns = auxiliary_join_columns(query.classifier, auxiliary)
    auxiliary_answer = _auxiliary_answer(partial, instance_evaluator, auxiliary)

    joined = join_on(
        partial.storage,
        auxiliary_answer,
        [(column, column) for column in join_columns],
    )
    output_dimensions = tuple(transformed_query.dimension_names)
    aggregated = group_aggregate(
        joined,
        by=output_dimensions,
        measure=partial.measure_column,
        function=transformed_query.aggregate,
        output_column=partial.measure_column,
    )
    return CubeAnswer(aggregated, output_dimensions, partial.measure_column)


def _auxiliary_answer(partial: PartialResult, instance_evaluator: BGPEvaluator, auxiliary):
    """Evaluate ``q_aux`` in the same value space as the materialized pres(Q).

    An engine-built pres(Q) is encoded against the instance dictionary, so
    the auxiliary answer can stay encoded too and the join keys on integer
    ids; a pres(Q) restored from disk (decoded) gets a decoded auxiliary
    answer.
    """
    storage = partial.storage
    if (
        isinstance(storage, IdRelation)
        and storage.dictionary is instance_evaluator.graph.dictionary
    ):
        return instance_evaluator.evaluate_ids(auxiliary, semantics="set")
    return instance_evaluator.evaluate(auxiliary, semantics="set")


# ---------------------------------------------------------------------------
# ROLL-UP from pres(Q): the generalized Algorithm-1 pipeline
# ---------------------------------------------------------------------------


def answer_from_rolled_partial(
    partial: PartialResult, transformed_query: AnalyticalQuery
) -> CubeAnswer:
    """γ-aggregate an already-rolled ``pres(Q_T)`` into ``ans(Q_T)``.

    The partial must already be at the transformed query's granularity and
    δ-deduplicated (see :func:`repro.analytics.rolling.roll_partial`).
    """
    aggregated = group_aggregate(
        partial.storage,
        by=partial.dimension_columns,
        measure=partial.measure_column,
        function=transformed_query.aggregate,
        output_column=partial.measure_column,
    )
    return CubeAnswer(aggregated, partial.dimension_columns, partial.measure_column)


# ---------------------------------------------------------------------------
# The naive (incorrect in general) drill-out over ans(Q) — Example 5
# ---------------------------------------------------------------------------


def drill_out_from_answer_naive(
    answer: CubeAnswer,
    transformed_query: AnalyticalQuery,
) -> CubeAnswer:
    """Re-aggregate ``ans(Q)`` directly, the relational-DW way.

    This is what a classical OLAP engine would do for a distributive ⊕: drop
    the removed dimension columns and combine the already-aggregated
    values.  In the RDF setting it is **incorrect in general** (Example 5):
    facts that are multi-valued along a removed dimension are counted once
    per value.  It is provided only so benchmarks/tests can quantify that
    error; :func:`drill_out_from_partial` is the correct algorithm.
    """
    aggregate = transformed_query.aggregate
    if not aggregate.distributive:
        raise RewritingError(
            f"aggregate {aggregate.name!r} is not distributive; ans(Q)-based drill-out is impossible"
        )
    remaining = transformed_query.dimension_names
    projected = project(answer.storage, (*remaining, answer.measure_column))
    grouped = group_aggregate(
        projected,
        by=remaining,
        measure=answer.measure_column,
        function=_combiner(aggregate),
        output_column=answer.measure_column,
    )
    return CubeAnswer(grouped, tuple(remaining), answer.measure_column)


def _combiner(aggregate):
    """Wrap a distributive aggregate so γ combines partial aggregates."""
    from repro.algebra.aggregates import AggregateFunction

    return AggregateFunction(
        name=f"{aggregate.name}_combine",
        function=lambda values: aggregate.combine(values),
        distributive=True,
        numeric_only=False,
    )


# ---------------------------------------------------------------------------
# Rewriting the partial result itself (enables chains of OLAP operations)
# ---------------------------------------------------------------------------


def transform_partial(
    partial: PartialResult,
    query: AnalyticalQuery,
    transformed_query: AnalyticalQuery,
    operation: OLAPOperation,
    instance_evaluator: Optional[BGPEvaluator] = None,
) -> PartialResult:
    """Derive ``pres(Q_T)`` from ``pres(Q)`` for an OLAP transformation T.

    The paper's algorithms produce ``ans(Q_T)``; the tables they build along
    the way are (up to the key column's concrete values) exactly
    ``pres(Q_T)``, so materializing them lets OLAP *chains* — slice, then
    drill-out, then dice, ... — stay on the rewriting path throughout:

    * SLICE / DICE: the Σ′ row selection applied to ``pres(Q)``;
    * DRILL-OUT: the projected and deduplicated table T of Algorithm 1
      (before the final aggregation);
    * DRILL-IN: the join of ``pres(Q)`` with the auxiliary query's answer
      (Algorithm 2's T before aggregation), which needs the instance.
    """
    if isinstance(operation, (Slice, Dice)):
        selected = select(partial.storage, transformed_query.sigma.predicate())
        return PartialResult(
            selected,
            fact_column=partial.fact_column,
            dimension_columns=partial.dimension_columns,
            key_column=partial.key_column,
            measure_column=partial.measure_column,
        )
    if isinstance(operation, DrillOut):
        _require_removed_dimensions_unrestricted(query, transformed_query)
        remaining = tuple(transformed_query.dimension_names)
        kept = (partial.fact_column, *remaining, partial.key_column, partial.measure_column)
        table = dedup(project(partial.storage, kept))
        return PartialResult(
            table,
            fact_column=partial.fact_column,
            dimension_columns=remaining,
            key_column=partial.key_column,
            measure_column=partial.measure_column,
        )
    if isinstance(operation, DrillIn):
        if instance_evaluator is None:
            raise RewritingError(
                "deriving pres(Q_DRILL-IN) needs access to the AnS instance for the auxiliary query"
            )
        original_dimensions = set(query.dimension_names)
        new_dimensions = [
            name for name in transformed_query.dimension_names if name not in original_dimensions
        ]
        auxiliary = build_auxiliary_query(query.classifier, new_dimensions)
        join_columns = auxiliary_join_columns(query.classifier, auxiliary)
        auxiliary_answer = _auxiliary_answer(partial, instance_evaluator, auxiliary)
        joined = join_on(
            partial.storage, auxiliary_answer, [(column, column) for column in join_columns]
        )
        layout = (
            partial.fact_column,
            *transformed_query.dimension_names,
            partial.key_column,
            partial.measure_column,
        )
        return PartialResult(
            joined.reorder(layout),
            fact_column=partial.fact_column,
            dimension_columns=tuple(transformed_query.dimension_names),
            key_column=partial.key_column,
            measure_column=partial.measure_column,
        )
    if isinstance(operation, RollUp):
        return roll_partial(partial, transformed_query, start=len(query.rollup))
    raise InvalidOperationError(
        f"no partial-result rewriting is defined for operation {type(operation).__name__}"
    )


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------


class RewriteOption:
    """One applicable rewriting, reported to the planner.

    Instead of callers hand-picking an algorithm per operation, the
    rewriter *reports* what it can do with the materialized inputs at hand:
    which strategy, which input it consumes and how big that input is, a
    crude estimate of the output size, and whether the instance must be
    consulted (DRILL-IN's auxiliary query).  The planner turns each option
    into a costed plan candidate.
    """

    __slots__ = ("strategy", "input_kind", "input_rows", "estimated_output_rows", "needs_instance")

    def __init__(
        self,
        strategy: str,
        input_kind: str,
        input_rows: int,
        estimated_output_rows: float,
        needs_instance: bool = False,
    ):
        self.strategy = strategy
        #: ``"answer"`` or ``"partial"`` — which materialized input is read.
        self.input_kind = input_kind
        self.input_rows = input_rows
        self.estimated_output_rows = estimated_output_rows
        self.needs_instance = needs_instance

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RewriteOption({self.strategy}, {self.input_kind}: {self.input_rows} rows "
            f"-> ~{self.estimated_output_rows:.0f})"
        )


def _sigma_selectivity(transformed_query: AnalyticalQuery) -> float:
    """Heuristic fraction of rows kept by the transformed query's σ_dice.

    Value-set restrictions keep roughly ``min(1, |S| / 10)`` of the rows
    (dimension domains in the workloads have tens of values); range and
    predicate restrictions keep half.  Per-dimension fractions multiply
    (independence).  Only used for ranking, never for correctness.
    """
    selectivity = 1.0
    sigma = transformed_query.sigma
    for dimension in sigma.restricted_dimensions():
        restriction = sigma[dimension]
        if restriction.values is not None:
            selectivity *= min(1.0, len(restriction.values) / 10.0)
        else:
            selectivity *= 0.5
    return max(selectivity, 0.001)


class RewritingResult:
    """Outcome of answering a transformed query through rewriting."""

    def __init__(
        self,
        answer: CubeAnswer,
        strategy: str,
        used_answer: bool,
        used_partial: bool,
        used_instance: bool,
        partial: Optional[PartialResult] = None,
    ):
        self.answer = answer
        self.strategy = strategy
        self.used_answer = used_answer
        self.used_partial = used_partial
        self.used_instance = used_instance
        #: ``pres(Q_T)`` derived from ``pres(Q)`` when requested (see
        #: :meth:`OLAPRewriter.answer`'s ``materialize_partial``).
        self.partial = partial

    def __repr__(self) -> str:  # pragma: no cover
        return f"RewritingResult({self.strategy}, {len(self.answer)} cells)"


class OLAPRewriter:
    """Answers transformed queries from materialized results of the original.

    Parameters
    ----------
    instance_evaluator:
        BGP evaluator over the AnS instance, needed by DRILL-IN's auxiliary
        query (and only by it).
    """

    def __init__(self, instance_evaluator: Optional[BGPEvaluator] = None):
        self._instance_evaluator = instance_evaluator

    def options(
        self,
        materialized: MaterializedQueryResults,
        operation: OLAPOperation,
        transformed_query: Optional[AnalyticalQuery] = None,
    ) -> Tuple[RewriteOption, ...]:
        """The rewritings applicable to ``T(Q)`` given what is materialized.

        Returns an empty tuple when the required input (``ans(Q)`` for
        SLICE/DICE, ``pres(Q)`` for the drills, plus an instance evaluator
        for DRILL-IN) is missing — the planner then knows reuse is off the
        table and falls back to from-scratch evaluation.
        """
        if transformed_query is None:
            transformed_query = operation.apply(materialized.query)
        if isinstance(operation, (Slice, Dice)):
            if not materialized.has_answer():
                return ()
            rows = len(materialized.answer)
            return (
                RewriteOption(
                    "slice-dice/ans",
                    "answer",
                    rows,
                    rows * _sigma_selectivity(transformed_query),
                ),
            )
        if isinstance(operation, DrillOut):
            if not materialized.has_partial():
                return ()
            try:
                _require_removed_dimensions_unrestricted(materialized.query, transformed_query)
            except RewritingError:
                return ()
            rows = len(materialized.partial)
            # Dropping dimensions merges groups: the output is at most the
            # current answer size, estimated as half of it.
            cells = len(materialized.answer) if materialized.has_answer() else rows
            return (RewriteOption("drill-out/pres", "partial", rows, max(cells / 2.0, 1.0)),)
        if isinstance(operation, DrillIn):
            if not materialized.has_partial() or self._instance_evaluator is None:
                return ()
            rows = len(materialized.partial)
            # The auxiliary join can only refine groups; output grows with
            # the new dimension's fan-out, estimated at 2x the current cells.
            cells = len(materialized.answer) if materialized.has_answer() else rows
            return (
                RewriteOption(
                    "drill-in/pres+aux", "partial", rows, cells * 2.0, needs_instance=True
                ),
            )
        if isinstance(operation, RollUp):
            if not materialized.has_partial():
                return ()
            rows = len(materialized.partial)
            return (
                RewriteOption(
                    "roll-up/pres",
                    "partial",
                    rows,
                    rows * _sigma_selectivity(transformed_query),
                ),
            )
        # DRILL-DOWN restores a finer granularity that pres(Q) no longer
        # carries; the planner must answer it from the cache lattice or from
        # scratch, never from the coarser origin.
        return ()

    def answer(
        self,
        materialized: MaterializedQueryResults,
        operation: OLAPOperation,
        transformed_query: Optional[AnalyticalQuery] = None,
        materialize_partial: bool = False,
    ) -> RewritingResult:
        """Answer ``T(Q)`` using the materialized results of ``Q``.

        ``transformed_query`` may be supplied when the caller has already
        built it (e.g. the OLAP session); otherwise it is derived by
        applying ``operation`` to the materialized query.

        With ``materialize_partial=True`` the result also carries
        ``pres(Q_T)`` (derived from ``pres(Q)`` when it is available), so the
        transformed query can itself be the input of further rewritten OLAP
        operations.
        """
        query = materialized.query
        if transformed_query is None:
            transformed_query = operation.apply(query)

        if isinstance(operation, (Slice, Dice)):
            if not materialized.has_answer():
                raise MaterializationError(
                    f"SLICE/DICE rewriting needs ans({query.name}) to be materialized"
                )
            answer = slice_dice_from_answer(materialized.answer, transformed_query)
            result = RewritingResult(answer, "slice-dice/ans", True, False, False)
        elif isinstance(operation, DrillOut):
            if not materialized.has_partial():
                raise MaterializationError(
                    f"DRILL-OUT rewriting needs pres({query.name}) to be materialized"
                )
            answer = drill_out_from_partial(materialized.partial, query, transformed_query)
            result = RewritingResult(answer, "drill-out/pres", False, True, False)
        elif isinstance(operation, DrillIn):
            if not materialized.has_partial():
                raise MaterializationError(
                    f"DRILL-IN rewriting needs pres({query.name}) to be materialized"
                )
            if self._instance_evaluator is None:
                raise RewritingError(
                    "DRILL-IN rewriting needs access to the AnS instance for the auxiliary query"
                )
            answer = drill_in_from_partial(
                materialized.partial, query, transformed_query, self._instance_evaluator
            )
            result = RewritingResult(answer, "drill-in/pres+aux", False, True, True)
        elif isinstance(operation, RollUp):
            if not materialized.has_partial():
                raise MaterializationError(
                    f"ROLL-UP rewriting needs pres({query.name}) to be materialized"
                )
            rolled = roll_partial(
                materialized.partial, transformed_query, start=len(query.rollup)
            )
            answer = answer_from_rolled_partial(rolled, transformed_query)
            result = RewritingResult(answer, "roll-up/pres", False, True, False)
            if materialize_partial:
                result.partial = rolled
        else:
            raise InvalidOperationError(
                f"no rewriting is defined for operation {type(operation).__name__}"
            )

        if materialize_partial and materialized.has_partial() and result.partial is None:
            result.partial = transform_partial(
                materialized.partial,
                query,
                transformed_query,
                operation,
                self._instance_evaluator,
            )
        return result
