"""OLAP operations on RDF cubes: SLICE, DICE, DRILL-OUT, DRILL-IN.

Each operation is modelled as a *query transformation* (Section 2 of the
paper): applied to an extended analytical query ``Q`` it produces a new
extended analytical query ``Q_T``.  The transformations only touch the
classifier head and/or the Σ function; the measure and the aggregation
function are untouched.

The operations validate their applicability:

* SLICE / DICE dimensions must be dimensions of ``Q`` (in the classifier
  head);
* DRILL-OUT dimensions must be dimensions of ``Q``, and at least one
  dimension may remain or not (drilling out every dimension yields a global,
  zero-dimensional cube);
* DRILL-IN dimensions must be **non-distinguished** variables of the
  classifier body (they carry the extra detail that the coarser query
  projected away).
"""

from __future__ import annotations

from typing import Collection, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import InvalidOperationError
from repro.analytics.query import AnalyticalQuery
from repro.analytics.sigma import DimensionRestriction, Sigma

__all__ = ["OLAPOperation", "Slice", "Dice", "DrillOut", "DrillIn", "RollUp", "DrillDown", "compose"]


class OLAPOperation:
    """Base class of OLAP operations (query transformations)."""

    #: Short operation name used in reports and benchmark tables.
    kind: str = "noop"

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        """Return the transformed query ``Q_T``."""
        raise NotImplementedError

    def validate(self, query: AnalyticalQuery) -> None:
        """Raise :class:`InvalidOperationError` when not applicable to ``query``."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.describe()})"


def _require_dimensions(query: AnalyticalQuery, dimensions: Iterable[str], operation: str) -> None:
    known = set(query.dimension_names)
    unknown = [dimension for dimension in dimensions if dimension not in known]
    if unknown:
        raise InvalidOperationError(
            f"{operation} references {unknown} which are not dimensions of query "
            f"{query.name!r}; its dimensions are {sorted(known)}"
        )


class Slice(OLAPOperation):
    """SLICE: bind one aggregation dimension to a single value.

    ``Slice("dage", 35)`` applied to the blogger query of Example 1 yields
    the extended query whose Σ maps ``dage`` to ``{35}``.
    """

    kind = "slice"

    def __init__(self, dimension: str, value: object):
        self.dimension = dimension
        self.value = value

    def validate(self, query: AnalyticalQuery) -> None:
        _require_dimensions(query, [self.dimension], "SLICE")

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        self.validate(query)
        restriction = DimensionRestriction.to_value(self.value)
        sigma = query.sigma.restrict(self.dimension, query.sigma[self.dimension].intersect(restriction))
        return query.with_sigma(sigma, name=f"{query.name}_slice_{self.dimension}")

    def describe(self) -> str:
        return f"slice {self.dimension} = {self.value}"


class Dice(OLAPOperation):
    """DICE: constrain several dimensions to sets of values (or ranges).

    ``restrictions`` maps dimension names to one of:

    * a :class:`~repro.analytics.sigma.DimensionRestriction`;
    * a collection of allowed values;
    * a ``(low, high)`` tuple interpreted as an inclusive range.
    """

    kind = "dice"

    def __init__(self, restrictions: Mapping[str, object]):
        if not restrictions:
            raise InvalidOperationError("DICE requires at least one dimension restriction")
        self.restrictions: Dict[str, DimensionRestriction] = {}
        for dimension, specification in restrictions.items():
            self.restrictions[dimension] = self._coerce(specification)

    @staticmethod
    def _coerce(specification: object) -> DimensionRestriction:
        if isinstance(specification, DimensionRestriction):
            return specification
        if isinstance(specification, tuple) and len(specification) == 2:
            return DimensionRestriction.to_range(specification[0], specification[1])
        if isinstance(specification, (list, set, frozenset)):
            return DimensionRestriction.to_values(specification)
        return DimensionRestriction.to_value(specification)

    def validate(self, query: AnalyticalQuery) -> None:
        _require_dimensions(query, self.restrictions, "DICE")

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        self.validate(query)
        sigma = query.sigma
        for dimension, restriction in self.restrictions.items():
            sigma = sigma.restrict(dimension, sigma[dimension].intersect(restriction))
        return query.with_sigma(sigma, name=f"{query.name}_dice")

    def describe(self) -> str:
        parts = []
        for dimension, restriction in self.restrictions.items():
            description = restriction.description
            if restriction.values is not None and len(restriction.values) > 4:
                description = f"{{{len(restriction.values)} values}}"
            parts.append(f"{dimension} ∈ {description}")
        return "dice " + ", ".join(parts)


class DrillOut(OLAPOperation):
    """DRILL-OUT: remove dimensions from the classifier head (coarsen the cube)."""

    kind = "drill-out"

    def __init__(self, dimensions: Union[str, Sequence[str]]):
        if isinstance(dimensions, str):
            dimensions = [dimensions]
        self.dimensions: Tuple[str, ...] = tuple(dimensions)
        if not self.dimensions:
            raise InvalidOperationError("DRILL-OUT requires at least one dimension")
        if len(set(self.dimensions)) != len(self.dimensions):
            raise InvalidOperationError(f"duplicate dimensions in DRILL-OUT: {self.dimensions}")

    def validate(self, query: AnalyticalQuery) -> None:
        _require_dimensions(query, self.dimensions, "DRILL-OUT")

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        self.validate(query)
        removed = set(self.dimensions)
        remaining = [name for name in query.dimension_names if name not in removed]
        sigma = query.sigma.without(self.dimensions)
        return query.with_dimensions(remaining, sigma=sigma, name=f"{query.name}_drillout")

    def describe(self) -> str:
        return "drill-out " + ", ".join(self.dimensions)


class DrillIn(OLAPOperation):
    """DRILL-IN: add classifier-body variables as new dimensions (refine the cube)."""

    kind = "drill-in"

    def __init__(self, dimensions: Union[str, Sequence[str]]):
        if isinstance(dimensions, str):
            dimensions = [dimensions]
        self.dimensions: Tuple[str, ...] = tuple(dimensions)
        if not self.dimensions:
            raise InvalidOperationError("DRILL-IN requires at least one dimension")
        if len(set(self.dimensions)) != len(self.dimensions):
            raise InvalidOperationError(f"duplicate dimensions in DRILL-IN: {self.dimensions}")

    def validate(self, query: AnalyticalQuery) -> None:
        existing = set(query.dimension_names) | {query.fact_variable.name}
        classifier_variables = {variable.name for variable in query.classifier.variables()}
        for dimension in self.dimensions:
            if dimension in existing:
                raise InvalidOperationError(
                    f"DRILL-IN dimension {dimension!r} is already a dimension (or the fact "
                    f"variable) of query {query.name!r}"
                )
            if dimension not in classifier_variables:
                raise InvalidOperationError(
                    f"DRILL-IN dimension {dimension!r} is not a variable of the classifier body "
                    f"of query {query.name!r}; drill-in can only expose existing body variables"
                )

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        self.validate(query)
        new_dimension_names = tuple(query.dimension_names) + self.dimensions
        sigma = query.sigma.with_new(self.dimensions)
        return query.with_dimensions(new_dimension_names, sigma=sigma, name=f"{query.name}_drillin")

    def describe(self) -> str:
        return "drill-in " + ", ".join(self.dimensions)


class RollUp(OLAPOperation):
    """ROLL-UP: coarsen one dimension through a concept hierarchy.

    Unlike DRILL-OUT (which removes the dimension entirely), ROLL-UP keeps
    the dimension but replaces its values by their hierarchy parents.  The
    transformed query records the stage on its rollup stack (see
    :class:`~repro.analytics.query.RollStage`), giving it a canonical
    position in the hierarchy lattice that the planner and cache key on.
    """

    kind = "roll-up"

    def __init__(self, dimension: str, hierarchy):
        if not hasattr(hierarchy, "parent") or not hasattr(hierarchy, "canonical_token"):
            raise InvalidOperationError(
                "ROLL-UP requires a DimensionHierarchy-like object with parent() "
                f"and canonical_token(); got {type(hierarchy).__name__}"
            )
        self.dimension = dimension
        self.hierarchy = hierarchy

    def validate(self, query: AnalyticalQuery) -> None:
        _require_dimensions(query, [self.dimension], "ROLL-UP")

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        self.validate(query)
        return query.with_rollup(
            self.dimension, self.hierarchy, name=f"{query.name}_rollup_{self.dimension}"
        )

    def describe(self) -> str:
        return f"roll-up {self.dimension} via {getattr(self.hierarchy, 'name', 'hierarchy')}"


class DrillDown(OLAPOperation):
    """DRILL-DOWN: undo the most recent ROLL-UP, restoring the finer level.

    Only applicable to queries with at least one rollup stage; when a
    ``dimension`` is given it must match the top stage's dimension.
    """

    kind = "drill-down"

    def __init__(self, dimension: Optional[str] = None):
        self.dimension = dimension

    def validate(self, query: AnalyticalQuery) -> None:
        if not query.rollup:
            raise InvalidOperationError(
                f"DRILL-DOWN requires a rolled-up query; {query.name!r} has no rollup stage"
            )
        top = query.rollup[-1]
        if self.dimension is not None and self.dimension != top.dimension:
            raise InvalidOperationError(
                f"DRILL-DOWN on {self.dimension!r} does not match the top rollup stage "
                f"(which rolled {top.dimension!r}); drill down in stack order"
            )

    def apply(self, query: AnalyticalQuery) -> AnalyticalQuery:
        self.validate(query)
        return query.without_last_rollup(name=f"{query.name}_drilldown")

    def describe(self) -> str:
        return "drill-down" + (f" {self.dimension}" if self.dimension else "")


def compose(query: AnalyticalQuery, operations: Sequence[OLAPOperation]) -> AnalyticalQuery:
    """Apply a sequence of OLAP operations left to right."""
    result = query
    for operation in operations:
        result = operation.apply(result)
    return result
