"""ROLL-UP along dimension hierarchies (an extension beyond the paper).

Classical OLAP rolls a cube up along a *concept hierarchy*: cities to
countries, days to months, ages to age bands.  The paper's framework does not
include hierarchies (its DRILL-OUT removes a dimension entirely), but its
partial result ``pres(Q)`` supports them directly — and for the same reason
DRILL-OUT needs ``pres(Q)``, roll-up does too: a fact carrying several
dimension values that map to the *same* parent must not have its measures
counted once per child value.

This module provides:

* :class:`DimensionHierarchy` — a mapping from dimension values to parents
  (one level; stack several for multi-level hierarchies);
* :func:`roll_up_from_partial` — the correct roll-up: replace the dimension
  values by their parents in ``pres(Q)``, deduplicate on the key column
  (Algorithm 1's δ step, generalized), then re-aggregate;
* :func:`roll_up_from_answer_naive` — the relational shortcut over
  ``ans(Q)``, kept for tests/benchmarks that quantify its error on
  multi-valued data (it is correct only for distributive aggregates over
  single-valued dimensions);
* :meth:`repro.olap.session.OLAPSession.roll_up` wires the correct version
  into interactive sessions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import OLAPError, RewritingError
from repro.algebra.aggregates import AggregateFunction, get_aggregate
from repro.algebra.expressions import comparable
from repro.algebra.grouping import group_aggregate
from repro.algebra.operators import dedup, project
from repro.algebra.relation import Relation
from repro.analytics.answer import CubeAnswer, PartialResult
from repro.analytics.query import AnalyticalQuery

__all__ = ["DimensionHierarchy", "roll_up_from_partial", "roll_up_from_answer_naive"]


class DimensionHierarchy:
    """A one-level concept hierarchy: dimension value → parent value.

    Parameters
    ----------
    mapping:
        Explicit child → parent assignments.  Keys are compared both as
        given and through the literal-to-Python conversion, so a mapping
        keyed by plain ints matches ``xsd:integer`` literals.
    classify:
        Optional fallback function applied to values absent from ``mapping``
        (e.g. ``lambda age: "young" if age < 30 else "senior"``).
    default:
        Parent assigned when neither ``mapping`` nor ``classify`` covers a
        value; with the default ``None`` such values raise
        :class:`~repro.errors.OLAPError`, which surfaces incomplete
        hierarchies instead of silently mis-grouping.
    name:
        Display name (used by session history records).
    """

    def __init__(
        self,
        mapping: Optional[Mapping[object, object]] = None,
        classify: Optional[Callable[[object], object]] = None,
        default: Optional[object] = None,
        name: str = "hierarchy",
    ):
        self.name = name
        self._mapping: Dict[object, object] = {}
        self._comparable_mapping: Dict[object, object] = {}
        if mapping:
            for child, parent in mapping.items():
                self._mapping[child] = parent
                try:
                    self._comparable_mapping[comparable(child)] = parent
                except TypeError:
                    pass
        self._classify = classify
        self._default = default
        #: ``(low, high, label)`` triples when built by :meth:`banded`; lets
        #: :meth:`canonical_token` stay content-based for banding closures.
        self._bands: Optional[Tuple[Tuple[object, object, object], ...]] = None
        self._band_default: Optional[object] = None

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[object, object]], name: str = "hierarchy") -> "DimensionHierarchy":
        """Build a hierarchy from ``(child, parent)`` pairs."""
        return cls(mapping=dict(pairs), name=name)

    @classmethod
    def banded(
        cls,
        bands: Iterable[Tuple[object, object, object]],
        name: str = "bands",
        default: Optional[object] = None,
    ) -> "DimensionHierarchy":
        """Build a numeric banding hierarchy from ``(low, high, label)`` triples.

        Bounds are inclusive; bands are tried in the given order.
        """
        band_list = [(comparable(low), comparable(high), label) for low, high, label in bands]

        def classify(value: object) -> object:
            candidate = comparable(value)
            for low, high, label in band_list:
                try:
                    if low <= candidate <= high:
                        return label
                except TypeError:
                    continue
            if default is not None:
                return default
            raise OLAPError(f"value {value!r} falls outside every band of hierarchy {name!r}")

        hierarchy = cls(classify=classify, name=name)
        hierarchy._bands = tuple(band_list)
        hierarchy._band_default = default
        return hierarchy

    def parent(self, value: object) -> object:
        """Return the parent of a dimension value."""
        if value in self._mapping:
            return self._mapping[value]
        try:
            key = comparable(value)
        except TypeError:
            key = None
        if key is not None and key in self._comparable_mapping:
            return self._comparable_mapping[key]
        if self._classify is not None:
            return self._classify(value)
        if self._default is not None:
            return self._default
        raise OLAPError(f"hierarchy {self.name!r} has no parent for value {value!r}")

    def canonical_token(self) -> str:
        """A value-based identity token for caching (see :mod:`repro.olap.cache`).

        Two hierarchies with equal tokens map every value to the same parent,
        so cached cubes rolled through one can serve queries rolled through
        the other:

        * explicit mappings canonicalize by their (order-insensitive)
          child → parent pairs plus the default;
        * :meth:`banded` hierarchies canonicalize by their band triples;
        * arbitrary ``classify`` functions have no inspectable extension, so
          they canonicalize by object identity (``hier@...`` tokens, which
          :mod:`repro.olap.cache` refuses to persist to disk).
        """
        if self._bands is not None:
            bands = ";".join(f"({low!r},{high!r})->{label!r}" for low, high, label in self._bands)
            token = "bands{" + bands + "}"
            if self._band_default is not None:
                token += f"|default={self._band_default!r}"
            return token
        if self._classify is not None:
            return f"hier@{id(self)}"
        entries = []
        for child, parent in self._mapping.items():
            try:
                key = comparable(child)
            except TypeError:
                key = child
            entries.append(f"{key!r}->{parent!r}")
        token = "map{" + ";".join(sorted(entries)) + "}"
        if self._default is not None:
            token += f"|default={self._default!r}"
        return token

    def __repr__(self) -> str:  # pragma: no cover
        return f"DimensionHierarchy({self.name}, {len(self._mapping)} explicit mappings)"


def _rolled_relation(relation: Relation, dimension: str, hierarchy: DimensionHierarchy) -> Relation:
    """Replace one column's values by their hierarchy parents."""
    index = relation.column_index(dimension)

    def roll(row):
        return row[:index] + (hierarchy.parent(row[index]),) + row[index + 1 :]

    return relation.map_rows(roll)


def roll_up_from_partial(
    partial: PartialResult,
    query: AnalyticalQuery,
    dimension: str,
    hierarchy: DimensionHierarchy,
    aggregate: Optional[Union[str, AggregateFunction]] = None,
) -> CubeAnswer:
    """Roll ``pres(Q)`` up along a hierarchy on ``dimension`` and re-aggregate.

    Mirrors Algorithm 1 with a value substitution instead of a projection:

    1. replace the dimension values by their parents;
    2. δ-deduplicate — a fact that had several children of the same parent
       (multi-valued dimension) now contributes each measure key once per
       parent, not once per child;
    3. γ-aggregate over the (unchanged) other dimensions and the parents.
    """
    if dimension not in partial.dimension_columns:
        raise RewritingError(
            f"pres({query.name}) has no dimension column {dimension!r}; "
            f"its dimensions are {partial.dimension_columns}"
        )
    aggregate_function = get_aggregate(aggregate if aggregate is not None else query.aggregate)

    rolled = _rolled_relation(partial.relation, dimension, hierarchy)
    rolled = dedup(rolled)
    aggregated = group_aggregate(
        rolled,
        by=partial.dimension_columns,
        measure=partial.measure_column,
        function=aggregate_function,
        output_column=partial.measure_column,
    )
    return CubeAnswer(aggregated, partial.dimension_columns, partial.measure_column)


def roll_up_from_answer_naive(
    answer: CubeAnswer,
    query: AnalyticalQuery,
    dimension: str,
    hierarchy: DimensionHierarchy,
) -> CubeAnswer:
    """The relational shortcut: combine already-aggregated cells per parent.

    Provided for comparison only; requires a distributive aggregate and is
    wrong whenever a fact is multi-valued along the rolled-up dimension
    (exactly the Example-5 situation).
    """
    if not query.aggregate.distributive:
        raise RewritingError(
            f"aggregate {query.aggregate.name!r} is not distributive; "
            "ans(Q)-based roll-up is impossible"
        )
    if dimension not in answer.dimension_columns:
        raise RewritingError(f"the answer has no dimension column {dimension!r}")

    rolled = _rolled_relation(answer.relation, dimension, hierarchy)
    combining = AggregateFunction(
        name=f"{query.aggregate.name}_combine",
        function=lambda values: query.aggregate.combine(values),
        distributive=True,
        numeric_only=False,
    )
    aggregated = group_aggregate(
        rolled,
        by=answer.dimension_columns,
        measure=answer.measure_column,
        function=combining,
        output_column=answer.measure_column,
    )
    return CubeAnswer(aggregated, answer.dimension_columns, answer.measure_column)
