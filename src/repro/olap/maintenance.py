"""Incremental maintenance of materialized ``pres(Q)`` / ``ans(Q)`` results.

The paper's reuse story assumes the instance is static; this module makes
cached results survive instance **updates**.  Given the coalesced
triple-level deltas between the version a result was computed at and the
graph's current version (:meth:`repro.rdf.graph.Graph.deltas_since`),
:class:`DeltaMaintainer` patches the materialized results instead of
recomputing them:

1. **Affected facts.** A partial-result row can only change when some
   embedding of the classifier or measure body maps a triple pattern onto a
   changed triple.  For every delta triple and every body pattern it unifies
   with, the body is re-evaluated with the pattern's variables pre-bound to
   the triple's terms, projecting the fact variable — over an *overlay*
   graph (current graph plus the removed triples), which is a superset of
   both the old and the new instance, so facts losing embeddings are found
   too.  The union of these projections is a sound superset of every fact
   whose classifier rows or measure bag changed.

2. **Patch pres(Q).** Rows of unaffected facts are kept verbatim; rows of
   affected facts are dropped and re-derived from the current graph with
   :meth:`~repro.analytics.evaluator.AnalyticalQueryEvaluator.fact_partial_rows`
   (the fact variable pre-bound — index lookups, not a full BGP join).

3. **Patch ans(Q).** Only the cube cells of *touched* groups (dimension
   tuples of dropped or re-derived rows) are revisited.  COUNT/SUM/AVG are
   patched arithmetically from the old cell value and the row-level +/-
   deltas (AVG via the group's old row count, recorded during the single
   pres scan).  MIN/MAX combine with fresh values when a group only gained
   rows, and fall back to re-aggregating the group's surviving rows when a
   contributing row was deleted; non-invertible aggregates (count_distinct)
   always take the per-group recompute path.

The result is cell-for-cell identical to a from-scratch recomputation (the
differential oracle in ``tests/properties/test_property_maintenance.py``
enforces exactly that), at a cost proportional to the delta, not the
instance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.algebra.expressions import comparable
from repro.algebra.relation import IdRelation, Relation, relation_like
from repro.analytics.answer import (
    CubeAnswer,
    KeyGenerator,
    MaterializedQueryResults,
    PartialResult,
)
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.bgp.evaluator import BGPEvaluator
from repro.bgp.query import BGPQuery
from repro.rdf.graph import EncodedTriple, Graph, GraphDelta
from repro.rdf.terms import Term, Variable

__all__ = ["DeltaMaintainer", "estimate_scratch_cost"]

#: Per unifying (delta triple, body pattern) pair: cost of one pinned
#: affected-fact probe — a mostly-bound BGP evaluation, i.e. a few index
#: lookups plus the embeddings through the triple.  (The live values come
#: from the session's :class:`~repro.olap.calibration.CostModel`; these
#: module aliases pin the static defaults.)
DELTA_PROBE_COST = 2.0
#: Per cached pres(Q) row: cost of the retain-or-recompute partition scan.
PRES_SCAN_COST = 0.25
#: Per cached ans(Q) cell: cost of the touched-group splice.
REFRESH_CELL_COST = 0.05

#: Aggregates whose cells can be patched arithmetically from row deltas.
_INVERTIBLE_AGGREGATES = frozenset({"count", "sum", "avg"})


def estimate_scratch_cost(statistics, query: AnalyticalQuery) -> float:
    """Estimated rows touched by a from-scratch evaluation of ``query``.

    Classifier and measure are evaluated independently and joined on the
    fact variable; the join reads both results once more.  Shared by the
    planner's scratch candidate and the refresh-vs-recompute decision, so
    the two strategies are always priced in the same unit.
    """
    classifier_cost = statistics.estimate_evaluation_cost(query.classifier)
    measure_cost = statistics.estimate_evaluation_cost(query.measure)
    join_cost = statistics.estimate_bgp_cardinality(
        query.classifier
    ) + statistics.estimate_bgp_cardinality(query.measure)
    return classifier_cost + measure_cost + join_cost


class _TripleOverlay:
    """Read-only graph view of a base graph plus extra encoded triples.

    Used to evaluate affected-fact probes over ``new ∪ removed`` — a
    superset of both the pre- and post-update instance — without mutating
    the live graph (which would bump its version and spuriously invalidate
    every other cache entry).  The extra triples are the *net-removed*
    deltas, so they are disjoint from the base by construction and no
    deduplication is needed.
    """

    __slots__ = ("_base", "_extra")

    def __init__(self, base: Graph, extra: Iterable[EncodedTriple]):
        self._base = base
        self._extra = tuple(extra)

    @property
    def dictionary(self):
        return self._base.dictionary

    def encode_term(self, term: Term) -> Optional[int]:
        return self._base.encode_term(term)

    def decode_id(self, term_id: int) -> Term:
        return self._base.decode_id(term_id)

    def match_ids(self, s: Optional[int], p: Optional[int], o: Optional[int]):
        yield from self._base.match_ids(s, p, o)
        if s == -1 or p == -1 or o == -1:
            return
        for triple in self._extra:
            if (
                (s is None or triple[0] == s)
                and (p is None or triple[1] == p)
                and (o is None or triple[2] == o)
            ):
                yield triple

    def match_single_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int], position: int
    ):
        return (triple[position] for triple in self.match_ids(s, p, o))


class DeltaMaintainer:
    """Patches materialized query results from graph deltas.

    Parameters
    ----------
    evaluator:
        The session's analytical evaluator over the live instance; supplies
        the BGP machinery for affected-fact probes and per-fact re-derivation
        as well as the statistics both cost estimates are computed from.

    Examples
    --------
    After an instance mutation the session's cached results are patched
    through the maintainer (when priced cheaper than recomputing); either
    way the served cube equals a from-scratch recomputation:

    >>> from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
    >>> from repro.olap.session import OLAPSession
    >>> dataset = generic_dataset(GenericConfig(facts=40, dimensions=2, seed=11))
    >>> query = generic_query(dataset.config, aggregate="count")
    >>> session = OLAPSession(dataset.instance, dataset.schema)
    >>> _ = session.execute(query)
    >>> dropped = next(iter(dataset.instance.triples()))
    >>> dataset.instance.remove(dropped)
    True
    >>> after = session.execute(query)
    >>> session.history[-1].strategy in ("refresh", "scratch", "parallel")
    True
    >>> from repro.analytics.evaluator import AnalyticalQueryEvaluator
    >>> from repro.olap.cube import Cube
    >>> oracle = AnalyticalQueryEvaluator(dataset.instance).answer(query)
    >>> after.same_cells(Cube(oracle, query))
    True
    """

    def __init__(self, evaluator: AnalyticalQueryEvaluator, cost_model=None):
        from repro.olap.calibration import CostModel

        self._evaluator = evaluator
        self._graph = evaluator.instance
        self._statistics = evaluator.bgp_evaluator.statistics
        self._model = cost_model or CostModel()
        # A refresh *wave* patches many cache entries against one graph
        # version, and a session's entries overwhelmingly share classifier
        # and measure bodies (Σ and head differ, bodies do not).  Both the
        # affected-fact probes and the per-fact BGP evaluations are
        # therefore memoized, keyed by value-hashable queries, and cleared
        # the moment the graph moves on.
        self._memo_version: Optional[int] = None
        self._probe_memo: Dict[tuple, frozenset] = {}
        self._fact_memo: Dict[tuple, Relation] = {}
        self._probe_count_memo: Dict[tuple, int] = {}
        # id-keyed, but each value holds a strong reference to its pattern,
        # so an id can never be recycled while its memo entry is alive.
        self._pattern_memo: Dict[int, tuple] = {}

    def _sync_memos(self) -> None:
        # Statistics need no handling here: GraphStatistics is stamped with
        # the graph version and re-derives itself on the next read, so both
        # cost estimates always price against the current instance.
        version = self._graph.version
        if self._memo_version != version:
            self._memo_version = version
            self._probe_memo.clear()
            self._fact_memo.clear()
            self._probe_count_memo.clear()
            self._pattern_memo.clear()

    # ------------------------------------------------------------------
    # cost estimation
    # ------------------------------------------------------------------

    def estimate_refresh_cost(
        self, materialized: MaterializedQueryResults, delta: GraphDelta
    ) -> float:
        """Estimated rows touched by patching ``materialized`` with ``delta``.

        Grows linearly with the delta (probe work) and with the cached input
        sizes (one partition scan of ``pres``, one splice of ``ans``) — so
        for small update batches it undercuts the from-scratch estimate and
        for instance-sized batches it exceeds it, which is exactly the
        crossover the planner should find.
        """
        if not materialized.has_partial() or not materialized.has_answer():
            return float("inf")
        if materialized.query.rollup:
            return float("inf")  # rolled entries invalidate, never patch
        if getattr(self._evaluator, "entailment", None) == "rewrite":
            return float("inf")  # delta probes cannot see entailed matches
        query = materialized.query
        # Only (delta triple, body pattern) pairs that actually unify spawn
        # a probe; counting them is O(|delta| · |body|) id comparisons, far
        # cheaper than the probes themselves, and keeps the estimate from
        # charging a blogger-post insertion for classifier patterns it can
        # never touch.
        self._sync_memos()
        count_key = (
            query.classifier,
            query.measure,
            delta.from_version,
            delta.to_version,
        )
        probes = self._probe_count_memo.get(count_key)
        if probes is None:
            patterns = tuple(query.classifier.body) + tuple(query.measure.body)
            triples = delta.added + delta.removed
            probes = sum(
                1
                for pattern in patterns
                for triple in triples
                if self._unify_ids(pattern, triple) is not None
            )
            self._probe_count_memo[count_key] = probes
        return (
            probes * self._model.delta_probe_cost
            + len(materialized.partial) * self._model.pres_scan_cost
            + len(materialized.answer) * self._model.refresh_cell_cost
        )

    def estimate_scratch_cost(self, query: AnalyticalQuery) -> float:
        """From-scratch estimate in the same unit (see module function)."""
        return estimate_scratch_cost(self._statistics, query)

    def price_refresh(
        self, materialized: MaterializedQueryResults, delta: GraphDelta, engine: str = "rows"
    ) -> Tuple[float, float]:
        """``(refresh cost, scratch cost)`` for one stale entry, one unit.

        The refresh-vs-recompute comparison every consumer must agree on:
        the session's refresh-on-read path, the planner's refresh-cached
        candidate and the ingest layer's :class:`~repro.ingest.scheduler.RefreshScheduler`
        all price through here, so a scheduler decision made at publish
        time can never contradict the read path's own pricing.  Scratch is
        scaled by the cost model's per-``engine`` multiplier (patching is
        row-level work regardless of engine).
        """
        refresh_cost = self.estimate_refresh_cost(materialized, delta)
        scratch_cost = self._model.engine_multiplier(engine) * self.estimate_scratch_cost(
            materialized.query
        )
        return refresh_cost, scratch_cost

    # ------------------------------------------------------------------
    # affected facts
    # ------------------------------------------------------------------

    def affected_facts(self, query: AnalyticalQuery, delta: GraphDelta) -> Set[int]:
        """Ids of every fact whose ``pres(Q)`` rows may have changed.

        Sound superset: any embedding of the classifier or measure body that
        exists in the old instance or the new one but not both must map some
        pattern onto a delta triple, and every such embedding is found by
        the pinned probes over the overlay (which contains both instances).
        """
        self._sync_memos()
        fact = query.fact_variable
        probes = (
            BGPQuery([fact], query.classifier.body, name="affected_classifier"),
            BGPQuery([fact], query.measure.body, name="affected_measure"),
        )
        overlay_evaluator = None
        affected: Set[int] = set()
        for probe in probes:
            memo_key = (probe, delta.from_version, delta.to_version)
            found = self._probe_memo.get(memo_key)
            if found is None:
                if overlay_evaluator is None:
                    overlay = _TripleOverlay(self._graph, delta.removed)
                    overlay_evaluator = BGPEvaluator(overlay, statistics=self._statistics)
                probe_hits: Set[int] = set()
                for triple in delta.added + delta.removed:
                    for pattern in probe.body:
                        bound_ids = self._unify_ids(pattern, triple)
                        if bound_ids is None:
                            continue
                        if fact in bound_ids:
                            # The pattern itself binds the fact variable:
                            # the only fact any embedding through this
                            # triple can have is the bound one.  Flagging
                            # it without checking that a full embedding
                            # exists keeps the set a (cheap) superset.
                            probe_hits.add(bound_ids[fact])
                            continue
                        decode = self._graph.dictionary.decode
                        binding = {
                            variable: decode(term_id)
                            for variable, term_id in bound_ids.items()
                        }
                        result = overlay_evaluator.evaluate_ids(
                            probe, semantics="set", initial_binding=binding
                        )
                        probe_hits.update(row[0] for row in result.rows)
                found = frozenset(probe_hits)
                self._probe_memo[memo_key] = found
            affected |= found
        return set(affected)

    def _compiled_pattern(self, pattern) -> tuple:
        """The pattern's positions with constants pre-encoded to ids.

        Each position is ``(True, Variable)`` or ``(False, id-or-None)``.
        Version-scoped (cleared by :meth:`_sync_memos`): a constant unknown
        to the dictionary today may be introduced by tomorrow's delta.
        """
        entry = self._pattern_memo.get(id(pattern))
        if entry is not None and entry[0] is pattern:
            return entry[1]
        encode = self._graph.encode_term
        compiled = tuple(
            (True, term) if isinstance(term, Variable) else (False, encode(term))
            for term in pattern.as_tuple()
        )
        self._pattern_memo[id(pattern)] = (pattern, compiled)
        return compiled

    def _unify_ids(self, pattern, triple: EncodedTriple) -> Optional[Dict[Variable, int]]:
        """Bind the pattern's variables to the triple's term ids, or None.

        Fails when a constant position disagrees with the triple or a
        repeated variable would need two different ids.
        """
        bound_ids: Dict[Variable, int] = {}
        for (is_variable, value), term_id in zip(self._compiled_pattern(pattern), triple):
            if is_variable:
                seen = bound_ids.get(value)
                if seen is not None and seen != term_id:
                    return None
                bound_ids[value] = term_id
            elif value != term_id:  # includes value None (unknown constant)
                return None
        return bound_ids

    # ------------------------------------------------------------------
    # the refresh itself
    # ------------------------------------------------------------------

    def refresh(
        self, materialized: MaterializedQueryResults, delta: GraphDelta
    ) -> Optional[MaterializedQueryResults]:
        """Patched results equal to a from-scratch recompute, or None.

        ``None`` means the entry is not patchable (no partial result, or its
        relations live in a value space the maintainer cannot splice into)
        and the caller should fall back to invalidation.  When the delta
        does not touch the query at all the input object is returned as-is —
        the caller only needs to re-stamp its version.
        """
        query = materialized.query
        if query.rollup:
            # Rolled entries derive from a *mapped* base pres: per-fact
            # re-derivation cannot reproduce the hierarchy substitution, so
            # they invalidate instead of patching (the planner re-rolls them
            # from a refreshed finer-grained entry instead).
            return None
        if getattr(self._evaluator, "entailment", None) == "rewrite":
            # Under entailment rewriting a delta triple (p, x, y) also
            # affects patterns over p's superproperties and the classes it
            # types into — the probe unification below would miss those, so
            # rewrite-mode entries invalidate instead of patching.
            return None
        if not materialized.has_partial() or not materialized.has_answer():
            return None
        partial = materialized.partial
        answer = materialized.answer
        pres_storage = partial.storage
        ans_storage = answer.storage
        pres_encoded = isinstance(pres_storage, IdRelation)
        ans_encoded = isinstance(ans_storage, IdRelation)
        dictionary = self._graph.dictionary
        if pres_encoded != ans_encoded:
            return None  # mixed-space entries are not patchable
        if pres_encoded and (
            pres_storage.dictionary is not dictionary
            or ans_storage.dictionary is not dictionary
        ):
            return None  # ids from a foreign dictionary cannot be spliced
        if delta.is_empty():
            return materialized

        self._sync_memos()
        affected = self.affected_facts(query, delta)
        if not affected:
            return materialized
        if pres_encoded:
            affected_facts = affected
        else:
            affected_facts = {dictionary.decode(fact_id) for fact_id in affected}

        fact_index = pres_storage.column_index(partial.fact_column)
        key_index = pres_storage.column_index(partial.key_column)
        measure_index = pres_storage.column_index(partial.measure_column)
        dimension_indexes = pres_storage.column_indexes(partial.dimension_columns)

        # First pass over the cached pres: partition retained vs. dropped
        # rows (a fact-membership test per row, nothing else) and track the
        # highest newk() key, so fresh rows cannot collide.
        retained: List[tuple] = []
        removed_rows: List[tuple] = []
        max_key = 0
        for row in pres_storage.rows:
            key = row[key_index]
            if isinstance(key, int) and key > max_key:
                max_key = key
            if row[fact_index] in affected_facts:
                removed_rows.append(row)
            else:
                retained.append(row)

        # Re-derive the affected facts' rows from the current instance.
        keys = KeyGenerator(start=max_key + 1)
        fresh: List[tuple] = []
        for fact_id in sorted(affected):
            fact_relation = self._evaluator.fact_partial_rows(
                query, dictionary.decode(fact_id), keys, memo=self._fact_memo
            )
            if not len(fact_relation):
                continue
            if pres_encoded:
                if not isinstance(fact_relation, IdRelation):
                    return None  # engine space changed under us; recompute instead
                fresh.extend(fact_relation.rows)
            else:
                fresh.extend(fact_relation.iter_decoded())

        removed_by_group: Dict[tuple, List] = {}
        for row in removed_rows:
            group = tuple(row[index] for index in dimension_indexes)
            removed_by_group.setdefault(group, []).append(row[measure_index])
        fresh_by_group: Dict[tuple, List] = {}
        for row in fresh:
            group = tuple(row[index] for index in dimension_indexes)
            fresh_by_group.setdefault(group, []).append(row[measure_index])
        touched = set(removed_by_group) | set(fresh_by_group)

        # Second, *targeted* pass: per-group retained counts (AVG needs the
        # old cardinality) and surviving values (the MIN/MAX /
        # non-invertible fallback) are collected only for touched groups —
        # a 1-triple delta on a 100k-row pres must not build indexes over
        # every group it will never look at.
        group_sizes: Dict[tuple, int] = {}
        surviving_values: Dict[tuple, List] = {}
        for row in retained:
            group = tuple(row[index] for index in dimension_indexes)
            if group in touched:
                group_sizes[group] = group_sizes.get(group, 0) + 1
                surviving_values.setdefault(group, []).append(row[measure_index])
        for group, values in removed_by_group.items():
            group_sizes[group] = group_sizes.get(group, 0) + len(values)
        for group, values in fresh_by_group.items():
            surviving_values.setdefault(group, []).extend(values)

        patched_answer = self._patch_answer(
            query,
            answer,
            removed_by_group,
            fresh_by_group,
            group_sizes,
            surviving_values,
            pres_storage.column_decoder(partial.measure_column),
        )

        new_pres = relation_like(pres_storage.columns, retained + fresh, pres_storage)
        new_partial = PartialResult(
            new_pres,
            fact_column=partial.fact_column,
            dimension_columns=partial.dimension_columns,
            key_column=partial.key_column,
            measure_column=partial.measure_column,
        )
        return MaterializedQueryResults(query, answer=patched_answer, partial=new_partial)

    # ------------------------------------------------------------------
    # ans(Q) patching
    # ------------------------------------------------------------------

    def _patch_answer(
        self,
        query: AnalyticalQuery,
        answer: CubeAnswer,
        removed_by_group: Dict[tuple, List],
        fresh_by_group: Dict[tuple, List],
        group_sizes: Dict[tuple, int],
        surviving_values: Dict[tuple, List],
        measure_decoder,
    ) -> CubeAnswer:
        ans_storage = answer.storage
        dimension_indexes = ans_storage.column_indexes(answer.dimension_columns)
        measure_index = ans_storage.column_index(answer.measure_column)
        touched = set(removed_by_group) | set(fresh_by_group)

        kept_rows: List[tuple] = []
        old_cells: Dict[tuple, object] = {}
        touched_order: List[tuple] = []
        seen: Set[tuple] = set()
        for row in ans_storage.rows:
            group = tuple(row[index] for index in dimension_indexes)
            if group in touched:
                old_cells[group] = row[measure_index]
                if group not in seen:
                    seen.add(group)
                    touched_order.append(group)
            else:
                kept_rows.append(row)
        for group in list(fresh_by_group) + list(removed_by_group):
            if group not in seen:
                seen.add(group)
                touched_order.append(group)

        memo: Dict[object, object] = {}

        def value_of(raw):
            converted = memo.get(raw)
            if converted is None:
                converted = comparable(measure_decoder(raw)) if measure_decoder else comparable(raw)
                memo[raw] = converted
            return converted

        patched_rows: List[tuple] = []
        for group in touched_order:
            cell = self._patch_cell(
                query.aggregate,
                old_cells.get(group),
                group_sizes.get(group, 0),
                removed_by_group.get(group, ()),
                fresh_by_group.get(group, ()),
                surviving_values.get(group, ()),
                value_of,
            )
            if cell is not None:
                patched_rows.append(group + (cell,))

        new_ans = relation_like(ans_storage.columns, kept_rows + patched_rows, ans_storage)
        return CubeAnswer(new_ans, answer.dimension_columns, answer.measure_column)

    @staticmethod
    def _patch_cell(
        aggregate,
        old_value,
        old_count: int,
        removed_values,
        fresh_values,
        surviving,
        value_of,
    ):
        """The new cell value of one touched group (None drops the cell)."""
        new_count = old_count - len(removed_values) + len(fresh_values)
        if new_count <= 0:
            return None
        name = aggregate.name
        try:
            if name == "count":
                return new_count
            if name in ("sum", "avg") and (old_value is not None or old_count == 0):
                removed_sum = sum(value_of(value) for value in removed_values)
                fresh_sum = sum(value_of(value) for value in fresh_values)
                old_sum = 0 if old_value is None else (
                    old_value if name == "sum" else old_value * old_count
                )
                new_sum = old_sum - removed_sum + fresh_sum
                return new_sum if name == "sum" else float(new_sum) / new_count
            if (
                name in ("min", "max")
                and not removed_values
                and old_value is not None
            ):
                return aggregate(
                    [old_value] + [value_of(value) for value in fresh_values]
                )
        except (TypeError, ValueError, ArithmeticError):
            pass  # non-numeric surprise: fall through to the recompute path
        # Per-group recompute: MIN/MAX with deletions, non-invertible
        # aggregates (count_distinct), or any arithmetic that did not apply.
        values = [value_of(value) for value in surviving]
        if not values:
            return None
        try:
            return aggregate(values)
        except Exception:
            return None  # undefined aggregate: the cell disappears
