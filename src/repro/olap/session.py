"""Interactive OLAP sessions over an analytical-schema instance.

:class:`OLAPSession` is the top-level convenience API tying everything
together — the object a data analyst (or an example script) works with:

* it owns the AnS instance and its evaluator;
* :meth:`execute` answers an analytical query from scratch and *materializes*
  its answer and partial result, exactly as the paper assumes ("pres(Q) ...
  has been materialized and stored as part of the evaluation of the original
  query Q");
* :meth:`transform` applies an OLAP operation to a previously executed query
  and answers the transformed query, either by **rewriting** (reusing the
  materialized results — the paper's contribution), from **scratch** (the
  baseline), or **auto** (rewrite when the needed inputs are materialized,
  otherwise scratch);
* every transformed query is materialized in turn (its answer always; its
  partial result when it was computed), so OLAP navigations can chain:
  slice, then drill-out, then dice, ...

The session also records simple timing and input-size statistics per
operation, which the examples print and the benchmark harness aggregates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import MaterializationError, OLAPError
from repro.rdf.graph import Graph
from repro.analytics.answer import CubeAnswer, MaterializedQueryResults
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.analytics.schema import AnalyticalSchema
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.cube import Cube
from repro.olap.operations import OLAPOperation
from repro.olap.rewriting import OLAPRewriter

__all__ = ["OLAPSession", "TransformationRecord"]


@dataclass
class TransformationRecord:
    """Bookkeeping for one executed query or OLAP transformation."""

    query_name: str
    operation: str
    strategy: str
    seconds: float
    input_rows: int
    output_cells: int
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.query_name}: {self.operation} via {self.strategy} "
            f"({self.input_rows} input rows -> {self.output_cells} cells, {self.seconds * 1000:.2f} ms)"
        )


class OLAPSession:
    """A cube-navigation session over one AnS instance."""

    def __init__(
        self,
        instance: Graph,
        schema: Optional[AnalyticalSchema] = None,
        materialize_partial: bool = True,
    ):
        self.schema = schema
        self.instance = instance
        self.evaluator = AnalyticalQueryEvaluator(instance)
        self._rewriter = OLAPRewriter(self.evaluator.bgp_evaluator)
        self._materialize_partial = materialize_partial
        self._materialized: Dict[str, MaterializedQueryResults] = {}
        self.history: List[TransformationRecord] = []

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def execute(self, query: AnalyticalQuery, materialize_partial: Optional[bool] = None) -> Cube:
        """Answer ``query`` from scratch and materialize its results."""
        keep_partial = (
            self._materialize_partial if materialize_partial is None else materialize_partial
        )
        started = time.perf_counter()
        materialized = self.evaluator.evaluate(query, materialize_partial=keep_partial)
        elapsed = time.perf_counter() - started
        self._materialized[query.name] = materialized
        answer = materialized.answer
        self.history.append(
            TransformationRecord(
                query_name=query.name,
                operation="execute",
                strategy="scratch",
                seconds=elapsed,
                input_rows=len(self.instance),
                output_cells=len(answer),
            )
        )
        return Cube(answer, query)

    def materialized(self, query: Union[str, AnalyticalQuery]) -> MaterializedQueryResults:
        """The materialized results of a previously executed query."""
        name = query if isinstance(query, str) else query.name
        if name not in self._materialized:
            raise MaterializationError(
                f"query {name!r} has not been executed in this session; call execute() first"
            )
        return self._materialized[name]

    def executed_queries(self) -> Tuple[str, ...]:
        return tuple(self._materialized)

    def forget(self, query: Union[str, AnalyticalQuery]) -> None:
        """Drop the materialized results of a query (frees memory)."""
        name = query if isinstance(query, str) else query.name
        self._materialized.pop(name, None)

    # ------------------------------------------------------------------
    # persistence of materialized results
    # ------------------------------------------------------------------

    def save_materialized(self, query: Union[str, AnalyticalQuery], directory: str) -> None:
        """Persist a query's materialized results (see :mod:`repro.persistence`)."""
        from repro.persistence import save_materialized_results

        save_materialized_results(self.materialized(query), directory)

    def restore_materialized(self, query: AnalyticalQuery, directory: str) -> MaterializedQueryResults:
        """Load previously saved materialized results and register them in this session.

        After restoring, OLAP transformations on ``query`` can be answered by
        rewriting without re-executing it against the instance.
        """
        from repro.persistence import load_materialized_results

        materialized = load_materialized_results(directory, query)
        self._materialized[query.name] = materialized
        return materialized

    # ------------------------------------------------------------------
    # OLAP transformations
    # ------------------------------------------------------------------

    def transform(
        self,
        query: Union[str, AnalyticalQuery],
        operation: OLAPOperation,
        strategy: str = "auto",
        materialize: bool = True,
    ) -> Cube:
        """Apply an OLAP operation to an executed query and answer the result.

        Parameters
        ----------
        query:
            The original query (or its name) whose results are reused.
        operation:
            The OLAP operation (SLICE / DICE / DRILL-OUT / DRILL-IN).
        strategy:
            ``"rewrite"`` — use the paper's rewriting algorithms (raises when
            the needed materialized input is missing);
            ``"scratch"`` — re-evaluate the transformed query on the instance;
            ``"auto"`` — rewrite when possible, otherwise scratch.
        materialize:
            Whether to store the transformed query's answer for further
            navigation (its partial result is additionally stored only when
            the scratch path computed one).
        """
        if strategy not in ("auto", "rewrite", "scratch"):
            raise OLAPError(f"unknown strategy {strategy!r}; expected auto, rewrite or scratch")
        materialized = self.materialized(query)
        original_query = materialized.query
        transformed_query = operation.apply(original_query)

        started = time.perf_counter()
        transformed_partial = None
        if strategy == "scratch":
            answer, used, input_rows = self._scratch(original_query, operation, transformed_query)
        elif strategy == "rewrite":
            answer, used, input_rows, transformed_partial = self._rewrite(
                materialized, operation, transformed_query, materialize_partial=materialize
            )
        else:
            try:
                answer, used, input_rows, transformed_partial = self._rewrite(
                    materialized, operation, transformed_query, materialize_partial=materialize
                )
            except (MaterializationError, OLAPError):
                answer, used, input_rows = self._scratch(original_query, operation, transformed_query)
        elapsed = time.perf_counter() - started

        if materialize:
            self._store_transformed(transformed_query, answer, transformed_partial)

        self.history.append(
            TransformationRecord(
                query_name=transformed_query.name,
                operation=operation.describe(),
                strategy=used,
                seconds=elapsed,
                input_rows=input_rows,
                output_cells=len(answer),
            )
        )
        return Cube(answer, transformed_query)

    def _rewrite(
        self,
        materialized: MaterializedQueryResults,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
        materialize_partial: bool = False,
    ):
        result = self._rewriter.answer(
            materialized, operation, transformed_query, materialize_partial=materialize_partial
        )
        if result.used_partial:
            input_rows = len(materialized.partial)
        elif result.used_answer:
            input_rows = len(materialized.answer)
        else:  # pragma: no cover - every current rewriting uses one of the two
            input_rows = 0
        return result.answer, f"rewrite[{result.strategy}]", input_rows, result.partial

    def _scratch(
        self,
        original_query: AnalyticalQuery,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
    ) -> Tuple[CubeAnswer, str, int]:
        answer = transformed_answer_from_scratch(
            self.evaluator, original_query, operation, transformed_query
        )
        return answer, "scratch", len(self.instance)

    def _store_transformed(
        self, transformed_query: AnalyticalQuery, answer: CubeAnswer, partial=None
    ) -> None:
        self._materialized[transformed_query.name] = MaterializedQueryResults(
            transformed_query, answer=answer, partial=partial
        )

    # ------------------------------------------------------------------
    # roll-up along dimension hierarchies (extension beyond the paper)
    # ------------------------------------------------------------------

    def roll_up(
        self,
        query: Union[str, AnalyticalQuery],
        dimension: str,
        hierarchy,
        aggregate: Optional[str] = None,
    ) -> Cube:
        """Roll a materialized cube up along a dimension hierarchy.

        Uses ``pres(Q)`` (required) via
        :func:`repro.olap.hierarchy.roll_up_from_partial`; the result keeps
        the same dimensions with the rolled-up dimension's values replaced by
        their parents.
        """
        from repro.olap.hierarchy import roll_up_from_partial

        materialized = self.materialized(query)
        original_query = materialized.query
        started = time.perf_counter()
        answer = roll_up_from_partial(
            materialized.partial, original_query, dimension, hierarchy, aggregate
        )
        elapsed = time.perf_counter() - started
        self.history.append(
            TransformationRecord(
                query_name=original_query.name,
                operation=f"roll-up {dimension} by {getattr(hierarchy, 'name', 'hierarchy')}",
                strategy="rewrite[roll-up/pres]",
                seconds=elapsed,
                input_rows=len(materialized.partial),
                output_cells=len(answer),
            )
        )
        return Cube(answer, original_query)

    # ------------------------------------------------------------------
    # comparisons (used by examples / tests / benches)
    # ------------------------------------------------------------------

    def compare_strategies(
        self, query: Union[str, AnalyticalQuery], operation: OLAPOperation
    ) -> Dict[str, object]:
        """Answer the transformed query with both strategies and compare.

        Returns a dictionary with both cubes, their timings and whether the
        cell contents agree — the building block of the experiment harness.
        """
        materialized = self.materialized(query)
        original_query = materialized.query
        transformed_query = operation.apply(original_query)

        started = time.perf_counter()
        rewritten, rewrite_strategy, _, _ = self._rewrite(materialized, operation, transformed_query)
        rewrite_seconds = time.perf_counter() - started

        started = time.perf_counter()
        scratch, _, _ = self._scratch(original_query, operation, transformed_query)
        scratch_seconds = time.perf_counter() - started

        rewritten_cube = Cube(rewritten, transformed_query)
        scratch_cube = Cube(scratch, transformed_query)
        return {
            "operation": operation.describe(),
            "rewrite_cube": rewritten_cube,
            "scratch_cube": scratch_cube,
            "rewrite_seconds": rewrite_seconds,
            "scratch_seconds": scratch_seconds,
            "speedup": (scratch_seconds / rewrite_seconds) if rewrite_seconds > 0 else float("inf"),
            "equal": rewritten_cube.same_cells(scratch_cube),
            "strategy": rewrite_strategy,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OLAPSession({len(self.instance)} instance triples, "
            f"{len(self._materialized)} materialized queries)"
        )
