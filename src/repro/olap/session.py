"""Interactive OLAP sessions over an analytical-schema instance.

:class:`OLAPSession` is the top-level convenience API tying everything
together — the object a data analyst (or an example script) works with:

* it owns the AnS instance, its evaluator, and a bounded
  :class:`~repro.olap.cache.ResultCache` of materialized results keyed by
  the *canonical form* of each analytical query (so results are found by
  what they answer, not by the navigation path that produced them);
* :meth:`execute` answers an analytical query and materializes its answer
  and partial result, exactly as the paper assumes ("pres(Q) ... has been
  materialized and stored as part of the evaluation of the original query
  Q") — unless the cache (or its disk store, on a warm start) already holds
  the result;
* :meth:`transform` applies an OLAP operation to a query and answers the
  transformed query.  The default ``"plan"`` strategy routes the operation
  through the cost-based :class:`~repro.olap.planner.OLAPPlanner`, which
  picks the cheapest of: returning a cached answer, one of the paper's
  rewritings, σ-selecting a cached compatible (weaker-Σ) answer, or
  re-evaluating from scratch.  The forced strategies ``"rewrite"``,
  ``"scratch"`` and ``"auto"`` remain available for experiments that
  compare them;
* every transformed query is materialized in turn (subject to the cache
  bound), so OLAP navigations can chain: slice, then drill-out, then dice...

The session records timing, input sizes and the winning strategy per
operation in :attr:`history`; with the planner each record also carries the
full costed plan (see ``details["plan"]``), which ``repro-olap demo
--explain`` prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import MaterializationError, OLAPError
from repro.rdf.graph import Graph
from repro.rdf.reasoning import saturate
from repro.rdf.triples import Triple
from repro.analytics.answer import CubeAnswer, MaterializedQueryResults
from repro.analytics.entailment import EntailmentRewritingEvaluator
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.analytics.schema import AnalyticalSchema
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.cache import DEFAULT_CAPACITY, CacheEntry, ResultCache
from repro.olap.calibration import CostModel, fit_cost_model
from repro.olap.cube import Cube
from repro.olap.maintenance import DeltaMaintainer, estimate_scratch_cost
from repro.olap.operations import DrillDown, OLAPOperation, RollUp
from repro.olap.parallel import ParallelExecutor, estimate_parallel_cost
from repro.olap.planner import OLAPPlanner
from repro.olap.rewriting import OLAPRewriter

__all__ = ["OLAPSession", "TransformationRecord"]


@dataclass
class TransformationRecord:
    """Bookkeeping for one executed query or OLAP transformation.

    ``seconds`` is the end-to-end wall-clock of the operation; it splits
    into ``plan_seconds`` (planner candidate enumeration — 0 for forced
    strategies and :meth:`OLAPSession.execute`) and ``execute_seconds``
    (actually serving the answer).  The calibrator feeds on
    ``execute_seconds`` only, so a cache hit's sample measures the cost of
    serving the hit, not of pricing its alternatives.
    """

    query_name: str
    operation: str
    strategy: str
    seconds: float
    input_rows: int
    output_cells: int
    details: Dict[str, object] = field(default_factory=dict)
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0

    def __str__(self) -> str:
        return (
            f"{self.query_name}: {self.operation} via {self.strategy} "
            f"({self.input_rows} input rows -> {self.output_cells} cells, {self.seconds * 1000:.2f} ms)"
        )


class OLAPSession:
    """A cube-navigation session over one AnS instance.

    Parameters
    ----------
    instance:
        The AnS instance graph.  May be None when ``snapshot`` is given.
    snapshot:
        Path of an on-disk columnar snapshot (see :mod:`repro.storage`) to
        open as the instance — mutually exclusive with ``instance``.  With
        ``snapshot_mmap=True`` (default) the session attaches read-only
        memmap views (cold start is O(header), the columnar kernels read
        the file's pages zero-copy, and parallel workers re-attach by path
        instead of receiving a pickled graph); with ``snapshot_mmap=False``
        the snapshot is decoded into a mutable heap graph.
    schema:
        Optional analytical schema (kept for introspection; queries carry
        their own).
    materialize_partial:
        Whether :meth:`execute` retains ``pres(Q)`` alongside ``ans(Q)``.
    cache_capacity:
        Bound on the number of in-memory materialized results (LRU beyond
        it).  0 disables in-memory caching; correctness is unaffected
        because the planner falls back to from-scratch evaluation.
    cache_dir:
        Optional directory for write-through persistence of cache entries;
        a new session pointed at the same directory warm-starts from them.
    workers:
        Size of the shard-parallel worker pool.  With ``workers > 1`` the
        planner enumerates a ``parallel`` candidate (per-shard evaluation +
        partial-aggregate merge) and :meth:`execute` answers cold queries
        in parallel when priced cheaper than serial scratch.  ``1``
        (default) keeps everything serial.
    shard_count:
        Fact shards per parallel evaluation (defaults to ``workers``).
    parallel_backend:
        ``"auto"`` / ``"process"`` / ``"thread"`` / ``"serial"`` — see
        :class:`~repro.olap.parallel.ParallelExecutor`.
    engine:
        ``"rows"``, ``"columnar"`` or None/``"auto"`` — the execution
        engine of the from-scratch evaluator (see
        :func:`repro.algebra.columnar.resolve_engine`).  ``auto`` uses the
        vectorized columnar engine when numpy (the ``[fast]`` extra) is
        installed, honouring a ``REPRO_ENGINE`` override.
    cost_model:
        Optional :class:`~repro.olap.calibration.CostModel` that the
        planner, the delta maintainer and the refresh/parallel pricing in
        this session read instead of the static module constants.  Pass a
        fitted model (see :meth:`fit_cost_model`) to replan a workload
        with runtime-calibrated costs; omit it for the static planner.
    entailment:
        ``None`` (default) answers queries over the asserted triples only.
        ``"saturate"`` evaluates every query over the ρdf closure of the
        instance: the session maintains an internal saturated copy, kept in
        sync with the source graph — addition-only deltas (including
        schema-triple additions, which re-trigger the fixpoint) flow into
        the closure through the change log so cached cubes stay
        refreshable; removals rebuild it.  ``"rewrite"`` leaves the graph
        untouched and reformulates every BGP into its entailment branches
        (see :mod:`repro.analytics.entailment`) — equivalent answers,
        priced separately by the planner (``scratch[saturate]`` vs.
        ``scratch[rewrite]`` in ``Plan.explain()``).

    Examples
    --------
    Execute a cube query, then navigate: transformations are answered
    from the materialized results whenever that is priced cheaper.

    >>> from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
    >>> dataset = generic_dataset(GenericConfig(facts=30, dimensions=2, seed=3))
    >>> query = generic_query(dataset.config, aggregate="count")
    >>> session = OLAPSession(dataset.instance, dataset.schema)
    >>> cube = session.execute(query)
    >>> session.history[-1].strategy
    'scratch'
    >>> from repro.olap.operations import DrillOut
    >>> coarser = session.transform(query, DrillOut("d1"))
    >>> len(coarser) <= len(cube)
    True
    >>> session.engine in ("rows", "columnar")
    True
    """

    def __init__(
        self,
        instance: Optional[Graph] = None,
        schema: Optional[AnalyticalSchema] = None,
        materialize_partial: bool = True,
        cache_capacity: int = DEFAULT_CAPACITY,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        shard_count: Optional[int] = None,
        parallel_backend: str = "auto",
        engine: Optional[str] = None,
        snapshot: Optional[str] = None,
        snapshot_mmap: bool = True,
        cost_model: Optional[CostModel] = None,
        entailment: Optional[str] = None,
    ):
        if (instance is None) == (snapshot is None):
            raise ValueError(
                "OLAPSession needs exactly one of instance= or snapshot="
            )
        if entailment not in (None, "saturate", "rewrite"):
            raise OLAPError(
                f"unknown entailment mode {entailment!r}; expected None, 'saturate' or 'rewrite'"
            )
        if snapshot is not None:
            from repro.storage.snapshot import load_snapshot

            instance = load_snapshot(snapshot, mmap=snapshot_mmap)
        self.schema = schema
        self._entailment = entailment
        #: The graph handed in by the caller (mutate this one); identical to
        #: :attr:`instance` except under ``entailment="saturate"``, where
        #: ``instance`` is the session's internal saturated copy.
        self.source_instance = instance
        self._entailment_version: Optional[int] = None
        if entailment == "saturate":
            closure = Graph(name=f"{instance.name}+rdfs")
            closure.add_all(instance)
            saturate(closure, in_place=True)
            self._entailment_version = instance.version
            instance = closure
        self.instance = instance
        if entailment == "rewrite":
            self.evaluator: AnalyticalQueryEvaluator = EntailmentRewritingEvaluator(
                instance, engine=engine
            )
        else:
            self.evaluator = AnalyticalQueryEvaluator(instance, engine=engine)
            if entailment == "saturate":
                # The planner and calibration name strategies off this marker
                # (scratch[saturate]); evaluation itself is plain — the graph
                # is already closed.
                self.evaluator.entailment = "saturate"
        self._rewriter = OLAPRewriter(self.evaluator.bgp_evaluator)
        self._materialize_partial = materialize_partial
        self._cache = ResultCache(cache_capacity, store_dir=cache_dir)
        self._cost_model = cost_model or CostModel()
        self._maintainer = DeltaMaintainer(self.evaluator, cost_model=self._cost_model)
        self._parallel = (
            ParallelExecutor(
                self.evaluator,
                workers=workers,
                shard_count=shard_count,
                backend=parallel_backend,
            )
            if workers > 1
            else None
        )
        self._planner = OLAPPlanner(
            self.evaluator,
            self._cache,
            rewriter=self._rewriter,
            maintainer=self._maintainer,
            parallel=self._parallel,
            cost_model=self._cost_model,
        )
        self._queries: Dict[str, AnalyticalQuery] = {}
        self.history: List[TransformationRecord] = []
        self._closed = False

    # ------------------------------------------------------------------
    # cache / planner access
    # ------------------------------------------------------------------

    @property
    def cache(self) -> ResultCache:
        """The session's bounded result cache (inspect ``cache.stats``)."""
        return self._cache

    @property
    def planner(self) -> OLAPPlanner:
        return self._planner

    @property
    def cost_model(self) -> CostModel:
        """The cost model pricing every candidate in this session."""
        return self._cost_model

    def fit_cost_model(self, min_samples: int = 1) -> CostModel:
        """Fit a :class:`~repro.olap.calibration.CostModel` from this
        session's history.

        Uses the ``(predicted cost, observed execute seconds, strategy)``
        samples of every planned record (see
        :func:`~repro.olap.calibration.fit_cost_model`); the current model
        is the fit's starting point.  The session itself is *not* switched
        — construct a new :class:`OLAPSession` with ``cost_model=`` (the
        planner caches per-model derived state at construction) or use the
        advisor loop in :mod:`repro.olap.advisor`.
        """
        return fit_cost_model(
            self.history,
            engine=self.engine,
            base=self._cost_model,
            min_samples=min_samples,
        )

    def advise(self, top: int = 8):
        """Mine this session's history into an :class:`~repro.olap.advisor.AdvisorReport`.

        See :class:`~repro.olap.advisor.WorkloadAdvisor` — recommends
        canonical query keys to pre-materialize, cache entries to pin
        against LRU eviction, entries to evict early, and a fitted cost
        model, each with its predicted rows-touched benefit.
        """
        from repro.olap.advisor import WorkloadAdvisor

        return WorkloadAdvisor(self).report(top=top)

    def apply_recommendations(self, report) -> Dict[str, int]:
        """Apply an advisor report to this session (warm + pin the cache).

        Materializes every recommended query that is not already cached
        (through :meth:`execute`, so the results flow into the persistent
        store when one is configured), pins the recommended entries
        against LRU eviction, and drops the early-evict ones.  Returns
        counts per action, e.g. ``{"materialized": 2, "pinned": 3,
        "evicted": 1}``.
        """
        from repro.olap.advisor import apply_recommendations

        return apply_recommendations(self, report)

    @property
    def maintainer(self) -> DeltaMaintainer:
        """The delta maintainer patching cached results after instance updates."""
        return self._maintainer

    @property
    def parallel(self) -> Optional[ParallelExecutor]:
        """The shard-parallel executor (None for a single-worker session)."""
        return self._parallel

    @property
    def workers(self) -> int:
        """The session's worker-pool size (1 = fully serial)."""
        return self._parallel.workers if self._parallel is not None else 1

    @property
    def engine(self) -> str:
        """The from-scratch evaluator's engine: ``"rows"`` or ``"columnar"``."""
        return self.evaluator.engine

    @property
    def entailment(self) -> Optional[str]:
        """The session's entailment mode: None, ``"saturate"`` or ``"rewrite"``."""
        return self._entailment

    def _sync_entailment(self) -> None:
        """Re-align the saturated evaluation graph with the source instance.

        Only meaningful under ``entailment="saturate"``: addition-only
        deltas (instance *or* schema triples) are added to the closure and
        the fixpoint re-run in place — the closure's own change log then
        carries the entailed additions, so the delta maintainer can patch
        cached cubes exactly as it would for asserted triples.  Any removal
        is non-monotone and rebuilds the closure outright (clearing degrades
        the change log to the full-invalidation sentinel, which is the
        honest answer for derived results).
        """
        if self._entailment != "saturate":
            return
        source = self.source_instance
        if source.version == self._entailment_version:
            return
        delta = source.deltas_since(self._entailment_version)
        if delta is not None and not delta.removed:
            decode = source.decode_id
            for subject_id, predicate_id, object_id in delta.added:
                self.instance.add(
                    Triple(decode(subject_id), decode(predicate_id), decode(object_id))
                )
            saturate(self.instance, in_place=True)
        else:
            self.instance.clear()
            self.instance.add_all(source)
            saturate(self.instance, in_place=True)
        self._entailment_version = source.version

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (the session stays queryable
        serially, but the parallel pools are gone for good)."""
        return self._closed

    def close(self) -> None:
        """Release the parallel worker pools (idempotent; no-op when serial).

        Safe to call any number of times — a second close does nothing.
        After closing, the executor refuses to rebuild its pools, so a
        closed session can never leak worker processes; serial execution
        still works.  ``__exit__`` always calls this, so leaving the
        ``with`` block through an exception shuts down the thread *and*
        process pools too.
        """
        if self._closed:
            return
        self._closed = True
        if self._parallel is not None:
            self._parallel.close()

    def __enter__(self) -> "OLAPSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _parallel_is_cheaper(self, query: AnalyticalQuery) -> bool:
        """True when the partitioned path is priced below serial scratch."""
        if self._parallel is None or not self._parallel.supports(query):
            return False
        statistics = self.evaluator.bgp_evaluator.statistics
        parallel_cost = estimate_parallel_cost(
            statistics,
            query,
            self._parallel.workers,
            self._parallel.shard_count,
            dispatch_cost=self._cost_model.dispatch_cost(self.instance),
            merge_cell_cost=self._cost_model.merge_cell_cost,
        )
        return parallel_cost < estimate_scratch_cost(statistics, query)

    def _try_refresh(self, query: AnalyticalQuery) -> Optional[CacheEntry]:
        """Refresh a stale cache entry for ``query`` when priced cheaper.

        Compares the delta-based refresh estimate against the from-scratch
        estimate (same rows-touched unit the planner uses) and patches the
        entry only when refreshing wins; returns the refreshed (now fresh)
        entry or None.  This is how ``execute`` — and the plan-strategy
        origin lookup in :meth:`transform` — keeps serving materialized
        results across instance updates instead of recomputing them.
        """
        found = self._cache.stale_entry(query, self.instance)
        if found is None:
            return None
        entry, delta = found
        # An entry the refresh scheduler marked lazy was already priced (and
        # chosen for refresh-on-read) when its batch published: patch it now
        # without second-guessing that decision.
        if not self._cache.is_lazy(entry.key):
            # Same pricing as the planner's candidates (see
            # DeltaMaintainer.price_refresh), so execute() and transform()
            # never disagree on the refresh-vs-recompute call.
            refresh_cost, scratch_cost = self._maintainer.price_refresh(
                entry.materialized, delta, engine=self.engine
            )
            if refresh_cost >= scratch_cost:
                return None
        return self._cache.refresh(query, self.instance, self._maintainer)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def execute(self, query: AnalyticalQuery, materialize_partial: Optional[bool] = None) -> Cube:
        """Answer ``query`` and materialize its results (cache-first).

        When the cache (memory or disk store) already holds the query's
        canonical form — with a partial result if one is requested — the
        stored answer is returned without touching the instance; the history
        records the ``cache`` strategy.
        """
        keep_partial = (
            self._materialize_partial if materialize_partial is None else materialize_partial
        )
        self._sync_entailment()
        started = time.perf_counter()
        entry = self._cache.get(query, self.instance, require_partial=keep_partial)
        if entry is None:
            # A stale entry may be cheaper to patch from the graph's change
            # log than to recompute (refreshed entries always carry pres).
            entry = self._try_refresh(query)
            if entry is not None:
                strategy = "refresh"
                materialized = entry.materialized
                input_rows = len(materialized.answer)
        else:
            strategy = "cache" if entry.origin == "memory" else "cache[disk]"
            materialized = entry.materialized
            input_rows = len(materialized.answer)
        if entry is None:
            # Stamp the entry with the version observed *before* evaluating:
            # a mutation interleaved between materialization and insertion
            # must yield a born-stale entry, never a fresh-stamped one
            # holding stale cells.
            observed_version = self.instance.version
            if self._parallel_is_cheaper(query):
                materialized = self._parallel.evaluate(
                    query, materialize_partial=keep_partial
                )
                strategy = "parallel"
            else:
                materialized = self.evaluator.evaluate(query, materialize_partial=keep_partial)
                strategy = (
                    "scratch" if self._entailment is None else f"scratch[{self._entailment}]"
                )
            self._cache.put(query, materialized, self.instance, version=observed_version)
            input_rows = len(self.instance)
        elapsed = time.perf_counter() - started
        self._queries[query.name] = query
        answer = materialized.answer
        self.history.append(
            TransformationRecord(
                query_name=query.name,
                operation="execute",
                strategy=strategy,
                seconds=elapsed,
                input_rows=input_rows,
                output_cells=len(answer),
                execute_seconds=elapsed,
            )
        )
        return Cube(answer, query)

    def _resolve_query(self, query: Union[str, AnalyticalQuery]) -> AnalyticalQuery:
        if isinstance(query, str):
            if query not in self._queries:
                raise MaterializationError(
                    f"query {query!r} has not been executed in this session; call execute() first"
                )
            return self._queries[query]
        return query

    def materialized(self, query: Union[str, AnalyticalQuery]) -> MaterializedQueryResults:
        """The materialized results of a previously executed query.

        Raises :class:`~repro.errors.MaterializationError` when the query
        was never executed here or its cache entry has been evicted or
        invalidated by an instance mutation.
        """
        self._sync_entailment()
        resolved = self._resolve_query(query)
        entry = self._cache.get(resolved, self.instance)
        if entry is None:
            raise MaterializationError(
                f"query {resolved.name!r} has not been executed in this session (or its "
                f"cached results were evicted); call execute() first"
            )
        return entry.materialized

    def executed_queries(self) -> Tuple[str, ...]:
        return tuple(self._queries)

    def forget(self, query: Union[str, AnalyticalQuery]) -> None:
        """Drop a query's materialized results and name binding (frees memory)."""
        name = query if isinstance(query, str) else query.name
        resolved = self._queries.pop(name, None)
        if resolved is not None:
            self._cache.discard(resolved)
        elif isinstance(query, AnalyticalQuery):
            self._cache.discard(query)

    # ------------------------------------------------------------------
    # persistence of materialized results
    # ------------------------------------------------------------------

    def save_materialized(self, query: Union[str, AnalyticalQuery], directory: str) -> None:
        """Persist a query's materialized results (see :mod:`repro.persistence`)."""
        from repro.persistence import save_materialized_results

        save_materialized_results(self.materialized(query), directory)

    def restore_materialized(self, query: AnalyticalQuery, directory: str) -> MaterializedQueryResults:
        """Load previously saved materialized results and register them in this session.

        After restoring, OLAP transformations on ``query`` can be answered by
        rewriting without re-executing it against the instance.
        """
        from repro.persistence import load_materialized_results

        materialized = load_materialized_results(directory, query)
        self._queries[query.name] = query
        self._cache.put(query, materialized, self.instance, persist=False)
        return materialized

    # ------------------------------------------------------------------
    # OLAP transformations
    # ------------------------------------------------------------------

    def transform(
        self,
        query: Union[str, AnalyticalQuery],
        operation: OLAPOperation,
        strategy: str = "plan",
        materialize: bool = True,
    ) -> Cube:
        """Apply an OLAP operation to a query and answer the result.

        Parameters
        ----------
        query:
            The origin query (or its name) the operation transforms.
        operation:
            The OLAP operation (SLICE / DICE / DRILL-OUT / DRILL-IN).
        strategy:
            ``"plan"`` (default) — cost-based choice among cached answers,
            the paper's rewritings, compatible cached views and scratch;
            ``"rewrite"`` — force the paper's rewriting algorithms (raises
            when the needed materialized input is missing);
            ``"scratch"`` — force re-evaluation on the instance;
            ``"auto"`` — rewrite when possible, otherwise scratch.
        materialize:
            Whether to store the transformed query's results for further
            navigation.
        """
        if strategy not in ("plan", "auto", "rewrite", "scratch"):
            raise OLAPError(
                f"unknown strategy {strategy!r}; expected plan, auto, rewrite or scratch"
            )
        self._sync_entailment()
        original_query = self._resolve_query(query)
        transformed_query = operation.apply(original_query)
        origin_entry = self._cache.get(original_query, self.instance)
        if (
            origin_entry is None
            and strategy == "plan"
            and self._cache.peek(transformed_query, self.instance) is None
            and self._cache.stale_entry(transformed_query, self.instance) is None
        ):
            # The origin's materialized results went stale under an instance
            # update.  Unless the transformed query itself is freshly cached
            # (the planner will just serve it) or patchable in place (the
            # planner's refresh-cached candidate covers it without touching
            # the origin), patching the origin when priced cheaper than
            # recomputing restores every rewrite candidate for this and
            # subsequent operations.  The forced rewrite/scratch/auto
            # baselines stay pure and never refresh.
            origin_entry = self._try_refresh(original_query)
        origin_materialized = origin_entry.materialized if origin_entry is not None else None
        if strategy == "rewrite" and origin_materialized is None:
            raise MaterializationError(
                f"query {original_query.name!r} has no materialized results in this session; "
                f"call execute() first (or use the plan/auto/scratch strategies)"
            )

        details: Dict[str, object] = {}
        started = time.perf_counter()
        plan_seconds = 0.0
        transformed_partial = None
        # Version observed when the transformed result is materialized (see
        # ResultCache.put: the stamp must predate the evaluation, not the
        # insertion).
        observed_version = self.instance.version
        if strategy == "scratch":
            answer, used, input_rows = self._scratch(original_query, operation, transformed_query)
        elif strategy == "rewrite":
            answer, used, input_rows, transformed_partial = self._rewrite(
                origin_materialized, operation, transformed_query, materialize_partial=materialize
            )
        elif strategy == "auto":
            # "Rewrite when possible, otherwise scratch": a missing origin
            # entry (capacity 0, LRU eviction, graph mutation) means the
            # rewriting inputs are gone, which is just another reason to
            # fall back.
            try:
                if origin_materialized is None:
                    raise MaterializationError(
                        f"no materialized results for {original_query.name!r}"
                    )
                answer, used, input_rows, transformed_partial = self._rewrite(
                    origin_materialized, operation, transformed_query, materialize_partial=materialize
                )
            except (MaterializationError, OLAPError):
                answer, used, input_rows = self._scratch(original_query, operation, transformed_query)
        else:  # plan
            plan = self._planner.plan(
                original_query,
                operation,
                transformed_query,
                origin_materialized,
                materialize_partial=materialize,
            )
            plan_seconds = time.perf_counter() - started
            answer, transformed_partial = plan.execute()
            chosen = plan.chosen
            used = f"plan[{chosen.strategy}]"
            input_rows = chosen.input_rows
            details["plan"] = plan.explain()
            details["estimated_cost"] = chosen.cost
        elapsed = time.perf_counter() - started

        if materialize:
            if used in ("plan[cached]", "plan[refresh-cached]"):
                # The answer is already the cache entry for this very query
                # (served, or patched in place and re-stamped by the refresh
                # path): re-storing and re-persisting it would be pure
                # overhead.
                self._queries[transformed_query.name] = transformed_query
            else:
                self._store_transformed(
                    transformed_query, answer, transformed_partial, version=observed_version
                )

        self.history.append(
            TransformationRecord(
                query_name=transformed_query.name,
                operation=operation.describe(),
                strategy=used,
                seconds=elapsed,
                input_rows=input_rows,
                output_cells=len(answer),
                details=details,
                plan_seconds=plan_seconds,
                execute_seconds=max(0.0, elapsed - plan_seconds),
            )
        )
        return Cube(answer, transformed_query)

    def _rewrite(
        self,
        materialized: MaterializedQueryResults,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
        materialize_partial: bool = False,
    ):
        result = self._rewriter.answer(
            materialized, operation, transformed_query, materialize_partial=materialize_partial
        )
        if result.used_partial:
            input_rows = len(materialized.partial)
        elif result.used_answer:
            input_rows = len(materialized.answer)
        else:  # pragma: no cover - every current rewriting uses one of the two
            input_rows = 0
        return result.answer, f"rewrite[{result.strategy}]", input_rows, result.partial

    def _scratch(
        self,
        original_query: AnalyticalQuery,
        operation: OLAPOperation,
        transformed_query: AnalyticalQuery,
    ) -> Tuple[CubeAnswer, str, int]:
        answer = transformed_answer_from_scratch(
            self.evaluator, original_query, operation, transformed_query
        )
        used = "scratch" if self._entailment is None else f"scratch[{self._entailment}]"
        return answer, used, len(self.instance)

    def _store_transformed(
        self,
        transformed_query: AnalyticalQuery,
        answer: CubeAnswer,
        partial=None,
        version: Optional[int] = None,
    ) -> None:
        self._queries[transformed_query.name] = transformed_query
        self._cache.put(
            transformed_query,
            MaterializedQueryResults(transformed_query, answer=answer, partial=partial),
            self.instance,
            version=version,
        )

    def explain_last(self) -> str:
        """Describe the session's most recent operation.

        Planned transformations return their full costed plan (the
        candidate table of :meth:`~repro.olap.planner.Plan.explain`);
        operations that never went through the planner — cache hits,
        refresh-served and parallel executes, the forced
        rewrite/scratch/auto strategies — return their one-line history
        record (strategy, row counts, timing) instead of a placeholder.
        """
        if not self.history:
            return "(no operations in this session's history)"
        record = self.history[-1]
        plan = record.details.get("plan")
        if plan is not None:
            return str(plan)
        return str(record)

    # ------------------------------------------------------------------
    # roll-up along dimension hierarchies (extension beyond the paper)
    # ------------------------------------------------------------------

    def roll_up(
        self,
        query: Union[str, AnalyticalQuery],
        dimension: str,
        hierarchy,
        aggregate: Optional[str] = None,
        strategy: str = "plan",
    ) -> Cube:
        """Roll a cube up along a dimension hierarchy.

        A thin wrapper over :meth:`transform` with a
        :class:`~repro.olap.operations.RollUp` operation, so roll-ups go
        through the standard history path: the record carries the
        plan/execute timing split and the planner's ``estimated_cost``
        (feeding :meth:`fit_cost_model` and the advisor), and the rolled
        cube is materialized in the cache — a subsequent coarser roll-up
        can be answered from it (the ``rollup-from-cached`` lattice
        candidate), and :meth:`drill_down` can navigate back.

        The returned cube is bound to the *rolled* query (its rollup stack
        records the hierarchy stage), not the origin query.
        """
        original_query = self._resolve_query(query)
        if aggregate is not None and aggregate != getattr(original_query.aggregate, "name", None):
            raise OLAPError(
                f"session roll-up keeps the query's own aggregate "
                f"({getattr(original_query.aggregate, 'name', '?')}); for ad-hoc "
                f"re-aggregation use repro.olap.hierarchy.roll_up_from_partial"
            )
        return self.transform(original_query, RollUp(dimension, hierarchy), strategy=strategy)

    def drill_down(
        self,
        query: Union[str, AnalyticalQuery],
        dimension: Optional[str] = None,
        strategy: str = "plan",
    ) -> Cube:
        """Undo the most recent roll-up of a rolled query (inverse navigation).

        ``dimension`` optionally asserts which dimension the popped stage
        rolled (validation only).  Routed through :meth:`transform` like
        every other operation: the planner typically serves the finer cube
        straight from the cache (it was materialized on the way up) or
        re-rolls it from a cached ancestor; scratch evaluation is the
        always-available fallback.
        """
        original_query = self._resolve_query(query)
        return self.transform(original_query, DrillDown(dimension), strategy=strategy)

    # ------------------------------------------------------------------
    # comparisons (used by examples / tests / benches)
    # ------------------------------------------------------------------

    def compare_strategies(
        self, query: Union[str, AnalyticalQuery], operation: OLAPOperation
    ) -> Dict[str, object]:
        """Answer the transformed query with both strategies and compare.

        Returns a dictionary with both cubes, their timings and whether the
        cell contents agree — the building block of the experiment harness.
        """
        materialized = self.materialized(query)
        original_query = materialized.query
        transformed_query = operation.apply(original_query)

        started = time.perf_counter()
        rewritten, rewrite_strategy, _, _ = self._rewrite(materialized, operation, transformed_query)
        rewrite_seconds = time.perf_counter() - started

        started = time.perf_counter()
        scratch, _, _ = self._scratch(original_query, operation, transformed_query)
        scratch_seconds = time.perf_counter() - started

        rewritten_cube = Cube(rewritten, transformed_query)
        scratch_cube = Cube(scratch, transformed_query)
        return {
            "operation": operation.describe(),
            "rewrite_cube": rewritten_cube,
            "scratch_cube": scratch_cube,
            "rewrite_seconds": rewrite_seconds,
            "scratch_seconds": scratch_seconds,
            "speedup": (scratch_seconds / rewrite_seconds) if rewrite_seconds > 0 else float("inf"),
            "equal": rewritten_cube.same_cells(scratch_cube),
            "strategy": rewrite_strategy,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OLAPSession({len(self.instance)} instance triples, "
            f"{len(self._cache)} cached results)"
        )
