"""Benchmark harness: timing helpers, experiment workloads, Markdown reports."""

from repro.bench.harness import Measurement, ResultTable, compare_callables, time_callable
from repro.bench.reporting import report_to_markdown, table_to_markdown, write_report
from repro.bench.workloads import (
    SCALES,
    experiment_aggregates,
    experiment_dice_selectivity,
    experiment_dimensionality,
    experiment_multivalue_fanout,
    experiment_operations_table,
    experiment_pres_storage,
    experiment_scaling,
    run_all_experiments,
)

__all__ = [
    "Measurement",
    "ResultTable",
    "time_callable",
    "compare_callables",
    "table_to_markdown",
    "report_to_markdown",
    "write_report",
    "SCALES",
    "experiment_operations_table",
    "experiment_scaling",
    "experiment_dice_selectivity",
    "experiment_multivalue_fanout",
    "experiment_dimensionality",
    "experiment_pres_storage",
    "experiment_aggregates",
    "run_all_experiments",
]
