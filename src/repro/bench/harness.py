"""Timing harness and result tables for the experiment suite.

The pytest-benchmark files under ``benchmarks/`` measure individual
operations; this module provides the complementary *report* layer used by
the examples, by EXPERIMENTS.md regeneration and by the benchmark modules'
table printing: run a set of (labelled) callables a few times, collect
milliseconds, and render rows the way the paper's evaluation tables do
(operation, strategy, input size, time, speedup).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["Measurement", "ResultTable", "time_callable", "compare_callables"]


@dataclass
class Measurement:
    """The timing result of one measured callable."""

    label: str
    seconds: List[float] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def best(self) -> float:
        return min(self.seconds) if self.seconds else float("nan")

    @property
    def mean(self) -> float:
        return statistics.fmean(self.seconds) if self.seconds else float("nan")

    @property
    def median(self) -> float:
        return statistics.median(self.seconds) if self.seconds else float("nan")

    def milliseconds(self) -> float:
        """Median runtime in milliseconds (the figure reported in tables)."""
        return self.median * 1000.0


def time_callable(
    label: str,
    function: Callable[[], object],
    repeats: int = 3,
    warmup: int = 1,
    metadata: Optional[Dict[str, object]] = None,
) -> Measurement:
    """Time ``function`` ``repeats`` times after ``warmup`` unmeasured runs."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    for _ in range(warmup):
        function()
    measurement = Measurement(label=label, metadata=dict(metadata or {}))
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        measurement.seconds.append(time.perf_counter() - started)
    return measurement


def compare_callables(
    cases: Sequence[tuple],
    repeats: int = 3,
    warmup: int = 1,
) -> List[Measurement]:
    """Time several ``(label, callable)`` or ``(label, callable, metadata)`` cases."""
    measurements = []
    for case in cases:
        if len(case) == 2:
            label, function = case
            metadata = None
        else:
            label, function, metadata = case
        measurements.append(time_callable(label, function, repeats=repeats, warmup=warmup, metadata=metadata))
    return measurements


class ResultTable:
    """A small column-aligned text table (the shape of the paper's tables)."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values ({self.columns}), got {len(values)}"
            )
        self.rows.append([self._render(value) for value in values])

    @staticmethod
    def _render(value: object) -> str:
        if isinstance(value, float):
            if value >= 100:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    def to_text(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append("  ".join(column.ljust(width) for column, width in zip(self.columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.to_text())

    def __str__(self) -> str:
        return self.to_text()
