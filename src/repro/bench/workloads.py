"""Experiment workload definitions (the EXP-* index of DESIGN.md).

Each experiment is a function returning a :class:`~repro.bench.harness.ResultTable`
with the rows/series the corresponding table or figure of the evaluation
reports: the OLAP operation, the answering strategy (rewriting vs. from
scratch), instance / materialized-input sizes, the measured times and the
speedup.  The pytest-benchmark modules under ``benchmarks/`` reuse the same
building blocks for statistically careful per-operation timing; these
functions are about regenerating whole tables/series in one call (used by
``examples/`` and to fill EXPERIMENTS.md).

All experiments accept a ``scale`` knob so they can be run quickly in CI
(`scale="small"`) or at a size closer to the paper's setting
(`scale="paper"`).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.bench.harness import Measurement, ResultTable, time_callable
from repro.datagen.blogger import BloggerConfig, blogger_dataset, sites_per_blogger_query, words_per_blogger_query
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.datagen.videos import VideoConfig, video_dataset, views_per_url_query
from repro.olap.cache import canonical_query_key
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, OLAPOperation, Slice
from repro.olap.rewriting import drill_out_from_answer_naive
from repro.olap.session import OLAPSession

__all__ = [
    "SCALES",
    "bench_scale_from_env",
    "experiment_operations_table",
    "experiment_scaling",
    "experiment_dice_selectivity",
    "experiment_multivalue_fanout",
    "experiment_dimensionality",
    "experiment_pres_storage",
    "experiment_aggregates",
    "experiment_engine_idspace",
    "experiment_planner_sessions",
    "experiment_advisor_sessions",
    "experiment_incremental_refresh",
    "experiment_parallel_scaling",
    "experiment_serving",
    "experiment_ingest",
    "serving_load_run",
    "serving_fact_batch",
    "ingest_load_run",
    "ingest_mutation_stream",
    "blogger_session_replay",
    "video_session_replay",
    "blogger_update_batch",
    "video_update_batch",
    "replay_session",
    "replay_on_session",
    "advisor_session_comparison",
    "replay_after_update",
    "run_all_experiments",
]

#: Named experiment scales: triple-count targets for the scaling sweeps and
#: fact counts for the fixed-size experiments.
SCALES: Dict[str, Dict[str, object]] = {
    "tiny": {"facts": 200, "sweep": [100, 200, 400], "bloggers": 150, "videos": 150, "repeats": 2},
    "small": {"facts": 1000, "sweep": [250, 500, 1000, 2000], "bloggers": 600, "videos": 500, "repeats": 3},
    "paper": {"facts": 5000, "sweep": [1000, 2000, 5000, 10000, 20000], "bloggers": 3000, "videos": 2000, "repeats": 3},
}


def _scale(scale: str) -> Dict[str, object]:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    return SCALES[scale]


def bench_scale_from_env(default: str = "small") -> str:
    """The benchmark scale selected via the ``REPRO_BENCH_SCALE`` environment variable."""
    import os

    scale = os.environ.get("REPRO_BENCH_SCALE", default)
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {scale!r}"
        )
    return scale


def _first_dimension_value(session: OLAPSession, query: AnalyticalQuery, dimension: str):
    """A dimension value present in the materialized answer (for SLICE/DICE)."""
    cube = Cube(session.materialized(query).answer, query)
    values = sorted(cube.dimension_values(dimension), key=repr)
    if not values:
        raise ValueError(f"dimension {dimension!r} has no values in the answer of {query.name!r}")
    return values[0]


def _dimension_values(session: OLAPSession, query: AnalyticalQuery, dimension: str, count: int) -> list:
    cube = Cube(session.materialized(query).answer, query)
    values = sorted(cube.dimension_values(dimension), key=repr)
    return values[: max(1, count)]


# ---------------------------------------------------------------------------
# EXP-1: per-operation comparison on the blogger scenario (Table 1)
# ---------------------------------------------------------------------------


def experiment_operations_table(scale: str = "small", repeats: Optional[int] = None) -> ResultTable:
    """EXP-1: rewriting vs. from-scratch for each OLAP operation, fixed instance."""
    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    dataset = blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"])))
    session = OLAPSession(dataset.instance, dataset.schema)
    query = sites_per_blogger_query(dataset.schema)
    session.execute(query)

    age = _first_dimension_value(session, query, "dage")
    cities = _dimension_values(session, query, "dcity", 3)
    operations: List[Tuple[str, OLAPOperation]] = [
        ("SLICE", Slice("dage", age)),
        ("DICE", Dice({"dage": (20, 40), "dcity": cities})),
        ("DRILL-OUT", DrillOut("dage")),
        ("DRILL-IN", DrillIn("p")),
    ]
    # DRILL-IN needs a classifier body variable; the Example 1 classifier has
    # none beyond the dimensions, so use the words query (same classifier)
    # drilled into via a richer classifier: instead, drill in on the video
    # scenario below.  For the blogger table we use a classifier that walks
    # posts.  Simpler: skip DRILL-IN here if not applicable.
    table = ResultTable(
        ["operation", "strategy", "input rows", "time (ms)", "speedup", "cells", "equal"],
        title=f"EXP-1 — OLAP operations on the blogger cube ({len(dataset.instance)} instance triples)",
    )
    materialized = session.materialized(query)
    for label, operation in operations:
        try:
            operation.validate(query)
        except Exception:
            continue
        comparison = session.compare_strategies(query, operation)
        rewrite_ms = comparison["rewrite_seconds"] * 1000
        scratch_ms = comparison["scratch_seconds"] * 1000
        input_rows = (
            len(materialized.answer)
            if label in ("SLICE", "DICE")
            else len(materialized.partial)
        )
        table.add_row(label, "rewrite", input_rows, rewrite_ms, comparison["speedup"], len(comparison["rewrite_cube"]), comparison["equal"])
        table.add_row(label, "scratch", len(dataset.instance), scratch_ms, 1.0, len(comparison["scratch_cube"]), comparison["equal"])

    # DRILL-IN on the video scenario (Example 6 structure).
    video = video_dataset(VideoConfig(videos=int(parameters["videos"])))
    video_session = OLAPSession(video.instance, video.schema)
    video_query = views_per_url_query(video.schema)
    video_session.execute(video_query)
    comparison = video_session.compare_strategies(video_query, DrillIn("d3"))
    video_materialized = video_session.materialized(video_query)
    table.add_row(
        "DRILL-IN", "rewrite", len(video_materialized.partial),
        comparison["rewrite_seconds"] * 1000, comparison["speedup"],
        len(comparison["rewrite_cube"]), comparison["equal"],
    )
    table.add_row(
        "DRILL-IN", "scratch", len(video.instance),
        comparison["scratch_seconds"] * 1000, 1.0,
        len(comparison["scratch_cube"]), comparison["equal"],
    )
    return table


# ---------------------------------------------------------------------------
# EXP-2/3/4: scaling sweeps (Figures A-C)
# ---------------------------------------------------------------------------


def experiment_scaling(
    operation_kind: str = "slice",
    scale: str = "small",
    repeats: Optional[int] = None,
) -> ResultTable:
    """EXP-2/3/4: rewriting vs. scratch as the instance grows.

    ``operation_kind`` is one of ``"slice"``, ``"dice"``, ``"drill-out"``,
    ``"drill-in"``.
    """
    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    sweep: Sequence[int] = parameters["sweep"]  # type: ignore[assignment]
    table = ResultTable(
        ["facts", "instance triples", "pres rows", "rewrite (ms)", "scratch (ms)", "speedup", "equal"],
        title=f"EXP scaling — {operation_kind.upper()} rewriting vs. scratch",
    )
    for facts in sweep:
        config = GenericConfig(
            facts=int(facts),
            dimensions=3,
            values_per_dimension=1.4,
            measures_per_fact=2.0,
            with_detail=True,
        )
        dataset = generic_dataset(config)
        query = generic_query(config, aggregate="count", include_detail_in_classifier=(operation_kind == "drill-in"))
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        operation = _operation_for(operation_kind, session, query)
        comparison = session.compare_strategies(query, operation)
        table.add_row(
            facts,
            len(dataset.instance),
            len(session.materialized(query).partial),
            comparison["rewrite_seconds"] * 1000,
            comparison["scratch_seconds"] * 1000,
            comparison["speedup"],
            comparison["equal"],
        )
    return table


def _operation_for(kind: str, session: OLAPSession, query: AnalyticalQuery) -> OLAPOperation:
    if kind == "slice":
        value = _first_dimension_value(session, query, query.dimension_names[0])
        return Slice(query.dimension_names[0], value)
    if kind == "dice":
        first = _dimension_values(session, query, query.dimension_names[0], 5)
        second = _dimension_values(session, query, query.dimension_names[1], 5)
        return Dice({query.dimension_names[0]: first, query.dimension_names[1]: second})
    if kind == "drill-out":
        return DrillOut(query.dimension_names[-1])
    if kind == "drill-in":
        return DrillIn("da")
    raise ValueError(f"unknown operation kind {kind!r}")


# ---------------------------------------------------------------------------
# EXP-5: DICE selectivity sweep (Figure D)
# ---------------------------------------------------------------------------


def experiment_dice_selectivity(scale: str = "small") -> ResultTable:
    """EXP-5: DICE cost as the retained fraction of dimension values varies."""
    parameters = _scale(scale)
    config = GenericConfig(facts=int(parameters["facts"]), dimensions=2, dimension_cardinality=50)
    dataset = generic_dataset(config)
    query = dataset.query
    session = OLAPSession(dataset.instance, dataset.schema)
    session.execute(query)
    dimension = query.dimension_names[0]
    all_values = sorted(
        Cube(session.materialized(query).answer, query).dimension_values(dimension), key=repr
    )
    table = ResultTable(
        ["selectivity", "values kept", "rewrite (ms)", "scratch (ms)", "speedup", "cells", "equal"],
        title="EXP-5 — DICE selectivity sweep",
    )
    for fraction in (0.05, 0.1, 0.25, 0.5, 0.75, 1.0):
        keep = max(1, int(len(all_values) * fraction))
        operation = Dice({dimension: all_values[:keep]})
        comparison = session.compare_strategies(query, operation)
        table.add_row(
            f"{fraction:.2f}",
            keep,
            comparison["rewrite_seconds"] * 1000,
            comparison["scratch_seconds"] * 1000,
            comparison["speedup"],
            len(comparison["rewrite_cube"]),
            comparison["equal"],
        )
    return table


# ---------------------------------------------------------------------------
# EXP-6: multi-valuedness fan-out (Figure E) + naive-ans error demonstration
# ---------------------------------------------------------------------------


def experiment_multivalue_fanout(scale: str = "small") -> ResultTable:
    """EXP-6: drill-out under increasing dimension fan-out.

    Reports both the performance of Algorithm 1 and the *correctness gap* of
    the naive ans(Q)-based re-aggregation (Example 5): the number of cube
    cells whose naive value differs from the correct one.
    """
    parameters = _scale(scale)
    table = ResultTable(
        ["fan-out", "pres rows", "rewrite (ms)", "scratch (ms)", "speedup", "naive wrong cells", "equal"],
        title="EXP-6 — DRILL-OUT vs. dimension multi-valuedness",
    )
    for fanout in (1.0, 1.25, 1.5, 2.0, 3.0):
        config = GenericConfig(
            facts=int(parameters["facts"]),
            dimensions=2,
            values_per_dimension=fanout,
            measures_per_fact=1.5,
            with_detail=False,
        )
        dataset = generic_dataset(config)
        query = generic_query(config, aggregate="sum")
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        operation = DrillOut(query.dimension_names[-1])
        comparison = session.compare_strategies(query, operation)

        transformed = operation.apply(query)
        naive = drill_out_from_answer_naive(session.materialized(query).answer, transformed)
        correct_cube = comparison["scratch_cube"]
        naive_cube = Cube(naive, transformed)
        wrong = _differing_cells(naive_cube, correct_cube)
        table.add_row(
            f"{fanout:.2f}",
            len(session.materialized(query).partial),
            comparison["rewrite_seconds"] * 1000,
            comparison["scratch_seconds"] * 1000,
            comparison["speedup"],
            wrong,
            comparison["equal"],
        )
    return table


def _differing_cells(left: Cube, right: Cube) -> int:
    from repro.algebra.expressions import comparable

    left_cells = {tuple(comparable(v) for v in key): comparable(value) for key, value in left}
    right_cells = {tuple(comparable(v) for v in key): comparable(value) for key, value in right}
    keys = set(left_cells) | set(right_cells)
    differing = 0
    for key in keys:
        if key not in left_cells or key not in right_cells:
            differing += 1
            continue
        a, b = left_cells[key], right_cells[key]
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if abs(float(a) - float(b)) > 1e-9:
                differing += 1
        elif a != b:
            differing += 1
    return differing


# ---------------------------------------------------------------------------
# EXP-7: dimensionality (Table 2)
# ---------------------------------------------------------------------------


def experiment_dimensionality(scale: str = "small") -> ResultTable:
    """EXP-7: drill-out / drill-in cost as the number of dimensions grows."""
    parameters = _scale(scale)
    table = ResultTable(
        ["dimensions", "operation", "rewrite (ms)", "scratch (ms)", "speedup", "equal"],
        title="EXP-7 — varying the number of classifier dimensions",
    )
    for dimensions in (2, 3, 4, 5):
        config = GenericConfig(
            facts=int(parameters["facts"]),
            dimensions=dimensions,
            values_per_dimension=1.3,
            with_detail=True,
        )
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)

        query = generic_query(config, aggregate="count")
        session.execute(query)
        comparison = session.compare_strategies(query, DrillOut(query.dimension_names[-1]))
        table.add_row(
            dimensions, "DRILL-OUT",
            comparison["rewrite_seconds"] * 1000, comparison["scratch_seconds"] * 1000,
            comparison["speedup"], comparison["equal"],
        )

        detail_query = generic_query(
            config, aggregate="count", include_detail_in_classifier=True, name="Qd"
        )
        session.execute(detail_query)
        comparison = session.compare_strategies(detail_query, DrillIn("da"))
        table.add_row(
            dimensions, "DRILL-IN",
            comparison["rewrite_seconds"] * 1000, comparison["scratch_seconds"] * 1000,
            comparison["speedup"], comparison["equal"],
        )
    return table


# ---------------------------------------------------------------------------
# EXP-8: pres(Q) storage ablation
# ---------------------------------------------------------------------------


def experiment_pres_storage(scale: str = "small") -> ResultTable:
    """EXP-8: size of the materialized inputs relative to the instance."""
    parameters = _scale(scale)
    sweep: Sequence[int] = parameters["sweep"]  # type: ignore[assignment]
    table = ResultTable(
        ["facts", "instance triples", "ans cells", "pres rows", "int rows", "pres/instance"],
        title="EXP-8 — materialized-input sizes (ans, pres, int) vs. instance size",
    )
    for facts in sweep:
        config = GenericConfig(facts=int(facts), dimensions=3, values_per_dimension=1.4)
        dataset = generic_dataset(config)
        evaluator = AnalyticalQueryEvaluator(dataset.instance)
        query = dataset.query
        partial = evaluator.partial_result(query)
        answer = evaluator.answer_from_partial(query, partial)
        intermediary = evaluator.intermediary_result(query)
        ratio = len(partial) / max(len(dataset.instance), 1)
        table.add_row(facts, len(dataset.instance), len(answer), len(partial), len(intermediary), ratio)
    return table


# ---------------------------------------------------------------------------
# EXP-9: aggregation-function ablation
# ---------------------------------------------------------------------------


def experiment_aggregates(scale: str = "small") -> ResultTable:
    """EXP-9: effect of the aggregation function on drill-out rewriting."""
    parameters = _scale(scale)
    dataset = blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"])))
    table = ResultTable(
        ["aggregate", "distributive", "rewrite (ms)", "scratch (ms)", "speedup", "equal"],
        title="EXP-9 — DRILL-OUT under different aggregation functions",
    )
    for aggregate in ("count", "sum", "avg", "min", "max"):
        query = words_per_blogger_query(dataset.schema, name=f"Q_{aggregate}")
        query = AnalyticalQuery(
            query.classifier, query.measure, aggregate, schema=dataset.schema, name=f"Q_{aggregate}"
        )
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        comparison = session.compare_strategies(query, DrillOut("dage"))
        table.add_row(
            aggregate,
            query.aggregate.distributive,
            comparison["rewrite_seconds"] * 1000,
            comparison["scratch_seconds"] * 1000,
            comparison["speedup"],
            comparison["equal"],
        )
    return table


# ---------------------------------------------------------------------------


def experiment_engine_idspace(scale: str = "small", repeats: Optional[int] = None) -> ResultTable:
    """ENGINE — the id-space refactor's before/after on from-scratch evaluation.

    Three engines answer the same queries on the same instances:

    * ``legacy`` — the frozen pre-refactor pipeline
      (:mod:`repro.bench.legacy`): dict bindings, eager decoding, per-row
      dict selections, value-tuple join keys;
    * ``decoded`` — the refactored operators with materialization forced at
      the BGP boundary (``id_space=False``): isolates what late
      materialization itself buys on top of the positional operators;
    * ``id-space`` — the default engine: encoded end-to-end, decoding at
      the result boundary only.

    Every row checks cube equality against the legacy answer; the speedup
    column is relative to legacy.
    """
    from repro.bench.legacy import LegacyAnalyticalEvaluator

    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    table = ResultTable(
        ["workload", "engine", "instance triples", "time (ms)", "speedup", "cells", "equal"],
        title="ENGINE — id-space late materialization vs. the seed pipeline (from scratch)",
    )

    blogger = blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"])))
    video = video_dataset(VideoConfig(videos=int(parameters["videos"])))
    generic_config = GenericConfig(
        facts=int(parameters["facts"]), dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0
    )
    generic = generic_dataset(generic_config)
    workloads = [
        ("blogger/count", blogger.instance, sites_per_blogger_query(blogger.schema)),
        ("blogger/avg", blogger.instance, words_per_blogger_query(blogger.schema)),
        ("video/sum", video.instance, views_per_url_query(video.schema)),
        ("generic/count", generic.instance, generic_query(generic_config, aggregate="count")),
    ]
    for label, instance, query in workloads:
        engines = [
            ("legacy", LegacyAnalyticalEvaluator(instance)),
            ("decoded", AnalyticalQueryEvaluator(instance, id_space=False)),
            ("id-space", AnalyticalQueryEvaluator(instance, id_space=True)),
        ]
        timings = {}
        cubes = {}
        for name, evaluator in engines:
            measurement = time_callable(name, lambda e=evaluator: e.answer(query), repeats=repeats)
            timings[name] = measurement.milliseconds()
            cubes[name] = Cube(evaluator.answer(query), query)
        baseline = timings["legacy"]
        for name, _ in engines:
            table.add_row(
                label,
                name,
                len(instance),
                timings[name],
                baseline / timings[name] if timings[name] > 0 else float("inf"),
                len(cubes[name]),
                cubes[name].same_cells(cubes["legacy"]),
            )
    return table


# ---------------------------------------------------------------------------
# PLANNER — replayed multi-operation sessions (the scenario the paper measures)
# ---------------------------------------------------------------------------


def blogger_session_replay(dataset) -> Tuple[AnalyticalQuery, List[Tuple[AnalyticalQuery, OLAPOperation]]]:
    """A 12-operation dashboard-style chain on the blogger cube.

    Mixes SLICE / DICE / DRILL-OUT from the root and from derived queries,
    with half the operations repeated later in the chain — the refresh
    pattern a served dashboard produces, which is what makes a bounded
    result cache pay off.  Origins are query *objects* (built by applying
    the operations up front), so replays are unambiguous for every strategy.
    """
    query = sites_per_blogger_query(dataset.schema)
    probe = Cube(AnalyticalQueryEvaluator(dataset.instance).answer(query), query)
    ages = sorted(probe.dimension_values("dage"), key=repr)
    cities = sorted(probe.dimension_values("dcity"), key=repr)
    slice_a = Slice("dage", ages[0])
    slice_b = Slice("dage", ages[min(1, len(ages) - 1)])
    dice_c = Dice({"dcity": cities[:3]})
    dice_b = Dice({"dcity": cities[:2]})
    drill = DrillOut("dage")
    q_slice = slice_a.apply(query)
    q_dice = dice_c.apply(query)
    steps = [
        (query, slice_a),
        (query, dice_c),
        (q_dice, drill),
        (query, drill),
        (query, slice_a),  # repeat -> cache hit under the planner
        (query, dice_c),  # repeat
        (q_slice, dice_b),
        (query, drill),  # repeat
        (q_dice, drill),  # repeat
        (query, slice_b),
        (query, slice_b),  # repeat
        (q_slice, dice_b),  # repeat
    ]
    return query, steps


def video_session_replay(dataset) -> Tuple[AnalyticalQuery, List[Tuple[AnalyticalQuery, OLAPOperation]]]:
    """A 10-operation drill-navigation chain on the video cube (Example 6)."""
    query = views_per_url_query(dataset.schema)
    evaluator = AnalyticalQueryEvaluator(dataset.instance)
    probe = Cube(evaluator.answer(query), query)
    urls = sorted(probe.dimension_values("d2"), key=repr)
    drill_in = DrillIn("d3")
    q_in = drill_in.apply(query)
    drilled_probe = Cube(evaluator.answer(q_in), q_in)
    browsers = sorted(drilled_probe.dimension_values("d3"), key=repr)
    slice_u = Slice("d2", urls[0])
    dice_b = Dice({"d3": browsers[: max(1, len(browsers) // 2)]})
    dice_u = Dice({"d2": urls[:3]})
    drill_back = DrillOut("d3")
    steps = [
        (query, drill_in),
        (query, slice_u),
        (q_in, dice_b),
        (query, drill_in),  # repeat
        (query, slice_u),  # repeat
        (q_in, drill_back),
        (q_in, dice_b),  # repeat
        (query, dice_u),
        (query, dice_u),  # repeat
        (q_in, drill_back),  # repeat
    ]
    return query, steps


def replay_session(
    instance,
    schema,
    root_query: AnalyticalQuery,
    steps: Sequence[Tuple[AnalyticalQuery, OLAPOperation]],
    strategy: str,
    cache_capacity: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[float, List[Cube], OLAPSession]:
    """Replay one operation session with a fixed answering strategy.

    Returns the wall-clock seconds for the whole replay (execute + every
    transform), the per-step cubes (for equality checks) and the finished
    session (for cache statistics).
    """
    kwargs = {}
    if cache_capacity is not None:
        kwargs["cache_capacity"] = cache_capacity
    if cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
    session = OLAPSession(instance, schema, **kwargs)
    cubes: List[Cube] = []
    started = time.perf_counter()
    session.execute(root_query)
    for origin, operation in steps:
        cubes.append(session.transform(origin, operation, strategy=strategy))
    elapsed = time.perf_counter() - started
    return elapsed, cubes, session


def experiment_planner_sessions(scale: str = "small", repeats: Optional[int] = None) -> ResultTable:
    """PLANNER — replayed sessions: cost-based planning vs. fixed strategies.

    Replays the blogger and video operation chains three times each — with
    the planner (``strategy="plan"``), always from scratch
    (``strategy="scratch"``) and always reusing via the paper's rewritings
    (``strategy="rewrite"``) — and reports total session time, speedup
    relative to always-scratch, cache hits, and whether every step's cube
    matched the from-scratch answer cell-for-cell.
    """
    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    table = ResultTable(
        ["session", "ops", "strategy", "time (ms)", "speedup vs scratch", "cache hits", "all equal"],
        title="PLANNER — replayed OLAP sessions: plan vs. always-scratch vs. always-reuse",
    )
    workloads = [
        (
            "blogger/12-op dashboard",
            blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"]))),
            blogger_session_replay,
        ),
        (
            "video/10-op drill chain",
            video_dataset(VideoConfig(videos=int(parameters["videos"]))),
            video_session_replay,
        ),
    ]
    for label, dataset, build in workloads:
        root_query, steps = build(dataset)
        reference_evaluator = AnalyticalQueryEvaluator(dataset.instance)
        # The three strategies replay the same queries, so each reference
        # cube is evaluated once and shared across the equality checks.
        reference_cubes: Dict[str, Cube] = {}

        def reference(cube: Cube) -> Cube:
            key = canonical_query_key(cube.query)
            if key not in reference_cubes:
                reference_cubes[key] = Cube(reference_evaluator.answer(cube.query), cube.query)
            return reference_cubes[key]

        timings: Dict[str, float] = {}
        hits: Dict[str, int] = {}
        equals: Dict[str, bool] = {}
        for strategy in ("plan", "scratch", "rewrite"):
            best = float("inf")
            for _ in range(repeats):
                elapsed, cubes, session = replay_session(
                    dataset.instance, dataset.schema, root_query, steps, strategy
                )
                best = min(best, elapsed)
            timings[strategy] = best
            hits[strategy] = session.cache.stats.hits
            equals[strategy] = all(cube.same_cells(reference(cube)) for cube in cubes)
        scratch_time = timings["scratch"]
        for strategy in ("plan", "scratch", "rewrite"):
            table.add_row(
                label,
                len(steps),
                strategy,
                timings[strategy] * 1000,
                scratch_time / timings[strategy] if timings[strategy] > 0 else float("inf"),
                hits[strategy],
                equals[strategy],
            )
    return table


# ---------------------------------------------------------------------------
# ADVISOR — profile → recommend → replay with a fitted cost model
# ---------------------------------------------------------------------------


def replay_on_session(
    session: OLAPSession,
    root_query: AnalyticalQuery,
    steps: Sequence[Tuple[AnalyticalQuery, OLAPOperation]],
) -> Tuple[float, List[Cube], int]:
    """Replay the chain on an *existing* session with the planner.

    Unlike :func:`replay_session` the session is supplied (possibly
    warm-started by advisor recommendations), so the caller controls its
    cost model and cache contents.  Returns the replay wall-clock, the
    per-step cubes, and the total rows touched — the sum of the replay
    records' ``input_rows``, the same unit the planner's estimates use.
    """
    cubes: List[Cube] = []
    start_index = len(session.history)
    started = time.perf_counter()
    session.execute(root_query)
    for origin, operation in steps:
        cubes.append(session.transform(origin, operation, strategy="plan"))
    elapsed = time.perf_counter() - started
    rows_touched = sum(record.input_rows for record in session.history[start_index:])
    return elapsed, cubes, rows_touched


def advisor_session_comparison(
    dataset, build: Callable, repeats: int = 3
) -> Dict[str, object]:
    """Profile a replayed workload, advise, and replay advised vs. static.

    The profile pass replays the workload once with the static planner and
    mines its history with the :class:`~repro.olap.advisor.WorkloadAdvisor`.
    The comparison then replays the same chain in (a) a cold session with
    the static cost model — the PR-2 planner — and (b) a fresh session
    constructed with the report's fitted cost model and warm-started via
    :meth:`~repro.olap.session.OLAPSession.apply_recommendations` (the
    warm-up itself is not timed: it models session-start pre-materialization
    amortized over dashboard replays).  Every step of every replay is
    checked cell-for-cell against from-scratch evaluation.
    """
    root_query, steps = build(dataset)
    reference_evaluator = AnalyticalQueryEvaluator(dataset.instance)
    reference_cubes: Dict[str, Cube] = {}

    def check(cubes: List[Cube]) -> bool:
        for cube in cubes:
            key = canonical_query_key(cube.query)
            if key not in reference_cubes:
                reference_cubes[key] = Cube(
                    reference_evaluator.answer(cube.query), cube.query
                )
            if not cube.same_cells(reference_cubes[key]):
                return False
        return True

    # Profile pass: static planner, cold cache.
    profile_session = OLAPSession(dataset.instance, dataset.schema)
    _, profile_cubes, _ = replay_on_session(profile_session, root_query, steps)
    report = profile_session.advise()

    results: Dict[str, object] = {
        "ops": len(steps) + 1,
        "report": report,
        "recommendations": len(report.recommendations),
        "profile_equal": check(profile_cubes),
    }
    static_best = float("inf")
    advised_best = float("inf")
    for _ in range(max(1, repeats)):
        static_session = OLAPSession(dataset.instance, dataset.schema)
        elapsed, cubes, rows = replay_on_session(static_session, root_query, steps)
        static_best = min(static_best, elapsed)
        results["static_rows"] = rows
        results["static_hits"] = static_session.cache.stats.hits
        results["static_equal"] = check(cubes)

        advised_session = OLAPSession(
            dataset.instance, dataset.schema, cost_model=report.cost_model
        )
        advised_session.apply_recommendations(report)
        elapsed, cubes, rows = replay_on_session(advised_session, root_query, steps)
        advised_best = min(advised_best, elapsed)
        results["advised_rows"] = rows
        results["advised_hits"] = advised_session.cache.stats.hits
        results["advised_equal"] = check(cubes)
    results["static_seconds"] = static_best
    results["advised_seconds"] = advised_best
    return results


def experiment_advisor_sessions(
    scale: str = "small", repeats: Optional[int] = None
) -> ResultTable:
    """ADVISOR — replayed sessions: advised warm start vs. the static planner.

    Replays the blogger and video operation chains under the PR-2 static
    planner (cold cache, hand-set cost constants) and under the advisor
    loop (cache warm-started from the profile pass's recommendations,
    planner priced by the fitted cost model), reporting total session
    time, total rows touched, cache hits and per-step cube equality.
    """
    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    table = ResultTable(
        [
            "session",
            "ops",
            "variant",
            "time (ms)",
            "rows touched",
            "cache hits",
            "speedup vs static",
            "all equal",
        ],
        title="ADVISOR — replayed OLAP sessions: advised warm start vs. static planner",
    )
    workloads = [
        (
            "blogger/12-op dashboard",
            blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"]))),
            blogger_session_replay,
        ),
        (
            "video/10-op drill chain",
            video_dataset(VideoConfig(videos=int(parameters["videos"]))),
            video_session_replay,
        ),
    ]
    for label, dataset, build in workloads:
        results = advisor_session_comparison(dataset, build, repeats=repeats)
        static_seconds = results["static_seconds"]
        advised_seconds = results["advised_seconds"]
        table.add_row(
            label,
            results["ops"],
            "static planner (cold)",
            static_seconds * 1000,
            results["static_rows"],
            results["static_hits"],
            1.0,
            results["static_equal"],
        )
        table.add_row(
            label,
            results["ops"],
            "advised (warm + fitted)",
            advised_seconds * 1000,
            results["advised_rows"],
            results["advised_hits"],
            static_seconds / advised_seconds if advised_seconds > 0 else float("inf"),
            results["advised_equal"],
        )
    return table


# ---------------------------------------------------------------------------
# REFRESH — incremental maintenance vs. recompute under instance updates
# ---------------------------------------------------------------------------


def blogger_update_batch(instance, size: int, seed: int = 0) -> int:
    """Apply a deterministic ~``size``-triple update batch to a blogger instance.

    Roughly half the batch removes existing triples (sampled reproducibly);
    the other half adds fresh bloggers with one post each (classifier *and*
    measure triples, so cached cubes genuinely change).  Returns the number
    of effective mutations.
    """
    import random

    from repro.rdf.namespaces import EX, RDF
    from repro.rdf.terms import Literal
    from repro.rdf.triples import Triple

    rdf_type = RDF.term("type")
    rng = random.Random(seed)
    removals = size // 2
    mutations = 0
    if removals:
        triples = sorted(instance, key=repr)
        for triple in rng.sample(triples, min(removals, len(triples))):
            mutations += instance.remove(triple)
    tag = 0
    while mutations < size:
        user = EX.term(f"upd{seed}_u{tag}")
        post = EX.term(f"upd{seed}_p{tag}")
        batch = (
            Triple(user, rdf_type, EX.Blogger),
            Triple(user, EX.hasAge, Literal(20 + tag % 30)),
            Triple(user, EX.livesIn, EX.term(f"city_{tag % 5}")),
            Triple(post, rdf_type, EX.BlogPost),
            Triple(user, EX.wrotePost, post),
            Triple(post, EX.postedOn, EX.term(f"site_{tag % 7}")),
            Triple(post, EX.hasWordCount, Literal(50 + 13 * tag)),
        )
        for triple in batch:
            if mutations >= size:
                break
            mutations += instance.add(triple)
        tag += 1
    return mutations


def video_update_batch(instance, size: int, seed: int = 0) -> int:
    """The video-instance counterpart of :func:`blogger_update_batch`."""
    import random

    from repro.rdf.namespaces import EX, RDF
    from repro.rdf.terms import Literal
    from repro.rdf.triples import Triple

    rdf_type = RDF.term("type")
    rng = random.Random(seed)
    removals = size // 2
    mutations = 0
    if removals:
        triples = sorted(instance, key=repr)
        for triple in rng.sample(triples, min(removals, len(triples))):
            mutations += instance.remove(triple)
    websites = sorted({t.subject for t in instance if t.predicate == EX.hasUrl}, key=repr)
    tag = 0
    while mutations < size:
        video = EX.term(f"updv{seed}_{tag}")
        batch = [
            Triple(video, rdf_type, EX.Video),
            Triple(video, EX.viewNum, Literal(10 + 7 * tag)),
        ]
        if websites:
            batch.append(Triple(video, EX.postedOn, websites[tag % len(websites)]))
        for triple in batch:
            if mutations >= size:
                break
            mutations += instance.add(triple)
        tag += 1
    return mutations


def replay_after_update(
    instance,
    schema,
    root_query: AnalyticalQuery,
    steps: Sequence[Tuple[AnalyticalQuery, OLAPOperation]],
    update: Callable,
    policy: str,
    engine: Optional[str] = None,
) -> Tuple[float, List[Cube], OLAPSession]:
    """Warm a planner session, apply an update batch, re-answer everything.

    Only the post-update re-answering phase is timed — that is the serving
    work the policies disagree on:

    * ``refresh`` — the warmed session keeps going with the cost-based
      planner; stale cached results are delta-patched (or rewritten from
      patched origins) instead of recomputed;
    * ``replan`` — a cold planner session on the updated instance: what
      invalidation-only caching plus the PR-2 planner must do (recompute
      the root once, then reuse its own fresh results);
    * ``recompute`` — a cold session answering every operation from scratch
      on the updated instance (no reuse at all).

    ``engine`` pins the sessions' execution engine (None = auto): the
    refresh-vs-recompute *margin* is engine-relative — vectorized columnar
    recomputation compresses the gap row-level patching enjoys over the
    row engine — so benchmarks state which engine a claim is about.
    """
    warm = OLAPSession(instance, schema, engine=engine)
    warm.execute(root_query)
    for origin, operation in steps:
        warm.transform(origin, operation, strategy="plan")

    update(instance)

    cubes: List[Cube] = []
    if policy == "refresh":
        started = time.perf_counter()
        cubes.append(warm.execute(root_query))
        for origin, operation in steps:
            cubes.append(warm.transform(origin, operation, strategy="plan"))
        elapsed = time.perf_counter() - started
        return elapsed, cubes, warm
    if policy not in ("replan", "recompute"):
        raise ValueError(
            f"unknown policy {policy!r}; expected refresh, replan or recompute"
        )
    strategy = "plan" if policy == "replan" else "scratch"
    cold = OLAPSession(instance, schema, engine=engine)
    started = time.perf_counter()
    cubes.append(cold.execute(root_query))
    for origin, operation in steps:
        cubes.append(cold.transform(origin, operation, strategy=strategy))
    elapsed = time.perf_counter() - started
    return elapsed, cubes, cold


def experiment_incremental_refresh(
    scale: str = "small", repeats: Optional[int] = None
) -> ResultTable:
    """REFRESH — delta-patching vs. from-scratch recompute across batch sizes.

    For each workload (the 12-op blogger dashboard, the 10-op video drill
    chain) and each update-batch size (as a fraction of the instance's
    triples), replays the session once to warm the cache, applies the batch,
    and re-answers every query under three policies: delta-patching
    (``refresh``), a cold planner session (``replan`` — invalidate
    everything but keep PR-2's reuse machinery) and per-operation
    from-scratch recomputation (``recompute``).  The claim (shape): refresh
    beats per-operation recomputation by a wide margin on small batches and
    the advantage shrinks as the batch approaches the instance size — which
    is why the planner prices the choice per operation instead of
    hard-coding it.  Against cold replanning the fight is closer (replan
    recomputes the root once and rewrites the rest); the honest comparison
    is reported side by side.  Every trio of replays is checked
    cell-for-cell against each other.
    """
    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    table = ResultTable(
        [
            "session",
            "batch fraction",
            "batch triples",
            "refresh (ms)",
            "replan (ms)",
            "recompute (ms)",
            "speedup vs recompute",
            "refreshes",
            "all equal",
        ],
        title="REFRESH — incremental maintenance vs. replan vs. recompute after updates",
    )
    workloads = [
        (
            "blogger/12-op dashboard",
            blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"]))),
            blogger_session_replay,
            blogger_update_batch,
        ),
        (
            "video/10-op drill chain",
            video_dataset(VideoConfig(videos=int(parameters["videos"]))),
            video_session_replay,
            video_update_batch,
        ),
    ]
    for label, dataset, build, batch in workloads:
        root_query, steps = build(dataset)
        for fraction in (0.005, 0.01, 0.05, 0.25):
            size = max(1, int(len(dataset.instance) * fraction))
            update = lambda instance, size=size: batch(instance, size, seed=17)
            timings: Dict[str, float] = {}
            cubes_by_policy: Dict[str, List[Cube]] = {}
            refreshes = 0
            for policy in ("refresh", "replan", "recompute"):
                best = float("inf")
                for _ in range(repeats):
                    instance = dataset.instance.copy()
                    elapsed, cubes, session = replay_after_update(
                        instance, dataset.schema, root_query, steps, update, policy
                    )
                    best = min(best, elapsed)
                timings[policy] = best
                cubes_by_policy[policy] = cubes
                if policy == "refresh":
                    refreshes = session.cache.stats.refreshes
            reference = cubes_by_policy["recompute"]
            equal = all(
                all(ours.same_cells(theirs) for ours, theirs in zip(cubes, reference))
                for cubes in (cubes_by_policy["refresh"], cubes_by_policy["replan"])
            )
            table.add_row(
                label,
                f"{fraction:.3f}",
                size,
                timings["refresh"] * 1000,
                timings["replan"] * 1000,
                timings["recompute"] * 1000,
                timings["recompute"] / timings["refresh"]
                if timings["refresh"] > 0
                else float("inf"),
                refreshes,
                equal,
            )
    return table


# ---------------------------------------------------------------------------
# PARALLEL — shard-partitioned evaluation vs. the serial engine
# ---------------------------------------------------------------------------


def experiment_parallel_scaling(scale: str = "small", repeats: Optional[int] = None) -> ResultTable:
    """PARALLEL — serial vs. 2/4-worker answering on the slice-dice workload.

    For each instance size of the scaling sweep, answers the generic count
    query from scratch with the serial id-space engine and with the
    partitioned executor at 2 and 4 workers (process backend where the
    query pickles, thread fallback otherwise; ``shard_count = 2 × workers``
    smooths shard imbalance).  Every parallel cube is checked cell-for-cell
    against the serial answer.  The speedup column is relative to serial;
    genuine wall-clock wins need real cores (the table title records how
    many this host has), while the totals also reflect the sharding's
    smaller per-shard join and γ structures.
    """
    import os

    from repro.olap.parallel import ParallelExecutor

    parameters = _scale(scale)
    repeats = repeats or int(parameters["repeats"])
    sweep: Sequence[int] = parameters["sweep"]  # type: ignore[assignment]
    cpus = os.cpu_count() or 1
    table = ResultTable(
        ["facts", "instance triples", "engine", "time (ms)", "speedup vs serial", "cells", "equal"],
        title=f"PARALLEL — partitioned evaluation vs. serial from-scratch ({cpus} CPUs)",
    )
    for facts in sweep:
        config = GenericConfig(
            facts=int(facts), dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0
        )
        dataset = generic_dataset(config)
        query = generic_query(config, aggregate="count")
        serial = AnalyticalQueryEvaluator(dataset.instance)
        serial_time = time_callable(
            "serial", lambda: serial.answer(query), repeats=repeats
        ).milliseconds()
        oracle = Cube(serial.answer(query), query)
        table.add_row(facts, len(dataset.instance), "serial", serial_time, 1.0, len(oracle), True)
        for workers in (2, 4):
            with ParallelExecutor(
                AnalyticalQueryEvaluator(dataset.instance),
                workers=workers,
                shard_count=2 * workers,
            ) as executor:
                executor.answer(query)  # warm the worker pool outside the timing
                measurement = time_callable(
                    f"workers={workers}",
                    lambda ex=executor: ex.answer(query),
                    repeats=repeats,
                )
                cube = Cube(executor.answer(query), query)
            table.add_row(
                facts,
                len(dataset.instance),
                f"parallel x{workers}",
                measurement.milliseconds(),
                serial_time / measurement.milliseconds()
                if measurement.milliseconds() > 0
                else float("inf"),
                len(cube),
                cube.same_cells(oracle),
            )
    return table


# ---------------------------------------------------------------------------
# SERVING: multi-tenant load generation against the concurrent serving layer
# ---------------------------------------------------------------------------


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (NaN on empty input)."""
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    index = int(round(fraction * (len(ordered) - 1)))
    return ordered[max(0, min(index, len(ordered) - 1))]


def serving_fact_batch(tag: str, count: int = 2, dimensions: int = 2) -> list:
    """Triples for ``count`` fresh generic facts (the serving write payload).

    Each fact carries every classifier dimension, so the batch lands in the
    canonical cube and a publish visibly changes the answers.
    """
    from repro.rdf import RDF, Literal, Triple
    from repro.rdf.namespaces import EX

    rdf_type = RDF.term("type")
    triples = []
    for index in range(count):
        fact = EX.term(f"fact/served-{tag}-{index}")
        triples.append(Triple(fact, rdf_type, EX.term("Fact")))
        for dimension in range(dimensions):
            triples.append(
                Triple(
                    fact,
                    EX.term(f"dim{dimension}"),
                    EX.term(f"dimvalue/{dimension}/{dimension % 2}"),
                )
            )
        triples.append(Triple(fact, EX.term("measure"), Literal(5 + index)))
    return triples


def serving_load_run(
    instance,
    schema,
    query: AnalyticalQuery,
    clients: int,
    write_ratio: float = 0.0,
    requests_per_client: int = 10,
    max_concurrency: int = 4,
    max_queue_depth: int = 8,
    per_tenant_limit: int = 4,
    publish_mode: str = "auto",
    seed: int = 0,
    verify: bool = True,
    write_dimensions: int = 2,
) -> Dict[str, object]:
    """Drive :class:`~repro.serving.service.OLAPService` with concurrent clients.

    Spawns ``clients`` tenants, each issuing ``requests_per_client``
    operations: a write (an update batch through the single writer, which
    republishes the graph) with probability ``write_ratio``, a read
    otherwise.  Admission rejections are counted per type, never retried.
    With ``verify=True`` every answered cube is checked cell-for-cell
    against from-scratch evaluation over the *generation it was served
    from* — after the timed window, so the check never distorts latency —
    which makes the throughput numbers trustworthy: the service cannot
    win by serving torn or stale reads.

    Returns a dict of latency percentiles (milliseconds), throughput and
    service statistics, ready for a bench record or a
    :class:`~repro.bench.harness.ResultTable` row.
    """
    import asyncio
    import random

    from repro.errors import AdmissionError
    from repro.serving import OLAPService

    rng = random.Random(seed)
    plans = [
        [
            "write" if rng.random() < write_ratio else "read"
            for _ in range(requests_per_client)
        ]
        for _ in range(clients)
    ]

    async def drive():
        read_latencies: List[float] = []
        write_latencies: List[float] = []
        served = []
        rejections: Dict[str, int] = {}

        async with OLAPService(
            instance,
            schema,
            max_concurrency=max_concurrency,
            max_queue_depth=max_queue_depth,
            per_tenant_limit=per_tenant_limit,
            publish_mode=publish_mode,
        ) as service:

            async def client(index: int) -> None:
                tenant = f"tenant-{index}"
                for step, kind in enumerate(plans[index]):
                    started = time.perf_counter()
                    if kind == "write":
                        await service.update(
                            add=serving_fact_batch(
                                f"{index}-{step}", dimensions=write_dimensions
                            )
                        )
                        write_latencies.append(time.perf_counter() - started)
                    else:
                        try:
                            result = await service.query(tenant, query)
                        except AdmissionError as rejection:
                            name = type(rejection).__name__
                            rejections[name] = rejections.get(name, 0) + 1
                        else:
                            read_latencies.append(time.perf_counter() - started)
                            served.append(result)
                    await asyncio.sleep(0)

            wall_started = time.perf_counter()
            await asyncio.gather(*[client(index) for index in range(clients)])
            wall_seconds = time.perf_counter() - wall_started

            verified = 0
            if verify:
                oracles: Dict[int, Cube] = {}
                for result in served:
                    oracle = oracles.get(result.graph_version)
                    if oracle is None:
                        oracle = Cube(
                            AnalyticalQueryEvaluator(result.generation.graph).answer(
                                query
                            ),
                            query,
                        )
                        oracles[result.graph_version] = oracle
                    if not result.cube.same_cells(oracle):
                        raise AssertionError(
                            f"served cube for {result.tenant} diverged from "
                            f"scratch evaluation at v{result.graph_version}"
                        )
                    verified += 1

            statistics = service.stats.as_dict()
            versions_served = sorted({r.graph_version for r in served})

        operations = sum(len(plan) for plan in plans)
        return {
            "clients": clients,
            "write_ratio": write_ratio,
            "operations": operations,
            "served": len(served),
            "writes": len(write_latencies),
            "rejected": int(statistics["rejected"]),
            "rejected_queue_full": int(statistics["rejected_queue_full"]),
            "rejected_tenant_busy": int(statistics["rejected_tenant_busy"]),
            "publishes": int(statistics["publishes"]),
            "versions_served": versions_served,
            "verified": verified,
            "wall_seconds": wall_seconds,
            "throughput_ops": operations / wall_seconds if wall_seconds > 0 else float("inf"),
            "read_p50_ms": _percentile(read_latencies, 0.50) * 1000.0,
            "read_p95_ms": _percentile(read_latencies, 0.95) * 1000.0,
            "read_p99_ms": _percentile(read_latencies, 0.99) * 1000.0,
            "write_p50_ms": _percentile(write_latencies, 0.50) * 1000.0,
        }

    return asyncio.run(drive())


#: The canonical serving run table: client counts × read/write mixes.
SERVING_CLIENTS: Tuple[int, ...] = (1, 4, 8)
SERVING_MIXES: Tuple[Tuple[str, float], ...] = (
    ("read-only", 0.0),
    ("90/10 read-write", 0.1),
)


def experiment_serving(
    scale: str = "small", requests_per_client: Optional[int] = None
) -> ResultTable:
    """SERVING — the load-generation run table over the serving layer.

    For each (mix, client count) cell, drives a fresh service over a fresh
    copy of the generic instance and reports latency percentiles,
    throughput, typed rejections and the number of graph versions that
    answered reads.  Every answered cube is verified against scratch
    evaluation at its snapshot version inside the harness.
    """
    parameters = _scale(scale)
    requests = requests_per_client or max(6, int(parameters["repeats"]) * 3)
    dataset = generic_dataset(GenericConfig(facts=int(parameters["facts"]), dimensions=2))
    table = ResultTable(
        [
            "mix",
            "clients",
            "served",
            "rejected",
            "publishes",
            "versions",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "throughput (op/s)",
            "verified",
        ],
        title="SERVING — multi-tenant latency/throughput under concurrent load",
    )
    for mix_label, write_ratio in SERVING_MIXES:
        for clients in SERVING_CLIENTS:
            run = serving_load_run(
                dataset.instance.copy(),
                dataset.schema,
                dataset.query,
                clients=clients,
                write_ratio=write_ratio,
                requests_per_client=requests,
                seed=clients,
            )
            table.add_row(
                mix_label,
                clients,
                run["served"],
                run["rejected"],
                run["publishes"],
                len(run["versions_served"]),
                round(run["read_p50_ms"], 3),
                round(run["read_p95_ms"], 3),
                round(run["read_p99_ms"], 3),
                round(run["throughput_ops"], 1),
                run["verified"] == run["served"],
            )
    return table


# ---------------------------------------------------------------------------
# INGEST: streaming ingestion under a mixed read/write stream
# ---------------------------------------------------------------------------


def ingest_mutation_stream(
    operations: int,
    write_ratio: float = 0.1,
    seed: int = 0,
    dimensions: int = 2,
    remove_fraction: float = 0.25,
) -> list:
    """A mixed read/write operation stream for the ingestion benchmark.

    Returns ``operations`` entries, each ``("read", None)``,
    ``("add", [triples])`` (one fresh generic fact) or
    ``("remove", [triples])`` (full retraction of a fact added earlier in
    the stream — so coalescing and the delete path are both exercised).
    The stream is deterministic in ``seed``.
    """
    import random

    rng = random.Random(seed)
    stream: list = []
    added_facts: List[list] = []
    for index in range(operations):
        if rng.random() >= write_ratio:
            stream.append(("read", None))
            continue
        if added_facts and rng.random() < remove_fraction:
            victim = added_facts.pop(rng.randrange(len(added_facts)))
            stream.append(("remove", victim))
        else:
            fact = serving_fact_batch(f"stream-{seed}-{index}", count=1, dimensions=dimensions)
            added_facts.append(fact)
            stream.append(("add", fact))
    return stream


def ingest_load_run(
    instance,
    schema,
    query: AnalyticalQuery,
    policy: Optional[str] = "auto",
    operations: int = 200,
    write_ratio: float = 0.1,
    batch_size: int = 8,
    seed: int = 0,
    verify: bool = True,
    dimensions: int = 2,
) -> Dict[str, object]:
    """Drive a session over a live graph fed by a :class:`StreamIngestor`.

    One loop interleaves reads (``session.execute``, timed individually)
    with writes (mutations submitted to the ingestor, which cuts
    micro-batches at its size threshold and runs the refresh scheduler
    after each one).  With ``verify=True`` every served cube is checked
    cell-for-cell against from-scratch evaluation at the graph version it
    was served from — the oracle runs outside the timed sections and is
    memoized per version, so a read burst between two batches verifies
    once.

    Returns read latency percentiles, sustained applied-mutations/sec over
    the write path, coalescing and scheduler counters.
    """
    from repro.ingest import RefreshScheduler, StreamIngestor

    live = instance.copy()
    session = OLAPSession(live, schema)
    scheduler = None if policy is None else RefreshScheduler([session], policy=policy)
    ingestor = StreamIngestor(
        live, batch_size=batch_size, max_batch_age=1000.0, scheduler=scheduler
    )
    stream = ingest_mutation_stream(
        operations, write_ratio=write_ratio, seed=seed, dimensions=dimensions
    )
    session.execute(query)  # warm the cache so the scheduler has a target

    read_latencies: List[float] = []
    write_seconds = 0.0
    verified = 0
    oracles: Dict[int, Cube] = {}

    def check(cube, version: int) -> None:
        nonlocal verified
        if not verify:
            return
        oracle = oracles.get(version)
        if oracle is None:
            oracle = Cube(AnalyticalQueryEvaluator(live).answer(query), query)
            oracles[version] = oracle
        if not cube.same_cells(oracle):
            raise AssertionError(
                f"served cube diverged from scratch evaluation at v{version} "
                f"(policy {policy!r}, batch_size {batch_size})"
            )
        verified += 1

    wall_started = time.perf_counter()
    for kind, triples in stream:
        if kind == "read":
            started = time.perf_counter()
            cube = session.execute(query)
            read_latencies.append(time.perf_counter() - started)
            check(cube, live.version)
        else:
            started = time.perf_counter()
            if kind == "add":
                ingestor.ingest(add=triples)
            else:
                ingestor.ingest(remove=triples)
            ingestor.pump()
            write_seconds += time.perf_counter() - started
    started = time.perf_counter()
    ingestor.drain()
    write_seconds += time.perf_counter() - started
    wall_seconds = time.perf_counter() - wall_started

    cube = session.execute(query)
    check(cube, live.version)
    session.close()

    applied = ingestor.stats.applied_adds + ingestor.stats.applied_removes
    scheduler_stats = scheduler.stats.as_dict() if scheduler is not None else {}
    return {
        "policy": policy or "none",
        "operations": len(stream),
        "reads": len(read_latencies),
        "writes": sum(1 for kind, _ in stream if kind != "read"),
        "batches": ingestor.stats.batches,
        "submitted": ingestor.stats.submitted,
        "applied": applied,
        "coalesced": ingestor.stats.coalesced,
        "verified": verified,
        "wall_seconds": wall_seconds,
        "write_seconds": write_seconds,
        "updates_per_s": applied / write_seconds if write_seconds > 0 else float("inf"),
        "read_p50_ms": _percentile(read_latencies, 0.50) * 1000.0,
        "read_p95_ms": _percentile(read_latencies, 0.95) * 1000.0,
        "read_p99_ms": _percentile(read_latencies, 0.99) * 1000.0,
        "eager_refreshes": int(scheduler_stats.get("eager_refreshes", 0)),
        "lazy_marks": int(scheduler_stats.get("lazy_marks", 0)),
        "invalidations": int(scheduler_stats.get("invalidations", 0)),
        "cache_refreshes": session.cache.stats.refreshes,
        "lazy_refreshes": session.cache.stats.lazy_refreshes,
    }


#: The canonical ingestion run table: refresh policies under a 90/10 mix.
INGEST_POLICIES: Tuple[str, ...] = ("eager", "lazy", "auto")


def experiment_ingest(scale: str = "small", operations: Optional[int] = None) -> ResultTable:
    """INGEST — streaming ingestion under a mixed 90/10 read/write stream.

    For each refresh-scheduler policy, drives a session over a live graph
    fed through the ingestor and reports sustained applied-mutations/sec,
    read latency percentiles and the scheduler's decision mix.  Every
    served cube is verified against scratch evaluation at its version
    inside the harness.
    """
    parameters = _scale(scale)
    count = operations or max(120, int(parameters["repeats"]) * 60)
    dataset = generic_dataset(GenericConfig(facts=int(parameters["facts"]), dimensions=2))
    table = ResultTable(
        [
            "policy",
            "reads",
            "batches",
            "coalesced",
            "updates/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "eager",
            "lazy",
            "invalidated",
            "verified",
        ],
        title="INGEST — streaming ingestion with continuous refresh (90/10 mix)",
    )
    for policy in INGEST_POLICIES:
        run = ingest_load_run(
            dataset.instance,
            dataset.schema,
            dataset.query,
            policy=policy,
            operations=count,
            write_ratio=0.1,
            seed=7,
        )
        table.add_row(
            policy,
            run["reads"],
            run["batches"],
            run["coalesced"],
            round(run["updates_per_s"], 1),
            round(run["read_p50_ms"], 3),
            round(run["read_p95_ms"], 3),
            round(run["read_p99_ms"], 3),
            run["eager_refreshes"],
            run["lazy_marks"],
            run["invalidations"],
            run["verified"] == run["reads"] + 1,
        )
    return table


def run_all_experiments(scale: str = "small") -> List[ResultTable]:
    """Run every experiment at the given scale and return their tables."""
    tables = [
        experiment_operations_table(scale),
        experiment_scaling("slice", scale),
        experiment_scaling("dice", scale),
        experiment_scaling("drill-out", scale),
        experiment_scaling("drill-in", scale),
        experiment_dice_selectivity(scale),
        experiment_multivalue_fanout(scale),
        experiment_dimensionality(scale),
        experiment_pres_storage(scale),
        experiment_aggregates(scale),
        experiment_engine_idspace(scale),
        experiment_planner_sessions(scale),
        experiment_advisor_sessions(scale),
        experiment_incremental_refresh(scale),
        experiment_parallel_scaling(scale),
        experiment_serving(scale),
        experiment_ingest(scale),
    ]
    return tables
