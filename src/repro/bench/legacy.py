"""The pre-refactor evaluation pipeline, frozen as a benchmark baseline.

The id-space refactor rebuilt the whole from-scratch evaluation path —
slot-tuple BGP bindings, late materialization, positional/compiled σ, hash
joins keyed on ints.  This module preserves the *seed* implementation it
replaced, so the benchmarks can report an honest before/after on identical
workloads:

* :class:`LegacyBGPEvaluator` — dictionary-of-variables bindings with a
  fresh dict copy per candidate triple, eager per-row decoding of every
  result (no decode cache);
* :func:`legacy_select` — σ applied to a ``dict(zip(columns, row))`` per
  row;
* :func:`legacy_join_on` — hash join keyed on per-row value tuples;
* :func:`legacy_group_aggregate` — γ over per-group value lists with
  literal conversion inside the aggregate;
* :class:`LegacyAnalyticalEvaluator` — the Definition 4 / Equation (3)
  pipeline wired from the above.

Nothing outside ``benchmarks/`` and :mod:`repro.bench.workloads` should
import this; the production engine lives in :mod:`repro.bgp.evaluator` and
:mod:`repro.analytics.evaluator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.algebra.aggregates import get_aggregate
from repro.algebra.relation import Relation
from repro.analytics.answer import CubeAnswer, KeyGenerator, PartialResult
from repro.analytics.query import KEY_COLUMN, AnalyticalQuery
from repro.rdf.graph import Graph
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Variable
from repro.bgp.optimizer import order_patterns
from repro.bgp.query import BGPQuery

__all__ = ["LegacyBGPEvaluator", "LegacyAnalyticalEvaluator"]


class LegacyBGPEvaluator:
    """The seed BGP evaluator: dict bindings, eager term decoding."""

    def __init__(self, graph: Graph, statistics: Optional[GraphStatistics] = None):
        self._graph = graph
        self._statistics = statistics if statistics is not None else GraphStatistics(graph)

    def evaluate(self, query: BGPQuery, semantics: str = "set") -> Relation:
        if semantics not in ("set", "bag"):
            raise EvaluationError(f"unknown semantics {semantics!r}")
        bindings = self._solve(query)
        decode = self._graph.decode_id
        rows: List[Tuple] = []
        for binding in bindings:
            rows.append(tuple(decode(binding[variable]) for variable in query.head))
        relation = Relation(query.head_names, rows)
        if semantics == "set":
            seen = set()
            kept = []
            for row in relation:
                if row not in seen:
                    seen.add(row)
                    kept.append(row)
            return Relation(relation.columns, kept)
        return relation

    def _solve(self, query: BGPQuery) -> List[Dict[Variable, int]]:
        ordered = order_patterns(query.body, self._statistics, bound_variables=set())
        bindings: List[Dict[Variable, int]] = [{}]
        for pattern in ordered:
            if not bindings:
                return []
            bindings = self._extend(bindings, pattern)
        return bindings

    def _extend(self, bindings, pattern):
        graph = self._graph
        positions = pattern.as_tuple()
        constant_ids: List[Optional[int]] = []
        for term in positions:
            if isinstance(term, Variable):
                constant_ids.append(None)
            else:
                term_id = graph.encode_term(term)
                if term_id is None:
                    return []
                constant_ids.append(term_id)
        variable_positions = [
            (index, term) for index, term in enumerate(positions) if isinstance(term, Variable)
        ]
        extended = []
        for binding in bindings:
            lookup = list(constant_ids)
            for index, variable in variable_positions:
                bound = binding.get(variable)
                if bound is not None:
                    lookup[index] = bound
            for triple_ids in graph.match_ids(lookup[0], lookup[1], lookup[2]):
                new_binding = dict(binding)
                consistent = True
                for index, variable in variable_positions:
                    value = triple_ids[index]
                    existing = new_binding.get(variable)
                    if existing is None:
                        new_binding[variable] = value
                    elif existing != value:
                        consistent = False
                        break
                if consistent:
                    extended.append(new_binding)
        return extended


def legacy_select(relation: Relation, predicate) -> Relation:
    """The seed σ: one ``dict(zip(columns, row))`` per row."""
    columns = relation.columns
    kept = [row for row in relation if predicate(dict(zip(columns, row)))]
    return Relation(columns, kept)


def legacy_join_on(left: Relation, right: Relation, join_pairs) -> Relation:
    """The seed equi-join: value-tuple hash keys, no adoption fast path."""
    left_key_indexes = tuple(left.column_index(l) for l, _ in join_pairs)
    right_key_indexes = tuple(right.column_index(r) for _, r in join_pairs)
    dropped = {r for l, r in join_pairs if l == r}
    kept_positions = [i for i, name in enumerate(right.columns) if name not in dropped]
    kept_names = [right.columns[i] for i in kept_positions]
    output_columns = tuple(left.columns) + tuple(kept_names)
    table: Dict[Tuple, List[Tuple]] = {}
    for row in right:
        key = tuple(row[i] for i in right_key_indexes)
        table.setdefault(key, []).append(row)
    rows = []
    for left_row in left:
        key = tuple(left_row[i] for i in left_key_indexes)
        for right_row in table.get(key, ()):
            rows.append(left_row + tuple(right_row[i] for i in kept_positions))
    return Relation(output_columns, rows)


def legacy_group_aggregate(relation: Relation, by, measure, function, output_column) -> Relation:
    """The seed γ: tuple keys per row, value lists through the aggregate."""
    aggregate = get_aggregate(function)
    key_indexes = relation.column_indexes(by)
    measure_index = relation.column_index(measure)
    groups: Dict[Tuple, List] = {}
    for row in relation:
        groups.setdefault(tuple(row[i] for i in key_indexes), []).append(row)
    rows = []
    for key, group in groups.items():
        values = [row[measure_index] for row in group if row[measure_index] is not None]
        if not values:
            continue
        rows.append(key + (aggregate(values),))
    return Relation(tuple(by) + (output_column,), rows)


class LegacyAnalyticalEvaluator:
    """The seed from-scratch AnQ pipeline (Definition 4 + Equation (3))."""

    def __init__(self, instance: Graph, statistics: Optional[GraphStatistics] = None):
        self._bgp = LegacyBGPEvaluator(instance, statistics)

    def partial_result(
        self, query: AnalyticalQuery, key_generator: Optional[KeyGenerator] = None
    ) -> PartialResult:
        fact = query.fact_variable.name
        classifier = self._bgp.evaluate(query.classifier, semantics="set")
        if not query.sigma.is_unrestricted():
            classifier = legacy_select(classifier, query.sigma.allows_row)
        keys = key_generator or KeyGenerator()
        measure = self._bgp.evaluate(query.measure, semantics="bag")
        measure_column = query.measure_variable.name
        keyed = Relation(
            (KEY_COLUMN,) + measure.columns, [(keys(),) + row for row in measure]
        ).reorder((fact, KEY_COLUMN, measure_column))
        joined = legacy_join_on(classifier, keyed, [(fact, fact)])
        dimension_columns = query.dimension_names
        expected = (fact, *dimension_columns, KEY_COLUMN, measure_column)
        if tuple(joined.columns) != expected:
            joined = joined.reorder(expected)
        return PartialResult(
            joined,
            fact_column=fact,
            dimension_columns=dimension_columns,
            key_column=KEY_COLUMN,
            measure_column=measure_column,
        )

    def answer(self, query: AnalyticalQuery) -> CubeAnswer:
        partial = self.partial_result(query)
        measure_column = partial.measure_column
        dimension_columns = partial.dimension_columns
        indexes = partial.relation.column_indexes(
            (partial.fact_column, *dimension_columns, measure_column)
        )
        projected = Relation(
            (partial.fact_column, *dimension_columns, measure_column),
            [tuple(row[i] for i in indexes) for row in partial.relation],
        )
        aggregated = legacy_group_aggregate(
            projected,
            by=dimension_columns,
            measure=measure_column,
            function=query.aggregate,
            output_column=measure_column,
        )
        return CubeAnswer(aggregated, dimension_columns, measure_column)
