"""Rendering experiment tables as Markdown (for EXPERIMENTS.md regeneration)."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.harness import ResultTable

__all__ = ["table_to_markdown", "report_to_markdown", "write_report"]


def table_to_markdown(table: ResultTable) -> str:
    """Render one :class:`ResultTable` as a GitHub-flavoured Markdown table."""
    lines: List[str] = []
    if table.title:
        lines.append(f"### {table.title}")
        lines.append("")
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def report_to_markdown(tables: Iterable[ResultTable], heading: str = "Experiment results") -> str:
    """Render several tables as one Markdown document."""
    parts = [f"# {heading}", ""]
    for table in tables:
        parts.append(table_to_markdown(table))
        parts.append("")
    return "\n".join(parts)


def write_report(tables: Iterable[ResultTable], path: str, heading: str = "Experiment results") -> None:
    """Write a Markdown report of the given tables to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report_to_markdown(tables, heading=heading))
