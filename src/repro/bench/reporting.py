"""Rendering experiment results: Markdown tables and machine-readable records.

Two output channels:

* **Markdown** (:func:`table_to_markdown` / :func:`write_report`) — the
  human-facing EXPERIMENTS.md regeneration path;
* **JSON run records** (:func:`write_bench_record`) — one
  ``BENCH_<name>_<scale>.json`` file per benchmark run, carrying the scale,
  engine, worker/shard configuration, instance sizes, wall times, and
  derived speedups.  These are what cross-run tooling (regression checks,
  the re-anchor protocol) consumes; the directory is controlled by the
  ``REPRO_BENCH_RECORDS_DIR`` environment variable and defaults to
  ``bench_records/`` under the current working directory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from repro.bench.harness import ResultTable

__all__ = [
    "table_to_markdown",
    "report_to_markdown",
    "write_report",
    "bench_records_dir",
    "write_bench_record",
]

#: Environment variable overriding where BENCH_*.json records are written.
RECORDS_DIR_ENV_VAR = "REPRO_BENCH_RECORDS_DIR"

#: Default records directory (relative to the current working directory).
DEFAULT_RECORDS_DIR = "bench_records"


def bench_records_dir() -> str:
    """The directory for ``BENCH_*.json`` run records (created on demand)."""
    directory = os.environ.get(RECORDS_DIR_ENV_VAR, DEFAULT_RECORDS_DIR)
    os.makedirs(directory, exist_ok=True)
    return directory


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in text).strip("_")


def write_bench_record(
    name: str,
    scale: str,
    measurements: Dict[str, float],
    metadata: Optional[Dict[str, object]] = None,
    directory: Optional[str] = None,
) -> str:
    """Write one machine-readable benchmark run record; return its path.

    ``measurements`` maps labels to wall-clock seconds (floats); anything
    contextual — engine, workers, shard counts, instance sizes, derived
    speedups — goes in ``metadata``.  The record lands at
    ``<records dir>/BENCH_<name>_<scale>.json`` (same name + scale
    overwrite: the record describes the *latest* run of that benchmark at
    that scale, which is what regression tooling diffs against).
    """
    record = {
        "name": name,
        "scale": scale,
        "measurements": {label: float(seconds) for label, seconds in measurements.items()},
        "metadata": dict(metadata or {}),
    }
    target_dir = directory if directory is not None else bench_records_dir()
    os.makedirs(target_dir, exist_ok=True)
    path = os.path.join(target_dir, f"BENCH_{_slug(name)}_{_slug(scale)}.json")
    temp_path = f"{path}.tmp.{os.getpid()}"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return path


def table_to_markdown(table: ResultTable) -> str:
    """Render one :class:`ResultTable` as a GitHub-flavoured Markdown table."""
    lines: List[str] = []
    if table.title:
        lines.append(f"### {table.title}")
        lines.append("")
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def report_to_markdown(tables: Iterable[ResultTable], heading: str = "Experiment results") -> str:
    """Render several tables as one Markdown document."""
    parts = [f"# {heading}", ""]
    for table in tables:
        parts.append(table_to_markdown(table))
        parts.append("")
    return "\n".join(parts)


def write_report(tables: Iterable[ResultTable], path: str, heading: str = "Experiment results") -> None:
    """Write a Markdown report of the given tables to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report_to_markdown(tables, heading=heading))
