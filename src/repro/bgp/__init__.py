"""BGP (conjunctive SPARQL) queries: model, parsing, ordering, evaluation.

* :mod:`repro.bgp.query` — the :class:`BGPQuery` model (heads, bodies,
  rootedness, the ``m̄`` construction);
* :mod:`repro.bgp.parser` — the ``q(?x) :- ?x ex:p ?y`` textual syntax;
* :mod:`repro.bgp.optimizer` — greedy selectivity-based join ordering;
* :mod:`repro.bgp.evaluator` — set/bag-semantics evaluation over a graph.
"""

from repro.bgp.evaluator import BGPEvaluator, evaluate_query
from repro.bgp.optimizer import estimate_pattern_cost, order_patterns
from repro.bgp.parser import default_prefixes, parse_query, parse_triple_patterns
from repro.bgp.query import BGPQuery

__all__ = [
    "BGPQuery",
    "BGPEvaluator",
    "evaluate_query",
    "parse_query",
    "parse_triple_patterns",
    "default_prefixes",
    "order_patterns",
    "estimate_pattern_cost",
]
