"""Join ordering for BGP evaluation.

The evaluator processes one triple pattern at a time, extending a set of
partial bindings.  The amount of intermediate work is therefore governed by
the order in which patterns are processed; this module chooses that order
with the classical greedy heuristic of RDF engines:

1. start from the pattern with the smallest estimated cardinality;
2. repeatedly pick, among the patterns sharing at least one variable with
   the ones already chosen (to avoid Cartesian products), the one with the
   smallest estimated cardinality;
3. when no connected pattern remains (disconnected query), fall back to the
   globally smallest remaining pattern.

Estimates come from :class:`~repro.rdf.statistics.GraphStatistics`; when no
statistics are supplied a crude constant-counting heuristic is used (more
constants = more selective), which is enough for unit tests on small graphs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern

__all__ = ["order_patterns", "estimate_pattern_cost"]


def estimate_pattern_cost(
    pattern: TriplePattern, statistics: Optional[GraphStatistics]
) -> float:
    """Estimated number of matching triples for ``pattern``."""
    if statistics is not None:
        return statistics.estimate_pattern(pattern)
    # Fallback: patterns with more constants are assumed more selective;
    # constants in predicate position are less selective than in s/o position.
    cost = 1_000_000.0
    subject, predicate, object_ = pattern.as_tuple()
    if not isinstance(subject, Variable):
        cost /= 100.0
    if not isinstance(object_, Variable):
        cost /= 50.0
    if not isinstance(predicate, Variable):
        cost /= 10.0
    return cost


def order_patterns(
    patterns: Sequence[TriplePattern],
    statistics: Optional[GraphStatistics] = None,
    bound_variables: Optional[Set[Variable]] = None,
) -> List[TriplePattern]:
    """Return the patterns in greedy connected order (see module docstring).

    ``bound_variables`` lists variables that are already bound before
    evaluation starts (e.g. when evaluating an extended classifier member
    where dimension variables are substituted); patterns touching them count
    as connected from the start and their effective cardinality is reduced.
    """
    remaining = list(patterns)
    if len(remaining) <= 1:
        return remaining

    chosen: List[TriplePattern] = []
    connected_variables: Set[Variable] = set(bound_variables or ())

    def effective_cost(pattern: TriplePattern) -> Tuple[int, float]:
        base = estimate_pattern_cost(pattern, statistics)
        shared = len(pattern.variables() & connected_variables)
        # Sharing variables with the current prefix cuts the expected output:
        # model it as dividing by 10 per shared variable (a standard rule of
        # thumb; exactness is irrelevant, only the relative order matters).
        adjusted = base / (10.0 ** shared)
        # Prefer connected patterns strictly over disconnected ones.
        disconnected = 0 if (shared or not chosen) else 1
        return (disconnected, adjusted)

    while remaining:
        best_index = min(range(len(remaining)), key=lambda i: effective_cost(remaining[i]))
        best = remaining.pop(best_index)
        chosen.append(best)
        connected_variables |= best.variables()
    return chosen
