"""Textual syntax for BGP queries.

The examples and tests write queries in a notation close to the paper's::

    c(?x, ?dage, ?dcity) :- ?x rdf:type ex:Blogger ,
                            ?x ex:hasAge ?dage ,
                            ?x ex:livesIn ?dcity

Grammar
-------
* head: ``name(?v1, ?v2, ...)`` — variables are always written with ``?``;
* ``:-`` separates head and body;
* the body is a comma-separated list of triple patterns ``s p o``;
* terms: ``?var``, ``<full-iri>``, ``prefix:local`` (resolved against a
  :class:`~repro.rdf.namespaces.PrefixMap`), quoted literals with optional
  ``@lang`` / ``^^datatype``, bare integers / decimals / booleans;
* a bare identifier without a colon is resolved against the *default
  namespace* (``ex:`` unless overridden), so the paper's ``hasAge`` works
  as-is;
* ``.`` may optionally terminate the body; ``#`` starts a comment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import QueryParseError
from repro.rdf.namespaces import EX, Namespace, PrefixMap, RDF, RDFS, XSD
from repro.rdf.terms import (
    IRI,
    Literal,
    TermOrVariable,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery

__all__ = ["parse_query", "parse_triple_patterns", "default_prefixes"]


_HEAD_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<vars>[^)]*)\)\s*$"
)

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>\#[^\n]*)
    | (?P<iri><[^>]*>)
    | (?P<string>"(?:[^"\\]|\\.)*")(?:@(?P<lang>[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*)|\^\^(?P<dt_iri><[^>]*>|[A-Za-z_][\w.-]*:[\w.-]+))?
    | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
    | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
    | (?P<decimal>[+-]?\d*\.\d+)
    | (?P<integer>[+-]?\d+)
    | (?P<boolean>\btrue\b|\bfalse\b)
    | (?P<a>\ba\b)
    | (?P<pname>[A-Za-z_][\w.-]*:[\w.-]+)
    | (?P<bare>[A-Za-z_][\w-]*)
    | (?P<comma>,)
    | (?P<dot>\.)
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def default_prefixes(default_namespace: Namespace = EX) -> PrefixMap:
    """A prefix map binding rdf/rdfs/xsd/ex, used when none is supplied."""
    prefixes = PrefixMap()
    prefixes.bind("ex", default_namespace)
    return prefixes


def _tokenize_body(text: str) -> List[Tuple[str, re.Match]]:
    tokens: List[Tuple[str, re.Match]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise QueryParseError(f"unexpected character {text[position]!r} in query body")
        kind = match.lastgroup
        # The string alternative may set lastgroup to lang/dt_iri; normalise.
        if match.group("string") is not None:
            kind = "string"
        if kind not in ("ws", "comment"):
            tokens.append((kind, match))
        position = match.end()
    return tokens


def _term_from_token(
    kind: str,
    match: re.Match,
    prefixes: PrefixMap,
    default_namespace: Namespace,
) -> TermOrVariable:
    text = match.group(0)
    if kind == "var":
        return Variable(text[1:])
    if kind == "iri":
        return IRI(text[1:-1])
    if kind == "pname":
        try:
            return prefixes.expand(match.group("pname"))
        except Exception as exc:
            raise QueryParseError(str(exc)) from exc
    if kind == "a":
        return RDF.term("type")
    if kind == "bare":
        return default_namespace.term(match.group("bare"))
    if kind == "string":
        lexical = match.group("string")[1:-1]
        language = match.group("lang")
        datatype_text = match.group("dt_iri")
        if language:
            return Literal(lexical, language=language)
        if datatype_text:
            if datatype_text.startswith("<"):
                return Literal(lexical, datatype=datatype_text[1:-1])
            return Literal(lexical, datatype=prefixes.expand(datatype_text))
        return Literal(lexical)
    if kind == "integer":
        return Literal(match.group("integer"), datatype=XSD_INTEGER)
    if kind == "decimal":
        return Literal(match.group("decimal"), datatype=XSD_DECIMAL)
    if kind == "double":
        return Literal(match.group("double"), datatype=XSD_DOUBLE)
    if kind == "boolean":
        return Literal(match.group("boolean"), datatype=XSD_BOOLEAN)
    raise QueryParseError(f"unexpected token {text!r} in query body")


def parse_triple_patterns(
    text: str,
    prefixes: Optional[PrefixMap] = None,
    default_namespace: Namespace = EX,
) -> List[TriplePattern]:
    """Parse a comma-separated list of triple patterns (a query body)."""
    prefixes = prefixes or default_prefixes(default_namespace)
    tokens = _tokenize_body(text)
    patterns: List[TriplePattern] = []
    current: List[TermOrVariable] = []
    for kind, match in tokens:
        if kind in ("comma", "dot"):
            if current:
                if len(current) != 3:
                    raise QueryParseError(
                        f"a triple pattern needs exactly 3 terms, got {len(current)}: "
                        f"{' '.join(t.n3() for t in current)}"
                    )
                patterns.append(TriplePattern(current[0], current[1], current[2]))
                current = []
            continue
        current.append(_term_from_token(kind, match, prefixes, default_namespace))
        if len(current) > 3:
            raise QueryParseError(
                "a triple pattern needs exactly 3 terms; did you forget a ',' separator?"
            )
    if current:
        if len(current) != 3:
            raise QueryParseError(
                f"a triple pattern needs exactly 3 terms, got {len(current)} at end of body"
            )
        patterns.append(TriplePattern(current[0], current[1], current[2]))
    if not patterns:
        raise QueryParseError("empty query body")
    return patterns


def parse_query(
    text: str,
    prefixes: Optional[PrefixMap] = None,
    default_namespace: Namespace = EX,
) -> BGPQuery:
    """Parse a full ``name(?x, ...) :- body`` query."""
    if ":-" not in text:
        raise QueryParseError("missing ':-' separator between head and body")
    head_text, _, body_text = text.partition(":-")
    head_match = _HEAD_RE.match(head_text)
    if not head_match:
        raise QueryParseError(f"malformed query head: {head_text.strip()!r}")
    name = head_match.group("name")
    variable_texts = [item.strip() for item in head_match.group("vars").split(",") if item.strip()]
    if not variable_texts:
        raise QueryParseError("the query head must list at least one variable")
    head_variables = []
    for variable_text in variable_texts:
        if not variable_text.startswith("?"):
            raise QueryParseError(
                f"head variables must be written with '?', got {variable_text!r}"
            )
        head_variables.append(Variable(variable_text[1:]))
    body = parse_triple_patterns(body_text, prefixes, default_namespace)
    return BGPQuery(head_variables, body, name=name)
