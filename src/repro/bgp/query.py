"""Conjunctive (BGP) queries.

A :class:`BGPQuery` is the conjunctive subset of SPARQL used throughout the
paper: a head ``q(x̄)`` listing distinguished (answer) variables, and a body
that is a set of triple patterns.  Queries are evaluated over a
:class:`~repro.rdf.graph.Graph` with either **set** semantics (the default,
used for classifiers and for node/edge definitions of analytical schemas) or
**bag** semantics (used for measure queries).

The module also provides the derived notions the paper relies on:

* rootedness (every variable reachable from a distinguished root variable);
* the set of non-distinguished (existential) variables;
* variable renaming and substitution (used to build extended classifiers);
* the ``m̄`` construction (same body, head = all body variables) from
  Definition 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import QueryDefinitionError, QueryNotRootedError
from repro.rdf.terms import IRI, Literal, Term, TermOrVariable, Variable
from repro.rdf.triples import TriplePattern

__all__ = ["BGPQuery"]


def _as_variable(value: Union[str, Variable]) -> Variable:
    if isinstance(value, Variable):
        return value
    return Variable(value)


class BGPQuery:
    """A basic graph pattern query ``q(x̄) :- t₁, ..., t_α``.

    Parameters
    ----------
    head:
        The distinguished variables, in answer-column order.  Strings are
        accepted and converted to :class:`Variable`.
    body:
        The triple patterns (order is irrelevant semantically; it is kept
        for display and as the optimizer's fallback order).
    name:
        Optional query name used in textual rendering (``q``, ``c``, ``m``...).

    Invariants checked at construction:

    * the head is non-empty and duplicate-free;
    * every head variable occurs in the body (safety).
    """

    __slots__ = ("name", "_head", "_body")

    def __init__(
        self,
        head: Sequence[Union[str, Variable]],
        body: Iterable[TriplePattern],
        name: str = "q",
    ):
        head_variables = tuple(_as_variable(variable) for variable in head)
        if not head_variables:
            raise QueryDefinitionError("a BGP query must have at least one head variable")
        if len(set(head_variables)) != len(head_variables):
            raise QueryDefinitionError(f"duplicate variables in query head: {head_variables}")
        body_patterns = tuple(body)
        if not body_patterns:
            raise QueryDefinitionError("a BGP query must have a non-empty body")
        for pattern in body_patterns:
            if not isinstance(pattern, TriplePattern):
                raise QueryDefinitionError(
                    f"query body must contain TriplePattern objects, got {type(pattern).__name__}"
                )
        body_variables: Set[Variable] = set()
        for pattern in body_patterns:
            body_variables |= pattern.variables()
        missing = [variable for variable in head_variables if variable not in body_variables]
        if missing:
            raise QueryDefinitionError(
                f"head variables {[v.name for v in missing]} do not occur in the query body"
            )
        self.name = name
        self._head = head_variables
        self._body = body_patterns

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def head(self) -> Tuple[Variable, ...]:
        """The distinguished variables, in answer-column order."""
        return self._head

    @property
    def body(self) -> Tuple[TriplePattern, ...]:
        """The triple patterns of the body."""
        return self._body

    @property
    def head_names(self) -> Tuple[str, ...]:
        return tuple(variable.name for variable in self._head)

    def variables(self) -> Set[Variable]:
        """All variables occurring in the body."""
        result: Set[Variable] = set()
        for pattern in self._body:
            result |= pattern.variables()
        return result

    def existential_variables(self) -> Set[Variable]:
        """Body variables that are not distinguished (not in the head)."""
        return self.variables() - set(self._head)

    def arity(self) -> int:
        return len(self._head)

    # ------------------------------------------------------------------
    # rootedness (Section 2 of the paper)
    # ------------------------------------------------------------------

    def is_rooted_in(self, root: Union[str, Variable]) -> bool:
        """True when every variable is reachable from ``root`` through triples.

        Reachability follows triple patterns in both directions (a pattern
        connects every pair of its variables), which matches the paper's
        graph representation of a rooted BGP.
        """
        root_variable = _as_variable(root)
        if root_variable not in self.variables():
            return False
        adjacency: Dict[Variable, Set[Variable]] = {}
        for pattern in self._body:
            pattern_variables = pattern.variables()
            for variable in pattern_variables:
                adjacency.setdefault(variable, set()).update(pattern_variables - {variable})
        reached = {root_variable}
        frontier = [root_variable]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency.get(current, ()):
                if neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        return reached >= self.variables()

    def root(self) -> Variable:
        """The query root: the first head variable, checked for rootedness."""
        candidate = self._head[0]
        if not self.is_rooted_in(candidate):
            raise QueryNotRootedError(
                f"query {self.name!r} is not rooted in its first head variable {candidate.n3()}"
            )
        return candidate

    def require_rooted(self) -> "BGPQuery":
        """Validate rootedness (raises when violated) and return self."""
        self.root()
        return self

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def with_head(self, head: Sequence[Union[str, Variable]], name: Optional[str] = None) -> "BGPQuery":
        """Return a query with the same body and a different head."""
        return BGPQuery(head, self._body, name=name or self.name)

    def with_body(self, body: Iterable[TriplePattern], name: Optional[str] = None) -> "BGPQuery":
        """Return a query with the same head and a different body."""
        return BGPQuery(self._head, body, name=name or self.name)

    def all_variables_head(self, name: Optional[str] = None) -> "BGPQuery":
        """Return the ``m̄`` variant (Definition 3): head = all body variables.

        The original head variables come first (in order), followed by the
        remaining body variables in deterministic (sorted) order, so the
        result columns are predictable.
        """
        remaining = sorted(self.existential_variables(), key=lambda variable: variable.name)
        return BGPQuery(list(self._head) + remaining, self._body, name=name or f"{self.name}_bar")

    def substitute(self, binding: Dict[Variable, Term]) -> "BGPQuery":
        """Ground some variables of the query (drops them from the head).

        Used to build the members of an extended classifier
        ``c_Σ(x, d₁, ..., dₙ)``: each ``c(x, χ₁, ..., χₙ)`` is the classifier
        with the dimension variables substituted by constants.
        """
        new_body = [pattern.substitute(binding) for pattern in self._body]
        new_head = [variable for variable in self._head if variable not in binding]
        if not new_head:
            raise QueryDefinitionError("substitution would remove every head variable")
        return BGPQuery(new_head, new_body, name=self.name)

    def rename_variables(self, mapping: Dict[Variable, Variable]) -> "BGPQuery":
        """Apply a variable-to-variable renaming to head and body."""
        cast: Dict[Variable, Term] = dict(mapping)
        new_body = [pattern.substitute(cast) for pattern in self._body]
        new_head = [mapping.get(variable, variable) for variable in self._head]
        return BGPQuery(new_head, new_body, name=self.name)

    # ------------------------------------------------------------------
    # structural introspection used by the drill-in auxiliary query
    # ------------------------------------------------------------------

    def patterns_with_variable(self, variable: Union[str, Variable]) -> List[TriplePattern]:
        """Return the body patterns in which ``variable`` occurs."""
        target = _as_variable(variable)
        return [pattern for pattern in self._body if target in pattern.variables()]

    def predicates(self) -> Set[Term]:
        """The set of constant predicates used in the body."""
        return {
            pattern.predicate
            for pattern in self._body
            if not isinstance(pattern.predicate, Variable)
        }

    # ------------------------------------------------------------------
    # equality / presentation
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Syntactic equality: same head (ordered) and same set of body patterns."""
        if not isinstance(other, BGPQuery):
            return NotImplemented
        return self._head == other._head and set(self._body) == set(other._body)

    def __hash__(self) -> int:
        return hash((self._head, frozenset(self._body)))

    def to_text(self) -> str:
        """Render the query in the paper's ``q(x̄) :- body`` notation."""
        head = ", ".join(f"?{variable.name}" for variable in self._head)
        atoms = []
        for pattern in self._body:
            atoms.append(
                " ".join(
                    term.n3() if not isinstance(term, Variable) else f"?{term.name}"
                    for term in pattern.as_tuple()
                )
            )
        return f"{self.name}({head}) :- " + ", ".join(atoms)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BGPQuery({self.to_text()})"
