"""BGP query evaluation over an RDF graph.

The evaluator enumerates the homomorphisms (total variable bindings) of a
query body into the graph by processing triple patterns one at a time in an
optimizer-chosen order, then projects the bindings onto the query head:

* with **set semantics** (default) duplicate head rows are eliminated — the
  semantics of classifiers and of AnS node/edge definitions;
* with **bag semantics** one output row is produced per homomorphism — the
  semantics of measure queries, where the number of embeddings matters
  (Section 2 of the paper).

Execution is entirely in **id space**: bindings are flat tuples of encoded
term ids, slotted positionally (one slot per variable, assigned when the
join order is fixed), so extending a binding is an index lookup plus a
tuple copy — no per-candidate dictionaries, no consistency re-checks
(slots bound by earlier patterns are part of the index lookup itself).

:meth:`BGPEvaluator.evaluate_ids` exposes the raw id-level result as an
:class:`~repro.algebra.relation.IdRelation`; downstream operators (joins,
Σ-selections, γ) keep working on ids and terms are only decoded at the
result boundary.  :meth:`BGPEvaluator.evaluate` materializes immediately
and is the decoded-term compatibility API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.algebra.relation import IdRelation, Relation, tuple_getter
from repro.rdf.graph import Graph
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.optimizer import order_patterns
from repro.bgp.query import BGPQuery

__all__ = ["BGPEvaluator", "evaluate_query"]


class BGPEvaluator:
    """Evaluates BGP queries over one graph, reusing its statistics.

    Create one evaluator per graph when several queries are evaluated (the
    analytics layer does this); the statistics used for join ordering are
    then computed once.
    """

    def __init__(self, graph: Graph, statistics: Optional[GraphStatistics] = None):
        self._graph = graph
        self._statistics = statistics if statistics is not None else GraphStatistics(graph)

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def statistics(self) -> GraphStatistics:
        return self._statistics

    # ------------------------------------------------------------------

    def evaluate_ids(
        self,
        query: BGPQuery,
        semantics: str = "set",
        initial_binding: Optional[Dict[Variable, Term]] = None,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> IdRelation:
        """Evaluate ``query`` and return the id-level relation over its head.

        Every column holds encoded term ids of this graph's dictionary; no
        term object is materialized.  This is the engine's native entry
        point — decoded results are a :meth:`materialize` call away.

        ``fact_range`` — a ``(variable, lo, hi)`` triple (``hi`` may be
        None for "unbounded") — restricts one variable's bindings to term
        ids in ``[lo, hi)``.  This is the shard-evaluation hook of the
        partitioned engine: bindings outside the range are pruned as soon
        as the variable is bound, so a shard pays only for its own slice of
        the join work, not a post-hoc filter over the full result.
        """
        if semantics not in ("set", "bag"):
            raise EvaluationError(f"unknown semantics {semantics!r}; expected 'set' or 'bag'")

        bindings, slot_of = self._solve(query, initial_binding, fact_range)
        dictionary = self._graph.dictionary
        if not bindings:
            return IdRelation.adopt_encoded(query.head_names, [], dictionary)
        try:
            head_slots = [slot_of[variable] for variable in query.head]
        except KeyError as exc:  # pragma: no cover - guarded by query safety check
            raise EvaluationError(
                f"head variable {exc.args[0]!r} unbound after evaluation"
            ) from exc

        head_of = tuple_getter(head_slots)
        if semantics == "set":
            rows = list(_distinct_rows(map(head_of, bindings)))
        else:
            rows = [head_of(binding) for binding in bindings]
        return IdRelation.adopt_encoded(query.head_names, rows, dictionary)

    def evaluate(
        self,
        query: BGPQuery,
        semantics: str = "set",
        initial_binding: Optional[Dict[Variable, Term]] = None,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> Relation:
        """Evaluate ``query`` and return a decoded relation over its head variables.

        Parameters
        ----------
        query:
            The BGP query to evaluate.
        semantics:
            ``"set"`` (deduplicate head rows) or ``"bag"`` (one row per
            homomorphism of the body).
        initial_binding:
            Optional pre-bindings of some variables to ground terms (used by
            extended classifiers); variables bound here may also appear in
            the head.
        fact_range:
            Optional id-range restriction of one variable (see
            :meth:`evaluate_ids`).
        """
        return self.evaluate_ids(
            query, semantics=semantics, initial_binding=initial_binding, fact_range=fact_range
        ).materialize()

    def count(self, query: BGPQuery, semantics: str = "set") -> int:
        """Return the number of answers without materializing term objects."""
        return len(self.evaluate_ids(query, semantics=semantics))

    # ------------------------------------------------------------------
    # core solving loop (id level)
    # ------------------------------------------------------------------

    def _solve(
        self,
        query: BGPQuery,
        initial_binding: Optional[Dict[Variable, Term]] = None,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> Tuple[List[Tuple[Optional[int], ...]], Dict[Variable, int]]:
        """Return (list of slot tuples, variable → slot index).

        A slot tuple holds one encoded id per variable; slots of variables
        not yet bound hold ``None`` (only possible transiently — after the
        last pattern every body variable is bound).
        """
        graph = self._graph
        start_ids: Dict[Variable, int] = {}
        if initial_binding:
            for variable, term in initial_binding.items():
                term_id = graph.encode_term(term)
                if term_id is None:
                    return [], {}  # a pre-bound constant absent from the graph: no answers
                start_ids[variable] = term_id

        pending_range: Optional[Tuple[Variable, int, Optional[int]]] = None
        if fact_range is not None:
            range_variable, range_lo, range_hi = fact_range
            if range_variable in start_ids:
                term_id = start_ids[range_variable]
                if term_id < range_lo or (range_hi is not None and term_id >= range_hi):
                    return [], {}  # the pre-bound fact lives in another shard
            else:
                pending_range = fact_range

        ordered = order_patterns(
            query.body, self._statistics, bound_variables=set(start_ids)
        )

        # Fixed slot assignment: initial-binding variables first, then body
        # variables in the order the chosen join order binds them.
        slot_of: Dict[Variable, int] = {}
        for variable in start_ids:
            slot_of[variable] = len(slot_of)
        for pattern in ordered:
            for term in pattern.as_tuple():
                if isinstance(term, Variable) and term not in slot_of:
                    slot_of[term] = len(slot_of)

        start = [None] * len(slot_of)
        for variable, term_id in start_ids.items():
            start[slot_of[variable]] = term_id

        bindings: List[Tuple[Optional[int], ...]] = [tuple(start)]
        bound = set(start_ids)
        for pattern in ordered:
            if not bindings:
                return [], slot_of
            range_check: Optional[Tuple[int, int, Optional[int]]] = None
            if pending_range is not None and pending_range[0] in pattern.variables():
                # This pattern binds the restricted variable: prune to the
                # shard's id interval inside the extension loop, before any
                # out-of-range binding tuple is even allocated — later
                # patterns never see foreign facts.
                range_check = (slot_of[pending_range[0]], pending_range[1], pending_range[2])
            bindings = self._extend(bindings, pattern, slot_of, bound, range_check)
            bound.update(pattern.variables())
            if range_check is not None:
                pending_range = None
        return bindings, slot_of

    def _extend(
        self,
        bindings: List[Tuple[Optional[int], ...]],
        pattern: TriplePattern,
        slot_of: Dict[Variable, int],
        bound: set,
        range_check: Optional[Tuple[int, int, Optional[int]]] = None,
    ) -> List[Tuple[Optional[int], ...]]:
        """Extend every binding with the matches of one pattern.

        The pattern is compiled once against the (static) set of variables
        bound by earlier patterns: each position is a pre-encoded constant,
        a bound slot (part of the index lookup) or a free slot (filled from
        the matched triple).  Matches are consistent by construction; only
        a variable repeated in free positions of the *same* pattern needs
        an equality check.

        ``range_check`` — a ``(slot, lo, hi)`` triple — drops matches whose
        id for that slot falls outside ``[lo, hi)`` (shard evaluation; the
        slot is always free here, since the caller only restricts a
        variable this pattern binds for the first time).
        """
        graph = self._graph
        positions = pattern.as_tuple()

        constants: List[Optional[int]] = [None, None, None]
        bound_positions: List[Tuple[int, int]] = []  # (triple position, slot)
        free_positions: List[Tuple[int, int]] = []  # first occurrence of each free var
        duplicate_checks: List[Tuple[int, int]] = []  # (position, first position)
        first_seen: Dict[Variable, int] = {}
        for index, term in enumerate(positions):
            if isinstance(term, Variable):
                if term in bound:
                    bound_positions.append((index, slot_of[term]))
                elif term in first_seen:
                    duplicate_checks.append((index, first_seen[term]))
                else:
                    first_seen[term] = index
                    free_positions.append((index, slot_of[term]))
            else:
                term_id = graph.encode_term(term)
                if term_id is None:
                    return []  # unknown constant: the whole conjunction is empty
                constants[index] = term_id

        match_ids = graph.match_ids
        extended: List[Tuple[Optional[int], ...]] = []

        if len(free_positions) == 1 and not duplicate_checks:
            # One free variable (the dominant shape: e.g. the objects of
            # ``(x, hasAge, ?d)`` with x bound): iterate the terminal index
            # set directly, allocating nothing but the extended bindings.
            free_index, free_slot = free_positions[0]
            match_single = graph.match_single_ids
            if range_check is not None and range_check[0] == free_slot:
                # Shard evaluation of the pattern binding the fact variable:
                # integer-compare each candidate id before allocating — the
                # per-shard cost of the fact-enumerating pattern collapses
                # to a range scan.
                _, lo, hi = range_check
                for binding in bindings:
                    lookup = list(constants)
                    for index, slot in bound_positions:
                        lookup[index] = binding[slot]
                    for value in match_single(lookup[0], lookup[1], lookup[2], free_index):
                        if value < lo or (hi is not None and value >= hi):
                            continue
                        new_binding = list(binding)
                        new_binding[free_slot] = value
                        extended.append(tuple(new_binding))
                return extended
            for binding in bindings:
                lookup = list(constants)
                for index, slot in bound_positions:
                    lookup[index] = binding[slot]
                for value in match_single(lookup[0], lookup[1], lookup[2], free_index):
                    new_binding = list(binding)
                    new_binding[free_slot] = value
                    extended.append(tuple(new_binding))
            return extended

        if not free_positions:
            # Fully bound pattern: a per-binding existence check.
            for binding in bindings:
                lookup = list(constants)
                for index, slot in bound_positions:
                    lookup[index] = binding[slot]
                for _ in match_ids(lookup[0], lookup[1], lookup[2]):
                    extended.append(binding)
                    break
            return extended

        for binding in bindings:
            lookup = list(constants)
            for index, slot in bound_positions:
                lookup[index] = binding[slot]
            for triple_ids in match_ids(lookup[0], lookup[1], lookup[2]):
                consistent = True
                for index, first_index in duplicate_checks:
                    if triple_ids[index] != triple_ids[first_index]:
                        consistent = False
                        break
                if not consistent:
                    continue
                new_binding = list(binding)
                for index, slot in free_positions:
                    new_binding[slot] = triple_ids[index]
                if range_check is not None:
                    value = new_binding[range_check[0]]
                    if value < range_check[1] or (
                        range_check[2] is not None and value >= range_check[2]
                    ):
                        continue
                extended.append(tuple(new_binding))
        return extended


def _distinct_rows(rows: Iterable[Tuple]) -> Iterator[Tuple]:
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row


def evaluate_query(
    query: BGPQuery,
    graph: Graph,
    semantics: str = "set",
    statistics: Optional[GraphStatistics] = None,
) -> Relation:
    """One-shot convenience wrapper around :class:`BGPEvaluator`."""
    return BGPEvaluator(graph, statistics).evaluate(query, semantics=semantics)
