"""BGP query evaluation over an RDF graph.

The evaluator enumerates the homomorphisms (total variable bindings) of a
query body into the graph by processing triple patterns one at a time in an
optimizer-chosen order, then projects the bindings onto the query head:

* with **set semantics** (default) duplicate head rows are eliminated — the
  semantics of classifiers and of AnS node/edge definitions;
* with **bag semantics** one output row is produced per homomorphism — the
  semantics of measure queries, where the number of embeddings matters
  (Section 2 of the paper).

Execution is entirely in **id space**: bindings are flat tuples of encoded
term ids, slotted positionally (one slot per variable, assigned when the
join order is fixed), so extending a binding is an index lookup plus a
tuple copy — no per-candidate dictionaries, no consistency re-checks
(slots bound by earlier patterns are part of the index lookup itself).

:meth:`BGPEvaluator.evaluate_ids` exposes the raw id-level result as an
:class:`~repro.algebra.relation.IdRelation`; downstream operators (joins,
Σ-selections, γ) keep working on ids and terms are only decoded at the
result boundary.  :meth:`BGPEvaluator.evaluate` materializes immediately
and is the decoded-term compatibility API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.algebra import columnar as columnar_kernels
from repro.algebra.columnar import ColumnarIdRelation, resolve_engine
from repro.algebra.relation import IdRelation, Relation, tuple_getter
from repro.rdf.graph import Graph
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.optimizer import order_patterns
from repro.bgp.query import BGPQuery

try:  # numpy is the optional [fast] extra; the row engine needs none of it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["BGPEvaluator", "ColumnarTripleIndex", "evaluate_query"]

#: Term-id ceiling for packing an (s, o) pair into one int64 join key.
_PAIR_KEY_BITS = 31


class ColumnarTripleIndex:
    """Columnar (array) views over one graph's triples, cached per version.

    The graph's native indexes are nested Python dicts — ideal for the row
    engine's per-binding lookups, useless for vectorized joins.  This index
    materializes, per predicate, the matching ``(subject, object)`` id pairs
    as contiguous ``int64`` arrays in either sort order, plus sorted
    candidate arrays for two-constant patterns, so the column-block solver
    can extend whole binding blocks with ``searchsorted`` joins.

    Arrays are built lazily (one Python pass per predicate) and cached; any
    graph mutation (detected via :attr:`~repro.rdf.graph.Graph.version`)
    drops the caches, so the index never serves a stale snapshot.
    """

    __slots__ = ("_graph", "_version", "_pairs", "_sorted_pairs", "_candidates", "_pair_keys")

    def __init__(self, graph: Graph):
        self._graph = graph
        self._version = graph.version
        self._pairs: Dict[int, Tuple] = {}
        self._sorted_pairs: Dict[Tuple[int, int], Tuple] = {}
        self._candidates: Dict[Tuple, object] = {}
        self._pair_keys: Dict[int, object] = {}

    def refresh(self) -> None:
        """Drop every cached array when the graph changed underneath."""
        version = self._graph.version
        if version != self._version:
            self._version = version
            self._pairs.clear()
            self._sorted_pairs.clear()
            self._candidates.clear()
            self._pair_keys.clear()

    def predicate_pairs(self, p_id: int) -> Tuple:
        """All ``(subjects, objects)`` of triples with predicate ``p_id``.

        Storage backends that already hold the columns in array form (mmap
        snapshots) are sliced zero-copy via
        :meth:`~repro.rdf.graph.Graph.columnar_predicate_pairs`; heap
        graphs take the Python build pass over their dict indexes.
        """
        found = self._pairs.get(p_id)
        if found is None:
            found = self._graph.columnar_predicate_pairs(p_id)
            if found is None:
                subjects: List[int] = []
                objects: List[int] = []
                for s, _, o in self._graph.match_ids(None, p_id, None):
                    subjects.append(s)
                    objects.append(o)
                found = (
                    _np.asarray(subjects, dtype=_np.int64),
                    _np.asarray(objects, dtype=_np.int64),
                )
            self._pairs[p_id] = found
        return found

    def sorted_pairs(self, p_id: int, sort_position: int) -> Tuple:
        """``(sorted key array, aligned other-position array)`` for ``p_id``.

        ``sort_position`` 0 sorts by subject (keys = subjects, values =
        objects); 2 sorts by object.  Snapshot-backed graphs store both
        sort orders on disk, so the argsort is skipped and the arrays are
        zero-copy file views.
        """
        key = (p_id, sort_position)
        found = self._sorted_pairs.get(key)
        if found is None:
            found = self._graph.columnar_sorted_pairs(p_id, sort_position)
            if found is None:
                subjects, objects = self.predicate_pairs(p_id)
                keys, values = (subjects, objects) if sort_position == 0 else (objects, subjects)
                order = _np.argsort(keys, kind="stable")
                found = (keys[order], values[order])
            self._sorted_pairs[key] = found
        return found

    def candidates(
        self, s_id: Optional[int], p_id: Optional[int], o_id: Optional[int], position: int
    ):
        """Sorted ids at the one free ``position`` of a two-constant pattern."""
        key = (s_id, p_id, o_id, position)
        found = self._candidates.get(key)
        if found is None:
            values = self._graph.match_single_ids(s_id, p_id, o_id, position)
            found = self._candidates[key] = _np.sort(
                _np.fromiter(values, dtype=_np.int64)
            )
        return found

    def pair_keys(self, p_id: int):
        """Sorted packed ``(s << 31) | o`` keys, or None when ids overflow."""
        found = self._pair_keys.get(p_id)
        if found is None:
            subjects, objects = self.predicate_pairs(p_id)
            if len(subjects) and int(
                max(subjects.max(), objects.max())
            ) >= (1 << _PAIR_KEY_BITS):
                found = self._pair_keys[p_id] = ()
            else:
                found = self._pair_keys[p_id] = _np.sort(
                    (subjects << _PAIR_KEY_BITS) | objects
                )
        return None if isinstance(found, tuple) else found


class BGPEvaluator:
    """Evaluates BGP queries over one graph, reusing its statistics.

    Create one evaluator per graph when several queries are evaluated (the
    analytics layer does this); the statistics used for join ordering are
    then computed once.
    """

    def __init__(
        self,
        graph: Graph,
        statistics: Optional[GraphStatistics] = None,
        engine: Optional[str] = None,
    ):
        self._graph = graph
        self._statistics = statistics if statistics is not None else GraphStatistics(graph)
        self._engine = resolve_engine(engine)
        self._columnar_index: Optional[ColumnarTripleIndex] = None

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def statistics(self) -> GraphStatistics:
        return self._statistics

    @property
    def engine(self) -> str:
        """The resolved execution engine: ``"rows"`` or ``"columnar"``."""
        return self._engine

    # ------------------------------------------------------------------

    def evaluate_ids(
        self,
        query: BGPQuery,
        semantics: str = "set",
        initial_binding: Optional[Dict[Variable, Term]] = None,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> IdRelation:
        """Evaluate ``query`` and return the id-level relation over its head.

        Every column holds encoded term ids of this graph's dictionary; no
        term object is materialized.  This is the engine's native entry
        point — decoded results are a :meth:`materialize` call away.

        ``fact_range`` — a ``(variable, lo, hi)`` triple (``hi`` may be
        None for "unbounded") — restricts one variable's bindings to term
        ids in ``[lo, hi)``.  This is the shard-evaluation hook of the
        partitioned engine: bindings outside the range are pruned as soon
        as the variable is bound, so a shard pays only for its own slice of
        the join work, not a post-hoc filter over the full result.
        """
        if semantics not in ("set", "bag"):
            raise EvaluationError(f"unknown semantics {semantics!r}; expected 'set' or 'bag'")

        if self._engine == "columnar" and initial_binding is None:
            # The columnar fast path: emit column blocks instead of per-row
            # binding tuples.  Unsupported query shapes (variable
            # predicates, disconnected joins, repeated in-pattern
            # variables) answer None and take the row path below.
            result = self._solve_columnar(query, semantics, fact_range)
            if result is not None:
                return result

        bindings, slot_of = self._solve(query, initial_binding, fact_range)
        dictionary = self._graph.dictionary
        if not bindings:
            return IdRelation.adopt_encoded(query.head_names, [], dictionary)
        try:
            head_slots = [slot_of[variable] for variable in query.head]
        except KeyError as exc:  # pragma: no cover - guarded by query safety check
            raise EvaluationError(
                f"head variable {exc.args[0]!r} unbound after evaluation"
            ) from exc

        head_of = tuple_getter(head_slots)
        if semantics == "set":
            rows = list(_distinct_rows(map(head_of, bindings)))
        else:
            rows = [head_of(binding) for binding in bindings]
        return IdRelation.adopt_encoded(query.head_names, rows, dictionary)

    def evaluate(
        self,
        query: BGPQuery,
        semantics: str = "set",
        initial_binding: Optional[Dict[Variable, Term]] = None,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> Relation:
        """Evaluate ``query`` and return a decoded relation over its head variables.

        Parameters
        ----------
        query:
            The BGP query to evaluate.
        semantics:
            ``"set"`` (deduplicate head rows) or ``"bag"`` (one row per
            homomorphism of the body).
        initial_binding:
            Optional pre-bindings of some variables to ground terms (used by
            extended classifiers); variables bound here may also appear in
            the head.
        fact_range:
            Optional id-range restriction of one variable (see
            :meth:`evaluate_ids`).
        """
        return self.evaluate_ids(
            query, semantics=semantics, initial_binding=initial_binding, fact_range=fact_range
        ).materialize()

    def count(self, query: BGPQuery, semantics: str = "set") -> int:
        """Return the number of answers without materializing term objects."""
        return len(self.evaluate_ids(query, semantics=semantics))

    # ------------------------------------------------------------------
    # columnar solving loop (column blocks)
    # ------------------------------------------------------------------

    def _solve_columnar(
        self,
        query: BGPQuery,
        semantics: str,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> Optional[ColumnarIdRelation]:
        """Evaluate ``query`` as whole column blocks; None when unsupported.

        The binding state is a block of parallel ``int64`` arrays (one per
        bound variable, all the same length) instead of a list of slot
        tuples.  Each triple pattern extends the block with one vectorized
        operation against the :class:`ColumnarTripleIndex`:

        * a pattern binding one new variable from a bound one is an
          expansion join (``searchsorted`` against the pre-sorted
          per-predicate pair arrays);
        * a pattern over two bound variables is a semi-join mask on packed
          pair keys; over one bound variable and a constant, a sorted
          membership mask;
        * the ``fact_range`` of shard evaluation is a single batched
          ``(lo <= ids) & (ids < hi)`` prune of the whole block, applied
          the moment the restricted variable is bound.

        Supported shapes cover the analytical workloads (constant
        predicates, connected join graphs).  Variable predicates, repeated
        variables inside one pattern and disconnected patterns fall back to
        the row engine — same answers, tuple at a time.
        """
        graph = self._graph
        dictionary = graph.dictionary
        index = self._columnar_index
        if index is None:
            index = self._columnar_index = ColumnarTripleIndex(graph)
        index.refresh()

        head_names = query.head_names

        def empty_result() -> ColumnarIdRelation:
            arrays = {name: _np.empty(0, dtype=_np.int64) for name in head_names}
            return ColumnarIdRelation.from_arrays(head_names, arrays, dictionary)

        ordered = order_patterns(query.body, self._statistics, bound_variables=set())
        block: Dict[Variable, object] = {}
        length: Optional[int] = None  # None = no columns yet (one empty binding)
        pending_range = fact_range

        for pattern in ordered:
            s, p, o = pattern.as_tuple()
            if isinstance(p, Variable):
                return None  # variable predicates: row path
            p_id = graph.encode_term(p)
            if p_id is None:
                return empty_result()
            s_is_var = isinstance(s, Variable)
            o_is_var = isinstance(o, Variable)
            if s_is_var and o_is_var and s == o:
                return None  # repeated in-pattern variable: row path
            s_id = None
            if not s_is_var:
                s_id = graph.encode_term(s)
                if s_id is None:
                    return empty_result()
            o_id = None
            if not o_is_var:
                o_id = graph.encode_term(o)
                if o_id is None:
                    return empty_result()
            s_bound = s_is_var and s in block
            o_bound = o_is_var and o in block
            s_free = s_is_var and not s_bound
            o_free = o_is_var and not o_bound

            if s_free and o_free:
                if length is not None:
                    return None  # disconnected pattern: cartesian step, row path
                subjects, objects = index.predicate_pairs(p_id)
                block = {s: subjects, o: objects}
                length = len(subjects)
            elif s_free or o_free:
                free_variable = s if s_free else o
                if (s_free and o_bound) or (o_free and s_bound):
                    # Expansion join on the bound end of the pattern.
                    bound_variable = o if s_free else s
                    sort_position = 2 if s_free else 0
                    keys, values = index.sorted_pairs(p_id, sort_position)
                    left_idx, positions = columnar_kernels.expand_sorted(
                        block[bound_variable], keys
                    )
                    block = {
                        variable: array[left_idx] for variable, array in block.items()
                    }
                    block[free_variable] = values[positions]
                    length = len(left_idx)
                else:
                    # The other end is a constant: a candidate column.
                    if length is not None:
                        return None  # shares no variable with the block
                    position = 0 if s_free else 2
                    candidates = index.candidates(s_id, p_id, o_id, position)
                    block = {free_variable: candidates}
                    length = len(candidates)
            else:
                # No free variable: an existence filter.
                if s_bound and o_bound:
                    packed = index.pair_keys(p_id)
                    if packed is None:
                        return None  # term ids overflow the packed key
                    subject_column = block[s]
                    if len(subject_column) and int(
                        max(subject_column.max(), block[o].max())
                    ) >= (1 << _PAIR_KEY_BITS):
                        return None
                    keys = (subject_column << _PAIR_KEY_BITS) | block[o]
                    mask = _sorted_membership(packed, keys)
                elif s_bound:
                    mask = _sorted_membership(
                        index.candidates(None, p_id, o_id, 0), block[s]
                    )
                elif o_bound:
                    mask = _sorted_membership(
                        index.candidates(s_id, p_id, None, 2), block[o]
                    )
                else:
                    # Fully constant pattern: the conjunction survives or dies.
                    if graph.count_ids(s_id, p_id, o_id) == 0:
                        return empty_result()
                    continue
                block = {variable: array[mask] for variable, array in block.items()}
                length = int(mask.sum())

            if pending_range is not None and pending_range[0] in block:
                # Batched fact-range prune: one vectorized compare over the
                # whole block the moment the restricted variable is bound.
                _, lo, hi = pending_range
                column = block[pending_range[0]]
                mask = column >= lo
                if hi is not None:
                    mask &= column < hi
                block = {variable: array[mask] for variable, array in block.items()}
                length = int(mask.sum())
                pending_range = None

            if length == 0:
                return empty_result()

        try:
            head_arrays = [block[variable] for variable in query.head]
        except KeyError:
            return None  # a head variable the supported shapes never bound
        if semantics == "set":
            keep = columnar_kernels.dedup_arrays(head_arrays)
            head_arrays = [array[keep] for array in head_arrays]
        return ColumnarIdRelation.from_arrays(
            head_names,
            dict(zip(head_names, head_arrays)),
            dictionary,
        )

    # ------------------------------------------------------------------
    # core solving loop (id level)
    # ------------------------------------------------------------------

    def _solve(
        self,
        query: BGPQuery,
        initial_binding: Optional[Dict[Variable, Term]] = None,
        fact_range: Optional[Tuple[Variable, int, Optional[int]]] = None,
    ) -> Tuple[List[Tuple[Optional[int], ...]], Dict[Variable, int]]:
        """Return (list of slot tuples, variable → slot index).

        A slot tuple holds one encoded id per variable; slots of variables
        not yet bound hold ``None`` (only possible transiently — after the
        last pattern every body variable is bound).
        """
        graph = self._graph
        start_ids: Dict[Variable, int] = {}
        if initial_binding:
            for variable, term in initial_binding.items():
                term_id = graph.encode_term(term)
                if term_id is None:
                    return [], {}  # a pre-bound constant absent from the graph: no answers
                start_ids[variable] = term_id

        pending_range: Optional[Tuple[Variable, int, Optional[int]]] = None
        if fact_range is not None:
            range_variable, range_lo, range_hi = fact_range
            if range_variable in start_ids:
                term_id = start_ids[range_variable]
                if term_id < range_lo or (range_hi is not None and term_id >= range_hi):
                    return [], {}  # the pre-bound fact lives in another shard
            else:
                pending_range = fact_range

        ordered = order_patterns(
            query.body, self._statistics, bound_variables=set(start_ids)
        )

        # Fixed slot assignment: initial-binding variables first, then body
        # variables in the order the chosen join order binds them.
        slot_of: Dict[Variable, int] = {}
        for variable in start_ids:
            slot_of[variable] = len(slot_of)
        for pattern in ordered:
            for term in pattern.as_tuple():
                if isinstance(term, Variable) and term not in slot_of:
                    slot_of[term] = len(slot_of)

        start = [None] * len(slot_of)
        for variable, term_id in start_ids.items():
            start[slot_of[variable]] = term_id

        bindings: List[Tuple[Optional[int], ...]] = [tuple(start)]
        bound = set(start_ids)
        for pattern in ordered:
            if not bindings:
                return [], slot_of
            range_check: Optional[Tuple[int, int, Optional[int]]] = None
            if pending_range is not None and pending_range[0] in pattern.variables():
                # This pattern binds the restricted variable: prune to the
                # shard's id interval inside the extension loop, before any
                # out-of-range binding tuple is even allocated — later
                # patterns never see foreign facts.
                range_check = (slot_of[pending_range[0]], pending_range[1], pending_range[2])
            bindings = self._extend(bindings, pattern, slot_of, bound, range_check)
            bound.update(pattern.variables())
            if range_check is not None:
                pending_range = None
        return bindings, slot_of

    def _extend(
        self,
        bindings: List[Tuple[Optional[int], ...]],
        pattern: TriplePattern,
        slot_of: Dict[Variable, int],
        bound: set,
        range_check: Optional[Tuple[int, int, Optional[int]]] = None,
    ) -> List[Tuple[Optional[int], ...]]:
        """Extend every binding with the matches of one pattern.

        The pattern is compiled once against the (static) set of variables
        bound by earlier patterns: each position is a pre-encoded constant,
        a bound slot (part of the index lookup) or a free slot (filled from
        the matched triple).  Matches are consistent by construction; only
        a variable repeated in free positions of the *same* pattern needs
        an equality check.

        ``range_check`` — a ``(slot, lo, hi)`` triple — drops matches whose
        id for that slot falls outside ``[lo, hi)`` (shard evaluation; the
        slot is always free here, since the caller only restricts a
        variable this pattern binds for the first time).
        """
        graph = self._graph
        positions = pattern.as_tuple()

        constants: List[Optional[int]] = [None, None, None]
        bound_positions: List[Tuple[int, int]] = []  # (triple position, slot)
        free_positions: List[Tuple[int, int]] = []  # first occurrence of each free var
        duplicate_checks: List[Tuple[int, int]] = []  # (position, first position)
        first_seen: Dict[Variable, int] = {}
        for index, term in enumerate(positions):
            if isinstance(term, Variable):
                if term in bound:
                    bound_positions.append((index, slot_of[term]))
                elif term in first_seen:
                    duplicate_checks.append((index, first_seen[term]))
                else:
                    first_seen[term] = index
                    free_positions.append((index, slot_of[term]))
            else:
                term_id = graph.encode_term(term)
                if term_id is None:
                    return []  # unknown constant: the whole conjunction is empty
                constants[index] = term_id

        match_ids = graph.match_ids
        extended: List[Tuple[Optional[int], ...]] = []

        if len(free_positions) == 1 and not duplicate_checks:
            # One free variable (the dominant shape: e.g. the objects of
            # ``(x, hasAge, ?d)`` with x bound): iterate the terminal index
            # set directly, allocating nothing but the extended bindings.
            free_index, free_slot = free_positions[0]
            match_single = graph.match_single_ids
            if range_check is not None and range_check[0] == free_slot:
                # Shard evaluation of the pattern binding the fact variable:
                # integer-compare each candidate id before allocating — the
                # per-shard cost of the fact-enumerating pattern collapses
                # to a range scan.
                _, lo, hi = range_check
                for binding in bindings:
                    lookup = list(constants)
                    for index, slot in bound_positions:
                        lookup[index] = binding[slot]
                    for value in match_single(lookup[0], lookup[1], lookup[2], free_index):
                        if value < lo or (hi is not None and value >= hi):
                            continue
                        new_binding = list(binding)
                        new_binding[free_slot] = value
                        extended.append(tuple(new_binding))
                return extended
            for binding in bindings:
                lookup = list(constants)
                for index, slot in bound_positions:
                    lookup[index] = binding[slot]
                for value in match_single(lookup[0], lookup[1], lookup[2], free_index):
                    new_binding = list(binding)
                    new_binding[free_slot] = value
                    extended.append(tuple(new_binding))
            return extended

        if not free_positions:
            # Fully bound pattern: a per-binding existence check.
            for binding in bindings:
                lookup = list(constants)
                for index, slot in bound_positions:
                    lookup[index] = binding[slot]
                for _ in match_ids(lookup[0], lookup[1], lookup[2]):
                    extended.append(binding)
                    break
            return extended

        for binding in bindings:
            lookup = list(constants)
            for index, slot in bound_positions:
                lookup[index] = binding[slot]
            for triple_ids in match_ids(lookup[0], lookup[1], lookup[2]):
                consistent = True
                for index, first_index in duplicate_checks:
                    if triple_ids[index] != triple_ids[first_index]:
                        consistent = False
                        break
                if not consistent:
                    continue
                new_binding = list(binding)
                for index, slot in free_positions:
                    new_binding[slot] = triple_ids[index]
                if range_check is not None:
                    value = new_binding[range_check[0]]
                    if value < range_check[1] or (
                        range_check[2] is not None and value >= range_check[2]
                    ):
                        continue
                extended.append(tuple(new_binding))
        return extended


def _sorted_membership(sorted_values, keys):
    """Boolean mask: which ``keys`` occur in the pre-sorted value array."""
    if len(sorted_values) == 0:
        return _np.zeros(len(keys), dtype=bool)
    positions = _np.searchsorted(sorted_values, keys)
    positions[positions == len(sorted_values)] = len(sorted_values) - 1
    return sorted_values[positions] == keys


def _distinct_rows(rows: Iterable[Tuple]) -> Iterator[Tuple]:
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row


def evaluate_query(
    query: BGPQuery,
    graph: Graph,
    semantics: str = "set",
    statistics: Optional[GraphStatistics] = None,
) -> Relation:
    """One-shot convenience wrapper around :class:`BGPEvaluator`."""
    return BGPEvaluator(graph, statistics).evaluate(query, semantics=semantics)
