"""BGP query evaluation over an RDF graph.

The evaluator enumerates the homomorphisms (total variable bindings) of a
query body into the graph by processing triple patterns one at a time in an
optimizer-chosen order, then projects the bindings onto the query head:

* with **set semantics** (default) duplicate head rows are eliminated — the
  semantics of classifiers and of AnS node/edge definitions;
* with **bag semantics** one output row is produced per homomorphism — the
  semantics of measure queries, where the number of embeddings matters
  (Section 2 of the paper).

The inner loop works on dictionary-encoded term identifiers so that binding
extension is a matter of integer index lookups; terms are only decoded when
producing the final relation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.algebra.relation import Relation
from repro.rdf.graph import Graph
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.optimizer import order_patterns
from repro.bgp.query import BGPQuery

__all__ = ["BGPEvaluator", "evaluate_query"]

#: A partial binding maps variables to encoded term ids.
_IdBinding = Dict[Variable, int]


class BGPEvaluator:
    """Evaluates BGP queries over one graph, reusing its statistics.

    Create one evaluator per graph when several queries are evaluated (the
    analytics layer does this); the statistics used for join ordering are
    then computed once.
    """

    def __init__(self, graph: Graph, statistics: Optional[GraphStatistics] = None):
        self._graph = graph
        self._statistics = statistics if statistics is not None else GraphStatistics(graph)

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def statistics(self) -> GraphStatistics:
        return self._statistics

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: BGPQuery,
        semantics: str = "set",
        initial_binding: Optional[Dict[Variable, Term]] = None,
    ) -> Relation:
        """Evaluate ``query`` and return a relation over its head variables.

        Parameters
        ----------
        query:
            The BGP query to evaluate.
        semantics:
            ``"set"`` (deduplicate head rows) or ``"bag"`` (one row per
            homomorphism of the body).
        initial_binding:
            Optional pre-bindings of some variables to ground terms (used by
            extended classifiers); variables bound here may also appear in
            the head.
        """
        if semantics not in ("set", "bag"):
            raise EvaluationError(f"unknown semantics {semantics!r}; expected 'set' or 'bag'")

        head_names = query.head_names
        bindings = self._solve(query, initial_binding)
        decode = self._graph.decode_id

        rows: List[Tuple] = []
        head_variables = query.head
        for binding in bindings:
            try:
                rows.append(tuple(decode(binding[variable]) for variable in head_variables))
            except KeyError as exc:  # pragma: no cover - guarded by query safety check
                raise EvaluationError(
                    f"head variable {exc.args[0]!r} unbound after evaluation"
                ) from exc
        relation = Relation(head_names, rows)
        if semantics == "set":
            return _distinct(relation)
        return relation

    def count(self, query: BGPQuery, semantics: str = "set") -> int:
        """Return the number of answers without materializing term objects."""
        return len(self.evaluate(query, semantics=semantics))

    # ------------------------------------------------------------------
    # core solving loop (id level)
    # ------------------------------------------------------------------

    def _solve(
        self, query: BGPQuery, initial_binding: Optional[Dict[Variable, Term]] = None
    ) -> List[_IdBinding]:
        graph = self._graph
        start_binding: _IdBinding = {}
        if initial_binding:
            for variable, term in initial_binding.items():
                term_id = graph.encode_term(term)
                if term_id is None:
                    return []  # a pre-bound constant absent from the graph: no answers
                start_binding[variable] = term_id

        ordered = order_patterns(
            query.body, self._statistics, bound_variables=set(start_binding)
        )

        bindings: List[_IdBinding] = [start_binding]
        for pattern in ordered:
            if not bindings:
                return []
            bindings = self._extend(bindings, pattern)
        return bindings

    def _extend(self, bindings: List[_IdBinding], pattern: TriplePattern) -> List[_IdBinding]:
        graph = self._graph
        positions = pattern.as_tuple()

        # Pre-encode constant positions once; an unknown constant means the
        # pattern (hence the whole conjunction) has no matches.
        constant_ids: List[Optional[int]] = []
        for term in positions:
            if isinstance(term, Variable):
                constant_ids.append(None)
            else:
                term_id = graph.encode_term(term)
                if term_id is None:
                    return []
                constant_ids.append(term_id)

        variable_positions = [
            (index, term) for index, term in enumerate(positions) if isinstance(term, Variable)
        ]

        extended: List[_IdBinding] = []
        for binding in bindings:
            # Build the id-level pattern for this binding.
            lookup: List[Optional[int]] = list(constant_ids)
            for index, variable in variable_positions:
                bound = binding.get(variable)
                if bound is not None:
                    lookup[index] = bound
            for triple_ids in graph.match_ids(lookup[0], lookup[1], lookup[2]):
                new_binding = dict(binding)
                consistent = True
                for index, variable in variable_positions:
                    value = triple_ids[index]
                    existing = new_binding.get(variable)
                    if existing is None:
                        new_binding[variable] = value
                    elif existing != value:
                        consistent = False
                        break
                if consistent:
                    extended.append(new_binding)
        return extended


def _distinct(relation: Relation) -> Relation:
    seen = set()
    rows = []
    for row in relation:
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return Relation(relation.columns, rows)


def evaluate_query(
    query: BGPQuery,
    graph: Graph,
    semantics: str = "set",
    statistics: Optional[GraphStatistics] = None,
) -> Relation:
    """One-shot convenience wrapper around :class:`BGPEvaluator`."""
    return BGPEvaluator(graph, statistics).evaluate(query, semantics=semantics)
