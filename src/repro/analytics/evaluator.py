"""From-scratch evaluation of analytical queries over an AnS instance.

This module implements Definition 1 (the answer set of an AnQ), Definition 3
(the intermediary query ``int(Q)``), the extended measure result ``mᵏ(I)``
and Definition 4 (the partial result ``pres(Q, I)``), together with the
aggregation step of Equation (3):

    ``ans(Q)(I) = γ_{d₁,...,dₙ,⊕(v)}(π_{x,d₁,...,dₙ,v}(pres(Q, I)))``

The evaluator is the *baseline* against which the OLAP rewritings of
:mod:`repro.olap.rewriting` are compared: it always goes back to the AnS
instance, evaluating the classifier (set semantics, restricted by Σ) and the
measure (bag semantics) and joining them on the fact variable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algebra.grouping import group_aggregate
from repro.algebra.operators import join_on, project, select
from repro.algebra.relation import Relation
from repro.rdf.graph import Graph
from repro.rdf.statistics import GraphStatistics
from repro.bgp.evaluator import BGPEvaluator
from repro.analytics.answer import CubeAnswer, KeyGenerator, MaterializedQueryResults, PartialResult
from repro.analytics.query import KEY_COLUMN, AnalyticalQuery

__all__ = ["AnalyticalQueryEvaluator"]


class AnalyticalQueryEvaluator:
    """Evaluates analytical queries against one materialized AnS instance.

    Parameters
    ----------
    instance:
        The AnS instance graph (see :func:`repro.analytics.instance.materialize_instance`).
    statistics:
        Optional pre-computed statistics of the instance (recomputed otherwise).
    """

    def __init__(self, instance: Graph, statistics: Optional[GraphStatistics] = None):
        self._instance = instance
        self._bgp = BGPEvaluator(instance, statistics)

    @property
    def instance(self) -> Graph:
        return self._instance

    @property
    def bgp_evaluator(self) -> BGPEvaluator:
        return self._bgp

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------

    def classifier_result(self, query: AnalyticalQuery) -> Relation:
        """``c_Σ(I)``: the classifier answer (set semantics), restricted by Σ.

        The extended classifier is, by Definition 2, the union over all
        combinations of Σ values of the classifier with dimensions
        substituted; its answer equals the Σ-selection over the plain
        classifier answer, which is how we compute it.
        """
        relation = self._bgp.evaluate(query.classifier, semantics="set")
        if query.sigma.is_unrestricted():
            return relation
        return select(relation, query.sigma.allows_row)

    def measure_result(self, query: AnalyticalQuery) -> Relation:
        """``m(I)``: the measure answer with bag semantics (one row per embedding)."""
        return self._bgp.evaluate(query.measure, semantics="bag")

    def extended_measure_result(
        self, query: AnalyticalQuery, key_generator: Optional[KeyGenerator] = None
    ) -> Relation:
        """``mᵏ(I)``: the measure result with a fresh ``newk()`` key per tuple."""
        keys = key_generator or KeyGenerator()
        measure = self.measure_result(query)
        columns = (KEY_COLUMN,) + measure.columns
        return Relation(columns, ((keys(),) + row for row in measure))

    def intermediary_result(self, query: AnalyticalQuery) -> Relation:
        """``int(Q)(I) = c ⋈ₓ m̄`` (Definition 3).

        ``m̄`` has set semantics and exposes every variable of the measure
        body; measure body variables whose names collide with classifier
        columns (other than the fact variable) are renamed with an ``m_``
        prefix to keep the join a pure fact-variable join.
        """
        fact = query.fact_variable.name
        classifier_relation = self._bgp.evaluate(query.classifier, semantics="set")
        if not query.sigma.is_unrestricted():
            classifier_relation = select(classifier_relation, query.sigma.allows_row)

        measure_bar = query.measure_bar()
        clashes = {
            variable: variable
            for variable in measure_bar.head
            if variable.name != fact and variable.name in classifier_relation.columns
        }
        measure_relation = self._bgp.evaluate(measure_bar, semantics="set")
        if clashes:
            renaming = {variable.name: f"m_{variable.name}" for variable in clashes}
            from repro.algebra.operators import rename  # local import to avoid cycle noise

            measure_relation = rename(measure_relation, renaming)
        return join_on(classifier_relation, measure_relation, [(fact, fact)])

    # ------------------------------------------------------------------
    # pres / ans
    # ------------------------------------------------------------------

    def partial_result(
        self, query: AnalyticalQuery, key_generator: Optional[KeyGenerator] = None
    ) -> PartialResult:
        """``pres(Q, I) = c(I) ⋈ₓ mᵏ(I)`` (Definition 4)."""
        fact = query.fact_variable.name
        classifier_relation = self.classifier_result(query)
        keyed_measure = self.extended_measure_result(query, key_generator)
        # Reorder mᵏ columns to (x, k, v) so the join drops the duplicate fact
        # column and the output layout is (x, d₁..dₙ, k, v).
        measure_column = query.measure_variable.name
        keyed_measure = keyed_measure.reorder((fact, KEY_COLUMN, measure_column))
        joined = join_on(classifier_relation, keyed_measure, [(fact, fact)])
        dimension_columns = query.dimension_names
        expected = (fact, *dimension_columns, KEY_COLUMN, measure_column)
        if tuple(joined.columns) != expected:
            joined = joined.reorder(expected)
        return PartialResult(
            joined,
            fact_column=fact,
            dimension_columns=dimension_columns,
            key_column=KEY_COLUMN,
            measure_column=measure_column,
        )

    def answer_from_partial(self, query: AnalyticalQuery, partial: PartialResult) -> CubeAnswer:
        """Equation (3): aggregate the partial result into ``ans(Q)``."""
        fact = partial.fact_column
        measure_column = partial.measure_column
        dimension_columns = partial.dimension_columns
        projected = project(
            partial.relation, (fact, *dimension_columns, measure_column)
        )
        aggregated = group_aggregate(
            projected,
            by=dimension_columns,
            measure=measure_column,
            function=query.aggregate,
            output_column=measure_column,
        )
        return CubeAnswer(aggregated, dimension_columns, measure_column)

    def answer(self, query: AnalyticalQuery) -> CubeAnswer:
        """``ans(Q, I)`` computed from scratch (Definition 1 via Equation (3))."""
        return self.answer_from_partial(query, self.partial_result(query))

    def evaluate(
        self,
        query: AnalyticalQuery,
        materialize_partial: bool = True,
    ) -> MaterializedQueryResults:
        """Answer ``Q`` and keep the materialized inputs for later OLAP reuse.

        With ``materialize_partial=True`` (the recommended mode, and the one
        the paper assumes: "pres(Q) ... which we assume has been materialized
        and stored as part of the evaluation of the original query Q"), the
        partial result is retained alongside the final answer.
        """
        partial = self.partial_result(query)
        answer = self.answer_from_partial(query, partial)
        return MaterializedQueryResults(
            query,
            answer=answer,
            partial=partial if materialize_partial else None,
        )

    # ------------------------------------------------------------------
    # direct Definition 1 semantics (used to cross-check Equation (3) in tests)
    # ------------------------------------------------------------------

    def answer_definition1(self, query: AnalyticalQuery) -> CubeAnswer:
        """Compute ``ans(Q, I)`` literally following Definition 1.

        For every classifier tuple ``⟨xʲ, d₁ʲ, ..., dₙʲ⟩`` build the bag
        ``qʲ(I)`` of measure values of ``xʲ``; facts with an empty bag do not
        contribute; group the classifier tuples by dimension values and
        aggregate the union of their facts' bags.

        This is intentionally the naive formulation — quadratic in the worst
        case — and exists so property-based tests can check that the
        relational-algebra pipeline (Equation (3)) agrees with it.
        """
        classifier_relation = self.classifier_result(query)
        measure_relation = self.measure_result(query)
        fact_index = 0
        measure_values: Dict[object, list] = {}
        for row in measure_relation:
            measure_values.setdefault(row[0], []).append(row[1])

        dimension_columns = query.dimension_names
        measure_column = query.measure_variable.name
        groups: Dict[Tuple, list] = {}
        for row in classifier_relation:
            fact = row[fact_index]
            bag = measure_values.get(fact)
            if not bag:
                continue  # empty bag: the aggregated measure is undefined
            key = tuple(row[1:])
            groups.setdefault(key, []).extend(bag)

        rows = []
        for key, values in groups.items():
            rows.append(key + (query.aggregate(values),))
        relation = Relation((*dimension_columns, measure_column), rows)
        return CubeAnswer(relation, dimension_columns, measure_column)
