"""From-scratch evaluation of analytical queries over an AnS instance.

This module implements Definition 1 (the answer set of an AnQ), Definition 3
(the intermediary query ``int(Q)``), the extended measure result ``mᵏ(I)``
and Definition 4 (the partial result ``pres(Q, I)``), together with the
aggregation step of Equation (3):

    ``ans(Q)(I) = γ_{d₁,...,dₙ,⊕(v)}(π_{x,d₁,...,dₙ,v}(pres(Q, I)))``

The evaluator is the *baseline* against which the OLAP rewritings of
:mod:`repro.olap.rewriting` are compared: it always goes back to the AnS
instance, evaluating the classifier (set semantics, restricted by Σ) and the
measure (bag semantics) and joining them on the fact variable.

Execution model
---------------

By default the whole pipeline runs in **id space** (late materialization):
the BGP evaluator returns dictionary-encoded
:class:`~repro.algebra.relation.IdRelation` results, the Σ-selection tests
ids with memoized decoding, the fact-variable hash join keys on integers and
γ decodes only the measure bags it aggregates.  Materialized ``pres(Q)`` and
``ans(Q)`` stay encoded, so the OLAP rewritings never decode either; the
public accessors (``PartialResult.relation``, ``CubeAnswer.relation``,
:class:`~repro.olap.cube.Cube`) decode lazily at the result boundary.

Pass ``id_space=False`` to run the historical decode-eagerly pipeline — kept
as the benchmark baseline quantifying what late materialization buys.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algebra.columnar import ColumnarIdRelation, prepend_key_column, resolve_engine
from repro.algebra.grouping import group_aggregate, group_partial_states
from repro.algebra.operators import join_on, project, rename, select
from repro.algebra.relation import Relation, relation_like
from repro.errors import RewritingError
from repro.rdf.graph import Graph, GraphShard
from repro.rdf.statistics import GraphStatistics
from repro.bgp.evaluator import BGPEvaluator
from repro.analytics.answer import CubeAnswer, KeyGenerator, MaterializedQueryResults, PartialResult
from repro.analytics.query import KEY_COLUMN, AnalyticalQuery
from repro.analytics.rolling import roll_partial

__all__ = ["AnalyticalQueryEvaluator"]


class AnalyticalQueryEvaluator:
    """Evaluates analytical queries against one materialized AnS instance.

    Parameters
    ----------
    instance:
        The AnS instance graph (see :func:`repro.analytics.instance.materialize_instance`).
    statistics:
        Optional pre-computed statistics of the instance (recomputed otherwise).
    id_space:
        When True (default), evaluate on dictionary-encoded ids with late
        materialization; when False, decode every BGP result eagerly (the
        pre-refactor behaviour, kept as a benchmark baseline, always on the
        row engine).
    engine:
        ``"rows"``, ``"columnar"`` or None/``"auto"`` — see
        :func:`repro.algebra.columnar.resolve_engine`.  ``auto`` picks the
        vectorized columnar engine when numpy (the ``[fast]`` extra) is
        installed, honouring a ``REPRO_ENGINE`` override.
    """

    #: Entailment mode marker the planner and calibration read to name
    #: strategies (``"saturate"`` / ``"rewrite"`` / None).  Plain evaluators
    #: answer over asserted triples only; the session sets ``"saturate"``
    #: when the graph is its maintained ρdf closure, and
    #: :class:`repro.analytics.entailment.EntailmentRewritingEvaluator`
    #: overrides it with ``"rewrite"``.
    entailment: Optional[str] = None

    def __init__(
        self,
        instance: Graph,
        statistics: Optional[GraphStatistics] = None,
        id_space: bool = True,
        engine: Optional[str] = None,
    ):
        self._instance = instance
        self._id_space = bool(id_space)
        # The columnar engine is an id-space refinement: the decode-eagerly
        # baseline always runs on rows.
        self._engine = resolve_engine(engine) if self._id_space else "rows"
        self._bgp = BGPEvaluator(instance, statistics, engine=self._engine)

    @property
    def instance(self) -> Graph:
        return self._instance

    @property
    def bgp_evaluator(self) -> BGPEvaluator:
        return self._bgp

    @property
    def id_space(self) -> bool:
        """True when this evaluator executes on encoded ids (late materialization)."""
        return self._id_space

    @property
    def engine(self) -> str:
        """The resolved execution engine: ``"rows"`` or ``"columnar"``."""
        return self._engine

    # ------------------------------------------------------------------
    # engine-space building blocks (id relations in id_space mode)
    # ------------------------------------------------------------------

    def _bgp_result(self, query, semantics: str, initial_binding=None, fact_range=None) -> Relation:
        if self._id_space:
            return self._bgp.evaluate_ids(
                query, semantics=semantics, initial_binding=initial_binding, fact_range=fact_range
            )
        return self._bgp.evaluate(
            query, semantics=semantics, initial_binding=initial_binding, fact_range=fact_range
        )

    def _classifier_relation(self, query: AnalyticalQuery, fact_range=None) -> Relation:
        relation = self._bgp_result(query.classifier, "set", fact_range=fact_range)
        if query.sigma.is_unrestricted():
            return relation
        return select(relation, query.sigma.predicate())

    def _measure_relation(self, query: AnalyticalQuery, fact_range=None) -> Relation:
        return self._bgp_result(query.measure, "bag", fact_range=fact_range)

    def _extended_measure_relation(
        self,
        query: AnalyticalQuery,
        key_generator: Optional[KeyGenerator] = None,
        fact_range=None,
    ) -> Relation:
        keys = key_generator or KeyGenerator()
        measure = self._measure_relation(query, fact_range=fact_range)
        if isinstance(measure, ColumnarIdRelation) and isinstance(keys, KeyGenerator):
            # The columnar mᵏ: consume len(measure) consecutive keys in one
            # step and prepend them as an arange column — no row boxing.
            return prepend_key_column(measure, KEY_COLUMN, keys.take(len(measure)))
        columns = (KEY_COLUMN,) + measure.columns
        return relation_like(columns, ((keys(),) + row for row in measure), measure)

    # ------------------------------------------------------------------
    # components (public, decoded — the id engine is an implementation detail)
    # ------------------------------------------------------------------

    def classifier_result(self, query: AnalyticalQuery) -> Relation:
        """``c_Σ(I)``: the classifier answer (set semantics), restricted by Σ.

        The extended classifier is, by Definition 2, the union over all
        combinations of Σ values of the classifier with dimensions
        substituted; its answer equals the Σ-selection over the plain
        classifier answer, which is how we compute it.
        """
        return self._classifier_relation(query).materialize()

    def measure_result(self, query: AnalyticalQuery) -> Relation:
        """``m(I)``: the measure answer with bag semantics (one row per embedding)."""
        return self._measure_relation(query).materialize()

    def extended_measure_result(
        self, query: AnalyticalQuery, key_generator: Optional[KeyGenerator] = None
    ) -> Relation:
        """``mᵏ(I)``: the measure result with a fresh ``newk()`` key per tuple."""
        return self._extended_measure_relation(query, key_generator).materialize()

    def intermediary_result(self, query: AnalyticalQuery) -> Relation:
        """``int(Q)(I) = c ⋈ₓ m̄`` (Definition 3).

        ``m̄`` has set semantics and exposes every variable of the measure
        body; measure body variables whose names collide with classifier
        columns (other than the fact variable) are renamed with an ``m_``
        prefix to keep the join a pure fact-variable join.
        """
        fact = query.fact_variable.name
        classifier_relation = self._classifier_relation(query)

        measure_bar = query.measure_bar()
        clashes = {
            variable: variable
            for variable in measure_bar.head
            if variable.name != fact and variable.name in classifier_relation.columns
        }
        measure_relation = self._bgp_result(measure_bar, "set")
        if clashes:
            renaming = {variable.name: f"m_{variable.name}" for variable in clashes}
            measure_relation = rename(measure_relation, renaming)
        return join_on(classifier_relation, measure_relation, [(fact, fact)]).materialize()

    # ------------------------------------------------------------------
    # pres / ans
    # ------------------------------------------------------------------

    def partial_result(
        self,
        query: AnalyticalQuery,
        key_generator: Optional[KeyGenerator] = None,
        fact_range=None,
    ) -> PartialResult:
        """``pres(Q, I) = c(I) ⋈ₓ mᵏ(I)`` (Definition 4).

        The returned partial result keeps its relation in the engine's
        value space (encoded ids by default); use
        :attr:`~repro.analytics.answer.PartialResult.relation` for the
        decoded view.

        ``fact_range`` restricts both sides to facts with term ids in the
        given ``(variable, lo, hi)`` interval — the building block of
        per-shard evaluation (see :meth:`shard_results`).

        Rolled-up queries evaluate their base (finest-granularity) query and
        map the result through the rollup stack (see
        :mod:`repro.analytics.rolling`); the rolled ``pres`` is decoded.
        """
        if query.rollup:
            base_partial = self.partial_result(
                query.base_query(), key_generator=key_generator, fact_range=fact_range
            )
            return roll_partial(base_partial, query, start=0)
        fact = query.fact_variable.name
        classifier_relation = self._classifier_relation(query, fact_range=fact_range)
        keyed_measure = self._extended_measure_relation(query, key_generator, fact_range=fact_range)
        # Reorder mᵏ columns to (x, k, v) so the join drops the duplicate fact
        # column and the output layout is (x, d₁..dₙ, k, v).
        measure_column = query.measure_variable.name
        keyed_measure = keyed_measure.reorder((fact, KEY_COLUMN, measure_column))
        joined = join_on(classifier_relation, keyed_measure, [(fact, fact)])
        dimension_columns = query.dimension_names
        expected = (fact, *dimension_columns, KEY_COLUMN, measure_column)
        if tuple(joined.columns) != expected:
            joined = joined.reorder(expected)
        return PartialResult(
            joined,
            fact_column=fact,
            dimension_columns=dimension_columns,
            key_column=KEY_COLUMN,
            measure_column=measure_column,
        )

    def fact_partial_rows(
        self,
        query: AnalyticalQuery,
        fact_term,
        key_generator: KeyGenerator,
        memo: Optional[Dict] = None,
    ) -> Relation:
        """Freshly evaluated ``pres(Q)`` rows of a **single** fact.

        The workhorse of incremental maintenance
        (:mod:`repro.olap.maintenance`): after a graph update, only the
        facts whose embeddings touch changed triples need new partial-result
        rows, and each is re-derived here by evaluating classifier and
        measure with the fact variable pre-bound — a handful of index
        lookups instead of a full BGP join.

        The returned relation has the exact ``pres(Q)`` layout
        ``(x, d₁..dₙ, k, v)`` in the engine's value space.  Keys come from
        ``key_generator`` — one per measure embedding, duplicated across
        classifier rows, matching :meth:`partial_result`'s ``c ⋈ₓ mᵏ``
        construction (Algorithm 1's key-dedup semantics depend on this).

        ``memo`` (optional) caches the raw classifier / measure evaluations
        keyed by (query, fact) across calls — refresh waves re-derive the
        same facts for many cached entries that share bodies, and only the
        Σ-selection and the keys differ per entry.  Callers own the memo's
        lifetime and must drop it when the graph changes.
        """
        if query.rollup:
            raise RewritingError(
                f"per-fact re-derivation is not defined for rolled-up query {query.name!r}; "
                "rolled cache entries are invalidated, not patched"
            )
        fact = query.fact_variable.name
        measure_column = query.measure_variable.name
        columns = (fact, *query.dimension_names, KEY_COLUMN, measure_column)
        binding = {query.fact_variable: fact_term}
        classifier = measure = None
        if memo is not None:
            classifier_key = ("classifier", query.classifier, fact_term)
            measure_key = ("measure", query.measure, fact_term)
            classifier = memo.get(classifier_key)
            measure = memo.get(measure_key)
        if classifier is None:
            classifier = self._bgp_result(query.classifier, "set", initial_binding=binding)
            if memo is not None:
                memo[classifier_key] = classifier
        if measure is None:
            measure = self._bgp_result(query.measure, "bag", initial_binding=binding)
            if memo is not None:
                memo[measure_key] = measure
        if not query.sigma.is_unrestricted():
            classifier = select(classifier, query.sigma.predicate())
        keyed = [(row[1], key_generator()) for row in measure]
        rows = [
            tuple(classifier_row) + (key, value)
            for classifier_row in classifier
            for value, key in keyed
        ]
        return relation_like(columns, rows, classifier, measure, plain_columns=(KEY_COLUMN,))

    def answer_from_partial(self, query: AnalyticalQuery, partial: PartialResult) -> CubeAnswer:
        """Equation (3): aggregate the partial result into ``ans(Q)``."""
        fact = partial.fact_column
        measure_column = partial.measure_column
        dimension_columns = partial.dimension_columns
        projected = project(
            partial.storage, (fact, *dimension_columns, measure_column)
        )
        aggregated = group_aggregate(
            projected,
            by=dimension_columns,
            measure=measure_column,
            function=query.aggregate,
            output_column=measure_column,
        )
        return CubeAnswer(aggregated, dimension_columns, measure_column)

    def answer(self, query: AnalyticalQuery) -> CubeAnswer:
        """``ans(Q, I)`` computed from scratch (Definition 1 via Equation (3))."""
        return self.answer_from_partial(query, self.partial_result(query))

    # ------------------------------------------------------------------
    # per-shard evaluation (partitioned execution support)
    # ------------------------------------------------------------------

    def partial_answer_states(
        self, query: AnalyticalQuery, partial: PartialResult
    ) -> Dict[Tuple, object]:
        """Mergeable γ states of ``ans(Q)`` from one (shard's) partial result.

        The per-shard half of Equation (3): the same projection
        :meth:`answer_from_partial` aggregates over, stopped at the
        :class:`~repro.algebra.aggregates.PartialAggregate` state per
        dimension group.  States of disjoint fact shards merge into the
        exact serial answer (see :mod:`repro.algebra.grouping`).
        """
        projected = project(
            partial.storage,
            (partial.fact_column, *partial.dimension_columns, partial.measure_column),
        )
        return group_partial_states(
            projected,
            by=partial.dimension_columns,
            measure=partial.measure_column,
            function=query.aggregate,
        )

    def shard_results(
        self,
        query: AnalyticalQuery,
        shard: GraphShard,
        key_base: int = 1,
        keep_rows: bool = True,
    ) -> Tuple[Optional[list], Dict[Tuple, object]]:
        """Evaluate one fact shard: (``pres(Q)`` rows, γ state map).

        The fact variable is range-restricted to the shard's id interval in
        both the classifier and the measure evaluation, so each fact's
        partial-result rows are produced by exactly one shard.  ``newk()``
        keys start at ``key_base`` — callers hand each shard a disjoint key
        range, preserving Algorithm 1's key-dedup semantics across the
        concatenated ``pres(Q)``.

        Returns plain picklable data (a list of row tuples, or None when
        ``keep_rows`` is False, and a state map keyed by dimension-value
        tuples in the engine's value space): this is the payload worker
        processes ship back to the merge side.
        """
        fact_range = (query.fact_variable, shard.lo, shard.hi)
        partial = self.partial_result(
            query, key_generator=KeyGenerator(key_base), fact_range=fact_range
        )
        states = self.partial_answer_states(query, partial)
        rows = partial.storage.rows if keep_rows else None
        return rows, states

    def evaluate(
        self,
        query: AnalyticalQuery,
        materialize_partial: bool = True,
    ) -> MaterializedQueryResults:
        """Answer ``Q`` and keep the materialized inputs for later OLAP reuse.

        With ``materialize_partial=True`` (the recommended mode, and the one
        the paper assumes: "pres(Q) ... which we assume has been materialized
        and stored as part of the evaluation of the original query Q"), the
        partial result is retained alongside the final answer.
        """
        partial = self.partial_result(query)
        answer = self.answer_from_partial(query, partial)
        return MaterializedQueryResults(
            query,
            answer=answer,
            partial=partial if materialize_partial else None,
        )

    # ------------------------------------------------------------------
    # direct Definition 1 semantics (used to cross-check Equation (3) in tests)
    # ------------------------------------------------------------------

    def answer_definition1(self, query: AnalyticalQuery) -> CubeAnswer:
        """Compute ``ans(Q, I)`` literally following Definition 1.

        For every classifier tuple ``⟨xʲ, d₁ʲ, ..., dₙʲ⟩`` build the bag
        ``qʲ(I)`` of measure values of ``xʲ``; facts with an empty bag do not
        contribute; group the classifier tuples by dimension values and
        aggregate the union of their facts' bags.

        This is intentionally the naive formulation — quadratic in the worst
        case — and exists so property-based tests can check that the
        relational-algebra pipeline (Equation (3)) agrees with it.
        """
        classifier_relation = self._classifier_relation(query)
        measure_relation = self._measure_relation(query)
        measure_column = query.measure_variable.name
        measure_decoder = measure_relation.column_decoder(measure_column)
        fact_index = 0
        measure_values: Dict[object, list] = {}
        for row in measure_relation:
            measure_values.setdefault(row[0], []).append(row[1])

        dimension_columns = query.dimension_names
        groups: Dict[Tuple, list] = {}
        for row in classifier_relation:
            fact = row[fact_index]
            bag = measure_values.get(fact)
            if not bag:
                continue  # empty bag: the aggregated measure is undefined
            key = tuple(row[1:])
            groups.setdefault(key, []).extend(bag)

        rows = []
        for key, values in groups.items():
            if measure_decoder is not None:
                values = [measure_decoder(value) for value in values]
            rows.append(key + (query.aggregate(values),))
        relation = relation_like(
            (*dimension_columns, measure_column),
            rows,
            classifier_relation,
            plain_columns=(measure_column,),
        )
        return CubeAnswer(relation, dimension_columns, measure_column)
