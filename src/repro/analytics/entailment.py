"""Entailment-aware query answering without saturation (query rewriting).

The alternative to materializing the RDFS closure (:func:`repro.rdf.reasoning.
saturate`) is to *reformulate* each BGP query so that evaluating it over the
raw, unsaturated graph returns exactly the answers it would have over the
saturated one.  This module implements that reformulation for the ρdf
fragment handled by :class:`repro.rdf.reasoning.RDFSRules`:

* a pattern ``(s, p, o)`` with a constant, non-schema predicate ``p`` also
  matches any triple whose predicate is a (transitive) subproperty of ``p``
  (rdfs7);
* a pattern ``(s, rdf:type, C)`` with a constant class ``C`` also matches
  instances typed with a subclass of ``C`` (rdfs9), and instances that are
  the subject (object) of a property whose effective domain (range) is ``C``
  or one of its subclasses (rdfs2/rdfs3 folded through rdfs5/rdfs9).

Each pattern therefore expands into a set of *alternatives*; the query
expands into the cartesian product of its patterns' alternatives (its
*branches*).  A head binding is an answer iff some branch produces it, and —
because the saturated graph is still a triple **set** — bag multiplicities
count distinct embeddings of the *original* variables only.  The evaluation
below therefore runs every branch with head = all original variables under
set semantics, unions and deduplicates, and only then projects to the
original head (keeping duplicates for bag semantics).

Patterns this rewriting cannot expand finitely — a variable in predicate
position, or ``rdf:type`` with a variable class — raise
:class:`~repro.errors.EvaluationError`: silently returning incomplete
answers would break the saturate ≡ rewrite contract the differential tests
enforce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.algebra.operators import dedup, project, union_all
from repro.algebra.relation import Relation
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.bgp.query import BGPQuery
from repro.errors import EvaluationError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF
from repro.rdf.reasoning import RDFSRules, _SCHEMA_PREDICATES
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern

__all__ = [
    "EntailmentRewritingEvaluator",
    "SchemaView",
    "expand_query",
]

_TYPE = RDF.term("type")
_FRESH_PREFIX = "__entail"

# Expanding a query multiplies pattern alternatives together; past this many
# branches the rewriting would be slower than saturating outright, and more
# likely signals a degenerate schema than a real workload.
MAX_BRANCHES = 512


class SchemaView:
    """Inverse-closure view over :class:`RDFSRules` used to expand patterns.

    ``RDFSRules`` answers "what does this triple entail" (super-directed);
    rewriting needs the opposite direction: which asserted shapes *could
    have entailed* a requested pattern.
    """

    def __init__(self, graph: Graph):
        self._rules = RDFSRules(graph)
        # Invert the closures once: subclasses(C) = {D | C ∈ superclasses(D)}.
        self._subclasses: Dict[Term, Set[Term]] = {}
        for child, supers in self._rules._subclass_closure.items():
            for super_class in supers:
                self._subclasses.setdefault(super_class, set()).add(child)
        self._subproperties: Dict[Term, Set[Term]] = {}
        for child, supers in self._rules._subproperty_closure.items():
            for super_property in supers:
                self._subproperties.setdefault(super_property, set()).add(child)
        # Effective domains/ranges of a property: its own plus those of its
        # (transitive) superproperties, then closed upward through rdfs9 —
        # mirroring how RDFSRules.entail folds rdfs2/3 through rdfs5/9.
        self._typing_properties: Dict[Term, Tuple[Set[Term], Set[Term]]] = {}
        properties = (
            set(self._rules._domains)
            | set(self._rules._ranges)
            | set(self._rules._subproperty_closure)
        )
        for prop in properties:
            reachable = {prop} | self._rules.superproperties(prop)
            domains: Set[Term] = set()
            ranges: Set[Term] = set()
            for each in reachable:
                domains |= self._rules.domains(each)
                ranges |= self._rules.ranges(each)
            classes_of = lambda seeds: set().union(
                seeds, *(self._rules.superclasses(seed) for seed in seeds)
            )
            self._typing_properties[prop] = (classes_of(domains), classes_of(ranges))

    @property
    def rules(self) -> RDFSRules:
        return self._rules

    def subclasses(self, klass: Term) -> Set[Term]:
        """All (transitive) subclasses of ``klass``, excluding itself."""
        return set(self._subclasses.get(klass, ()))

    def subproperties(self, prop: Term) -> Set[Term]:
        """All (transitive) subproperties of ``prop``, excluding itself."""
        return set(self._subproperties.get(prop, ()))

    def domain_properties(self, klass: Term) -> Set[Term]:
        """Properties whose assertion types the *subject* as ``klass``."""
        return {
            prop
            for prop, (domains, _ranges) in self._typing_properties.items()
            if klass in domains
        }

    def range_properties(self, klass: Term) -> Set[Term]:
        """Properties whose assertion types the *object* as ``klass``."""
        return {
            prop
            for prop, (_domains, ranges) in self._typing_properties.items()
            if klass in ranges
        }


class _FreshVariables:
    """Generator of fresh existential variables avoiding a taken name set."""

    def __init__(self, taken: Set[str]):
        self._taken = set(taken)
        self._counter = 0

    def next(self) -> Variable:
        while True:
            name = f"{_FRESH_PREFIX}{self._counter}"
            self._counter += 1
            if name not in self._taken:
                self._taken.add(name)
                return Variable(name)


def _pattern_alternatives(
    pattern: TriplePattern, schema: SchemaView, fresh: _FreshVariables
) -> List[TriplePattern]:
    """All asserted-pattern shapes whose matches entail ``pattern``."""
    subject, predicate, object_ = pattern.as_tuple()
    if isinstance(predicate, Variable):
        raise EvaluationError(
            "entailment rewriting cannot expand a variable-predicate pattern "
            f"({pattern!r}); use entailment='saturate' for such queries"
        )
    if predicate in _SCHEMA_PREDICATES:
        # Schema statements are answered from assertions only, exactly as in
        # saturate mode (rdfs5/11 closures are never materialized as triples).
        return [pattern]
    if predicate == _TYPE:
        if isinstance(object_, Variable):
            raise EvaluationError(
                "entailment rewriting cannot expand an rdf:type pattern with a "
                f"variable class ({pattern!r}); use entailment='saturate'"
            )
        alternatives = [pattern]
        for subclass in sorted(schema.subclasses(object_), key=str):
            alternatives.append(TriplePattern(subject, _TYPE, subclass))
        for prop in sorted(schema.domain_properties(object_), key=str):
            alternatives.append(TriplePattern(subject, prop, fresh.next()))
        for prop in sorted(schema.range_properties(object_), key=str):
            alternatives.append(TriplePattern(fresh.next(), prop, subject))
        return alternatives
    alternatives = [pattern]
    for subproperty in sorted(schema.subproperties(predicate), key=str):
        alternatives.append(TriplePattern(subject, subproperty, object_))
    return alternatives


def expand_query(query: BGPQuery, schema: SchemaView) -> List[BGPQuery]:
    """The branch queries of ``query`` under ρdf entailment rewriting.

    Every branch keeps the original head; fresh witness variables introduced
    by domain/range alternatives are existential.  The first branch is always
    the original query itself.
    """
    fresh = _FreshVariables({variable.name for variable in query.variables()})
    per_pattern = [_pattern_alternatives(pattern, schema, fresh) for pattern in query.body]
    branch_count = 1
    for alternatives in per_pattern:
        branch_count *= len(alternatives)
        if branch_count > MAX_BRANCHES:
            raise EvaluationError(
                f"entailment rewriting of {query.name!r} would produce more than "
                f"{MAX_BRANCHES} branches; use entailment='saturate' instead"
            )
    bodies: List[Tuple[TriplePattern, ...]] = [()]
    for alternatives in per_pattern:
        bodies = [body + (choice,) for body in bodies for choice in alternatives]
    return [query.with_body(body, name=f"{query.name}@ent{i}") for i, body in enumerate(bodies)]


class EntailmentRewritingEvaluator(AnalyticalQueryEvaluator):
    """Analytical evaluator answering queries *as if* the graph were saturated.

    Every BGP evaluation is replaced by the union of its entailment branches
    (see module docstring); the graph itself is never modified.  The schema
    view and per-query expansions are cached and rebuilt whenever the graph
    version moves, so schema-triple deltas change the rewriting exactly as
    they would change a re-saturation.
    """

    entailment = "rewrite"

    def __init__(
        self,
        instance: Graph,
        statistics: Optional[GraphStatistics] = None,
        id_space: bool = True,
        engine: Optional[str] = None,
    ):
        super().__init__(instance, statistics=statistics, id_space=id_space, engine=engine)
        self._schema_version: Optional[int] = None
        self._schema_view: Optional[SchemaView] = None
        self._expansions: Dict[BGPQuery, Tuple[int, List[BGPQuery]]] = {}

    def schema_view(self) -> SchemaView:
        """The current :class:`SchemaView`, rebuilt when the graph changed."""
        version = self.instance.version
        if self._schema_view is None or self._schema_version != version:
            self._schema_view = SchemaView(self.instance)
            self._schema_version = version
            self._expansions.clear()
        return self._schema_view

    def branches(self, query: BGPQuery) -> List[BGPQuery]:
        """The (cached) entailment branches of ``query``."""
        schema = self.schema_view()
        cached = self._expansions.get(query)
        if cached is not None and cached[0] == self._schema_version:
            return cached[1]
        expanded = expand_query(query, schema)
        self._expansions[query] = (self._schema_version, expanded)
        return expanded

    def branch_count(self, query: BGPQuery) -> int:
        """How many branch evaluations answering ``query`` costs."""
        try:
            return len(self.branches(query))
        except EvaluationError:
            return 1

    def _bgp_result(self, query, semantics: str, initial_binding=None, fact_range=None) -> Relation:
        branches = self.branches(query)
        if len(branches) == 1:
            return super()._bgp_result(
                query, semantics, initial_binding=initial_binding, fact_range=fact_range
            )
        # Head = all original variables: bag multiplicities over the closure
        # count embeddings of the original query's variables only, never the
        # fresh witnesses, and never one embedding twice across derivations.
        full_head = query.all_variables_head()
        results = [
            super(EntailmentRewritingEvaluator, self)._bgp_result(
                branch.with_head(full_head.head, name=branch.name),
                "set",
                initial_binding=initial_binding,
                fact_range=fact_range,
            )
            for branch in branches
        ]
        combined = dedup(union_all(*results))
        projected = project(combined, query.head_names)
        if semantics == "set":
            return dedup(projected)
        return projected
