"""Analytical queries (AnQ) and extended analytical queries.

An analytical query ``Q :- ⟨c(x, d₁, ..., dₙ), m(x, v), ⊕⟩`` consists of

* a **classifier** ``c``: a rooted BGP query with set semantics whose head
  lists the fact variable ``x`` followed by the dimension variables;
* a **measure** ``m``: a rooted BGP query with bag semantics whose head is
  ``(x, v)``, rooted in the *same* variable ``x``;
* an **aggregation function** ⊕.

An *extended* AnQ (Definition 2) additionally carries a Σ function
restricting dimension values; a standard AnQ is simply an extended AnQ with
the unrestricted Σ, so this module uses a single class for both.

Validation performed at construction:

* classifier arity ≥ 1 and measure arity = 2;
* classifier and measure are rooted in the same (identically named) fact
  variable;
* the dimension names are distinct from the fact variable, from the measure
  value variable and from the reserved key column name ``"k"``;
* Σ ranges exactly over the classifier's dimensions;
* the aggregation function is known to the aggregate registry;
* optionally (when a schema is supplied) classifier and measure are checked
  to be homomorphic to the analytical schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import QueryDefinitionError
from repro.algebra.aggregates import AggregateFunction, get_aggregate
from repro.rdf.terms import Variable
from repro.bgp.query import BGPQuery
from repro.analytics.schema import AnalyticalSchema
from repro.analytics.sigma import DimensionRestriction, Sigma

__all__ = ["AnalyticalQuery", "RollStage", "KEY_COLUMN"]

#: Reserved column name for the ``newk()`` key of extended measure results.
KEY_COLUMN = "k"


class RollStage:
    """One ROLL-UP step in a query's hierarchy lattice position.

    A rolled-up query remembers *how* it was coarsened: the dimension that
    was rolled, the hierarchy that mapped its values, and the Σ that was in
    effect **before** the roll (i.e. at the finer granularity).  The stack
    of stages identifies the query's position in the hierarchy lattice and
    lets the planner answer it from any cached finer-grained cube.
    """

    __slots__ = ("dimension", "hierarchy", "sigma_before")

    def __init__(self, dimension: str, hierarchy: object, sigma_before: Sigma):
        if not hasattr(hierarchy, "parent") or not hasattr(hierarchy, "canonical_token"):
            raise QueryDefinitionError(
                "a RollStage hierarchy must provide parent() and canonical_token() "
                f"(got {type(hierarchy).__name__})"
            )
        self.dimension = dimension
        self.hierarchy = hierarchy
        self.sigma_before = sigma_before

    def canonical_token(self) -> str:
        """Value-based identity token for cache keys (see ``olap.cache``)."""
        sigma_part = ";".join(
            f"{name}->{token}" for name, token in self.sigma_before.canonical_tokens()
        )
        return f"{self.dimension}^{self.hierarchy.canonical_token()}^sigma[{sigma_part}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RollStage):
            return NotImplemented
        return self.canonical_token() == other.canonical_token()

    def __repr__(self) -> str:  # pragma: no cover
        return f"RollStage({self.dimension} via {getattr(self.hierarchy, 'name', '?')})"


class AnalyticalQuery:
    """An (extended) analytical query ⟨c_Σ, m, ⊕⟩ over an analytical schema.

    Parameters
    ----------
    classifier:
        The classifier BGP query; its head is ``(x, d₁, ..., dₙ)``.
    measure:
        The measure BGP query; its head is ``(x, v)``.
    aggregate:
        Aggregation function name (``"count"``, ``"sum"``, ``"avg"``, ...)
        or an :class:`~repro.algebra.aggregates.AggregateFunction`.
    sigma:
        Optional Σ restriction; defaults to the unrestricted Σ over the
        classifier's dimensions.
    schema:
        Optional :class:`~repro.analytics.schema.AnalyticalSchema`; when
        given, classifier and measure are checked to be homomorphic to it.
    name:
        Display name of the query (``"Q"`` by default).
    """

    def __init__(
        self,
        classifier: BGPQuery,
        measure: BGPQuery,
        aggregate: Union[str, AggregateFunction],
        sigma: Optional[Sigma] = None,
        schema: Optional[AnalyticalSchema] = None,
        name: str = "Q",
        rollup: Tuple["RollStage", ...] = (),
    ):
        if classifier.arity() < 1:
            raise QueryDefinitionError("the classifier must have at least the fact variable in its head")
        if measure.arity() != 2:
            raise QueryDefinitionError(
                f"the measure query must be binary (fact, value); got arity {measure.arity()}"
            )

        fact_variable = classifier.head[0]
        measure_fact_variable = measure.head[0]
        if fact_variable != measure_fact_variable:
            raise QueryDefinitionError(
                f"classifier and measure must be rooted in the same variable; got "
                f"?{fact_variable.name} and ?{measure_fact_variable.name}"
            )
        classifier.require_rooted()
        measure.require_rooted()

        dimensions = classifier.head[1:]
        dimension_names = tuple(variable.name for variable in dimensions)
        measure_variable = measure.head[1]

        reserved = {fact_variable.name, measure_variable.name, KEY_COLUMN}
        clashes = [name_ for name_ in dimension_names if name_ in reserved]
        if clashes:
            raise QueryDefinitionError(
                f"dimension names {clashes} clash with the fact variable, the measure variable "
                f"or the reserved key column {KEY_COLUMN!r}"
            )
        if measure_variable.name in (fact_variable.name, KEY_COLUMN):
            raise QueryDefinitionError(
                f"the measure variable ?{measure_variable.name} clashes with a reserved name"
            )

        if sigma is None:
            sigma = Sigma(dimension_names)
        elif tuple(sigma.dimensions) != dimension_names:
            raise QueryDefinitionError(
                f"Σ ranges over {tuple(sigma.dimensions)} but the classifier dimensions are "
                f"{dimension_names}"
            )

        if schema is not None:
            schema.check_homomorphic(classifier)
            schema.check_homomorphic(measure)

        rollup = tuple(rollup)
        for stage in rollup:
            if not isinstance(stage, RollStage):
                raise QueryDefinitionError(
                    f"rollup stages must be RollStage instances, got {type(stage).__name__}"
                )
            if stage.dimension not in dimension_names:
                raise QueryDefinitionError(
                    f"rollup stage rolls {stage.dimension!r} which is not a dimension; "
                    f"dimensions are {dimension_names}"
                )
            if tuple(stage.sigma_before.dimensions) != dimension_names:
                raise QueryDefinitionError(
                    f"rollup stage Σ ranges over {tuple(stage.sigma_before.dimensions)} "
                    f"but the classifier dimensions are {dimension_names}"
                )

        self.name = name
        self.classifier = classifier
        self.measure = measure
        self.aggregate = get_aggregate(aggregate)
        self.sigma = sigma
        self.schema = schema
        self.rollup = rollup

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def fact_variable(self) -> Variable:
        """The variable ``x`` to which facts are bound."""
        return self.classifier.head[0]

    @property
    def dimensions(self) -> Tuple[Variable, ...]:
        """The dimension variables ``d₁, ..., dₙ``."""
        return self.classifier.head[1:]

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(variable.name for variable in self.dimensions)

    @property
    def measure_variable(self) -> Variable:
        """The measure value variable ``v``."""
        return self.measure.head[1]

    @property
    def arity(self) -> int:
        """The number of dimensions of the cube this query defines."""
        return len(self.dimensions)

    def is_extended(self) -> bool:
        """True when Σ restricts at least one dimension."""
        return not self.sigma.is_unrestricted()

    def is_rolled(self) -> bool:
        """True when at least one ROLL-UP stage coarsens this query."""
        return bool(self.rollup)

    # ------------------------------------------------------------------
    # hierarchy lattice
    # ------------------------------------------------------------------

    def base_query(self) -> "AnalyticalQuery":
        """The finest-granularity query under the rollup stack (self if unrolled)."""
        if not self.rollup:
            return self
        return AnalyticalQuery(
            self.classifier,
            self.measure,
            self.aggregate,
            sigma=self.rollup[0].sigma_before,
            schema=self.schema,
            name=f"{self.name}@base",
        )

    def rollup_prefix(self, count: int) -> "AnalyticalQuery":
        """The lattice ancestor after only the first ``count`` rollup stages.

        ``rollup_prefix(0)`` is :meth:`base_query`;
        ``rollup_prefix(len(self.rollup))`` is the query itself.
        """
        if count < 0 or count > len(self.rollup):
            raise QueryDefinitionError(
                f"rollup prefix length {count} out of range 0..{len(self.rollup)}"
            )
        if count == len(self.rollup):
            return self
        return AnalyticalQuery(
            self.classifier,
            self.measure,
            self.aggregate,
            sigma=self.rollup[count].sigma_before,
            schema=self.schema,
            name=f"{self.name}@lvl{count}",
            rollup=self.rollup[:count],
        )

    def with_rollup(self, dimension: str, hierarchy: object, name: Optional[str] = None) -> "AnalyticalQuery":
        """Push a ROLL-UP stage: coarsen ``dimension`` through ``hierarchy``.

        The current Σ is recorded on the stage (it restricts the *finer*
        values); the new query's Σ resets the rolled dimension to its full
        (coarse) domain.
        """
        if dimension not in self.dimension_names:
            raise QueryDefinitionError(
                f"cannot roll up {dimension!r}; dimensions are {self.dimension_names}"
            )
        stage = RollStage(dimension, hierarchy, self.sigma)
        sigma = self.sigma.restrict(dimension, DimensionRestriction.full())
        return AnalyticalQuery(
            self.classifier,
            self.measure,
            self.aggregate,
            sigma=sigma,
            schema=self.schema,
            name=name or self.name,
            rollup=self.rollup + (stage,),
        )

    def without_last_rollup(self, name: Optional[str] = None) -> "AnalyticalQuery":
        """Pop the top ROLL-UP stage (DRILL-DOWN), restoring the finer Σ."""
        if not self.rollup:
            raise QueryDefinitionError(f"query {self.name!r} has no rollup stage to drop")
        finer = self.rollup_prefix(len(self.rollup) - 1)
        if name is not None:
            finer.name = name
        return finer

    # ------------------------------------------------------------------
    # derived queries
    # ------------------------------------------------------------------

    def measure_bar(self) -> BGPQuery:
        """The ``m̄`` query of Definition 3: same body as m, head = all body variables."""
        return self.measure.all_variables_head()

    # ------------------------------------------------------------------
    # transformation helpers (used by the OLAP operations)
    # ------------------------------------------------------------------

    def with_sigma(self, sigma: Sigma, name: Optional[str] = None) -> "AnalyticalQuery":
        """Return the same query with a different Σ (SLICE / DICE)."""
        return AnalyticalQuery(
            self.classifier,
            self.measure,
            self.aggregate,
            sigma=sigma,
            schema=self.schema,
            name=name or self.name,
            rollup=self.rollup,
        )

    def with_dimensions(
        self,
        dimension_names: Sequence[str],
        sigma: Optional[Sigma] = None,
        name: Optional[str] = None,
    ) -> "AnalyticalQuery":
        """Return a query whose classifier head is ``(x, dims...)`` with the same body.

        Used by DRILL-OUT (removing dimensions) and DRILL-IN (adding a body
        variable as a new dimension).  Every requested dimension must occur
        in the classifier body.
        """
        if self.rollup:
            raise QueryDefinitionError(
                f"query {self.name!r} carries rollup stages; drill down to the base "
                "granularity before changing its dimensions"
            )
        head = [self.fact_variable] + [Variable(dimension) for dimension in dimension_names]
        body_variable_names = {variable.name for variable in self.classifier.variables()}
        missing = [dimension for dimension in dimension_names if dimension not in body_variable_names]
        if missing:
            raise QueryDefinitionError(
                f"dimensions {missing} do not occur in the classifier body"
            )
        classifier = self.classifier.with_head(head, name=self.classifier.name)
        return AnalyticalQuery(
            classifier,
            self.measure,
            self.aggregate,
            sigma=sigma,
            schema=self.schema,
            name=name or self.name,
        )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line description in the paper's notation."""
        lines = [
            f"{self.name} :- ⟨c_Σ(?{self.fact_variable.name}, "
            + ", ".join(f"?{name}" for name in self.dimension_names)
            + f"), m(?{self.fact_variable.name}, ?{self.measure_variable.name}), "
            + f"{self.aggregate.name}⟩",
            f"  classifier: {self.classifier.to_text()}",
            f"  measure:    {self.measure.to_text()}",
            f"  {self.sigma.describe()}",
        ]
        for level, stage in enumerate(self.rollup, start=1):
            lines.append(
                f"  roll-up[{level}]: {stage.dimension} via "
                f"{getattr(stage.hierarchy, 'name', 'hierarchy')}"
            )
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnalyticalQuery):
            return NotImplemented
        return (
            self.classifier == other.classifier
            and self.measure == other.measure
            and self.aggregate.name == other.aggregate.name
            and self.sigma == other.sigma
            and self.rollup == other.rollup
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AnalyticalQuery({self.name}: {len(self.dimensions)} dimensions, "
            f"aggregate={self.aggregate.name})"
        )
