"""Dimension restrictions (the Σ function of extended analytical queries).

Definition 2 of the paper extends an analytical query with a total function
Σ that maps each dimension ``d_i`` either to its full value set ``V_i`` or
to a non-empty subset of ``V_i``.  SLICE and DICE are then pure Σ
transformations.

Here Σ is represented by :class:`Sigma`, a mapping from dimension name to a
:class:`DimensionRestriction`.  A restriction is one of:

* the **full** domain (no constraint) — the default for every dimension;
* an explicit **value set**;
* an intensional **predicate** (e.g. a numeric range, as in the paper's
  Example 4 where ``20 ≤ d_age ≤ 30``), carrying a human-readable
  description.

Restrictions answer :meth:`DimensionRestriction.allows` for individual
values; :meth:`Sigma.allows_row` combines them over a row of dimension
values, which is exactly the σ_dice selection of Definition 5.
"""

from __future__ import annotations

from typing import Callable, Collection, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import SigmaError
from repro.algebra.expressions import comparable, memoized_value_test

__all__ = ["DimensionRestriction", "Sigma", "SigmaPredicate"]


class DimensionRestriction:
    """The restriction Σ(dᵢ) of one dimension."""

    __slots__ = ("_values", "_comparable_values", "_predicate", "_range", "description")

    def __init__(
        self,
        values: Optional[Collection[object]] = None,
        predicate: Optional[Callable[[object], bool]] = None,
        description: str = "",
    ):
        self._range: Optional[Tuple[object, object, bool]] = None
        if values is not None and predicate is not None:
            raise SigmaError("a dimension restriction is either a value set or a predicate, not both")
        if values is not None:
            values_tuple = tuple(values)
            if not values_tuple:
                raise SigmaError("a dimension restriction value set must be non-empty (Definition 2)")
            self._values = values_tuple
            self._comparable_values = {comparable(value) for value in values_tuple}
        else:
            self._values = None
            self._comparable_values = None
        self._predicate = predicate
        if not description:
            if values is not None:
                description = "{" + ", ".join(str(value) for value in self._values) + "}"
            elif predicate is not None:
                description = getattr(predicate, "__name__", "predicate")
            else:
                description = "V (full domain)"
        self.description = description

    # -- constructors -------------------------------------------------------

    @classmethod
    def full(cls) -> "DimensionRestriction":
        """The unconstrained restriction Σ(dᵢ) = Vᵢ."""
        return cls()

    @classmethod
    def to_values(cls, values: Collection[object]) -> "DimensionRestriction":
        """Restriction to an explicit set of values (DICE)."""
        return cls(values=values)

    @classmethod
    def to_value(cls, value: object) -> "DimensionRestriction":
        """Restriction to a single value (SLICE)."""
        return cls(values=[value])

    @classmethod
    def to_range(cls, low: object, high: object, inclusive: bool = True) -> "DimensionRestriction":
        """Restriction to a numeric/lexicographic range (range DICE)."""
        low_comparable = comparable(low)
        high_comparable = comparable(high)

        def in_range(value: object) -> bool:
            candidate = comparable(value)
            try:
                if inclusive:
                    return low_comparable <= candidate <= high_comparable
                return low_comparable < candidate < high_comparable
            except TypeError:
                return False

        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        restriction = cls(predicate=in_range, description=f"range {bounds}")
        restriction._range = (low, high, inclusive)
        return restriction

    @classmethod
    def to_predicate(cls, predicate: Callable[[object], bool], description: str = "") -> "DimensionRestriction":
        """Restriction defined by an arbitrary membership predicate."""
        return cls(predicate=predicate, description=description)

    # -- semantics -----------------------------------------------------------

    @property
    def is_full(self) -> bool:
        """True for the unconstrained restriction."""
        return self._values is None and self._predicate is None

    @property
    def values(self) -> Optional[Tuple[object, ...]]:
        """The explicit value set, or None for full/predicate restrictions."""
        return self._values

    def allows(self, value: object) -> bool:
        """True when ``value`` belongs to Σ(dᵢ)."""
        if self.is_full:
            return True
        if self._predicate is not None:
            return bool(self._predicate(value))
        if value in self._values:  # type: ignore[operator]
            return True
        try:
            return comparable(value) in self._comparable_values  # type: ignore[operator]
        except TypeError:
            return False

    def value_test(self, decoder=None):
        """Return a fast membership test for this restriction's values.

        Without ``decoder`` the test is :meth:`allows` itself (decoded
        values).  With a ``decoder`` (id → term, from an encoded relation
        column) the returned test operates on **term ids**, decoding each
        distinct id once and memoizing the verdict — dimension ids repeat
        heavily, so Σ-selection over ``pres(Q)`` stays integer-speed.
        Returns None for the full (unconstrained) restriction.
        """
        if self.is_full:
            return None
        if decoder is None:
            return self.allows
        return memoized_value_test(self.allows, decoder)

    def canonical_token(self) -> str:
        """A value-based identity token for caching (see :mod:`repro.olap.cache`).

        Two restrictions with equal tokens allow exactly the same values, so
        materialized results keyed by the token can be shared:

        * the full domain and explicit value sets canonicalize by value
          (order-insensitive, via the same literal-to-Python conversion the
          σ_dice selection uses);
        * ranges built by :meth:`to_range` canonicalize by their bounds;
        * arbitrary predicates have no inspectable extension, so they
          canonicalize by object identity — never falsely shared, but only
          reusable while the same predicate object is in play.
        """
        if self.is_full:
            return "*"
        if self._values is not None:
            return "in{" + ",".join(sorted(repr(v) for v in self._comparable_values)) + "}"
        if self._range is not None:
            low, high, inclusive = self._range
            return f"range({comparable(low)!r},{comparable(high)!r},{inclusive})"
        return f"pred@{id(self._predicate)}"

    def subsumes(self, other: "DimensionRestriction") -> bool:
        """True when every value allowed by ``other`` is allowed by this one.

        Conservative (may answer False for subsumptions it cannot prove):
        used by the planner to decide whether a cached ``ans(Q)`` whose Σ is
        *weaker* can answer a transformed query by σ-selection alone.
        """
        if self.is_full:
            return True
        if other.is_full:
            return False
        if self.canonical_token() == other.canonical_token():
            return True
        if other._values is not None:
            # A finite extension: check membership value by value.
            return all(self.allows(value) for value in other._values)
        if self._range is not None and other._range is not None:
            low, high, inclusive = self._range
            other_low, other_high, other_inclusive = other._range
            try:
                wider_low = comparable(low) < comparable(other_low) or (
                    comparable(low) == comparable(other_low) and (inclusive or not other_inclusive)
                )
                wider_high = comparable(high) > comparable(other_high) or (
                    comparable(high) == comparable(other_high) and (inclusive or not other_inclusive)
                )
            except TypeError:
                return False
            return wider_low and wider_high
        return False

    def intersect(self, other: "DimensionRestriction") -> "DimensionRestriction":
        """The conjunction of two restrictions (used when dicing an already-diced query)."""
        if self.is_full:
            return other
        if other.is_full:
            return self
        if self._values is not None and other._values is not None:
            common = [value for value in self._values if other.allows(value)]
            if not common:
                raise SigmaError("the intersection of the two restrictions is empty")
            return DimensionRestriction.to_values(common)

        def both(value: object) -> bool:
            return self.allows(value) and other.allows(value)

        return DimensionRestriction.to_predicate(
            both, description=f"{self.description} ∩ {other.description}"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DimensionRestriction):
            return NotImplemented
        if self.is_full and other.is_full:
            return True
        if self._values is not None and other._values is not None:
            return set(self._values) == set(other._values)
        return self is other  # predicate restrictions compare by identity

    def __repr__(self) -> str:  # pragma: no cover
        return f"DimensionRestriction({self.description})"


class Sigma:
    """The total function Σ over the dimensions of an extended AnQ.

    Instances are immutable; the transformation methods return new objects.
    """

    def __init__(
        self,
        dimensions: Iterable[str],
        restrictions: Optional[Mapping[str, DimensionRestriction]] = None,
    ):
        dimension_names = tuple(dimensions)
        if len(set(dimension_names)) != len(dimension_names):
            raise SigmaError(f"duplicate dimension names: {dimension_names}")
        mapping: Dict[str, DimensionRestriction] = {
            name: DimensionRestriction.full() for name in dimension_names
        }
        if restrictions:
            for name, restriction in restrictions.items():
                if name not in mapping:
                    raise SigmaError(
                        f"Σ mentions unknown dimension {name!r}; dimensions are {dimension_names}"
                    )
                if not isinstance(restriction, DimensionRestriction):
                    raise SigmaError(
                        f"restriction for {name!r} must be a DimensionRestriction, "
                        f"got {type(restriction).__name__}"
                    )
                mapping[name] = restriction
        self._dimensions = dimension_names
        self._restrictions = mapping

    # -- accessors -----------------------------------------------------------

    @property
    def dimensions(self) -> Tuple[str, ...]:
        return self._dimensions

    def restriction(self, dimension: str) -> DimensionRestriction:
        if dimension not in self._restrictions:
            raise SigmaError(f"unknown dimension {dimension!r}; dimensions are {self._dimensions}")
        return self._restrictions[dimension]

    def __getitem__(self, dimension: str) -> DimensionRestriction:
        return self.restriction(dimension)

    def is_unrestricted(self) -> bool:
        """True when every dimension maps to its full domain (a standard AnQ)."""
        return all(restriction.is_full for restriction in self._restrictions.values())

    def restricted_dimensions(self) -> Tuple[str, ...]:
        return tuple(
            name for name in self._dimensions if not self._restrictions[name].is_full
        )

    def canonical_tokens(self) -> Tuple[Tuple[str, str], ...]:
        """Per-dimension ``(name, token)`` pairs identifying this Σ by value."""
        return tuple(
            (name, self._restrictions[name].canonical_token()) for name in self._dimensions
        )

    def subsumes(self, other: "Sigma") -> bool:
        """True when Σ′ = ``other`` is a pointwise strengthening of this Σ.

        Then σ_{Σ′}(ans(Q)) answers the strengthened query from this one's
        materialized answer (Proposition 1 applied dimension-wise).
        """
        if set(self._dimensions) != set(other._dimensions):
            return False
        return all(
            self._restrictions[name].subsumes(other._restrictions[name])
            for name in self._dimensions
        )

    # -- σ_dice --------------------------------------------------------------

    def allows_row(self, row: Mapping[str, object]) -> bool:
        """True when every dimension value of the row belongs to its Σ set.

        Dimensions absent from the row are ignored (they may have been
        drilled out); this is only used with rows that carry all Σ dims.
        """
        for name, restriction in self._restrictions.items():
            if restriction.is_full:
                continue
            if name in row and not restriction.allows(row[name]):
                return False
        return True

    def predicate(self) -> "SigmaPredicate":
        """The σ_dice selection predicate, compilable against any relation.

        Use with :func:`repro.algebra.operators.select`: the predicate
        resolves dimension columns to positions once per relation and tests
        id-space rows without decoding (memoized per distinct id).
        """
        return SigmaPredicate(self)

    # -- transformations (return new Sigma objects) --------------------------

    def restrict(self, dimension: str, restriction: DimensionRestriction) -> "Sigma":
        """Σ′ = Σ \\ {(d, Σ(d))} ∪ {(d, S)} — used by SLICE and DICE."""
        if dimension not in self._restrictions:
            raise SigmaError(f"unknown dimension {dimension!r}; dimensions are {self._dimensions}")
        updated = dict(self._restrictions)
        updated[dimension] = restriction
        return Sigma(self._dimensions, updated)

    def restrict_many(self, restrictions: Mapping[str, DimensionRestriction]) -> "Sigma":
        sigma = self
        for dimension, restriction in restrictions.items():
            sigma = sigma.restrict(dimension, restriction)
        return sigma

    def without(self, dimensions: Iterable[str]) -> "Sigma":
        """Drop dimensions (DRILL-OUT): Σ′ = Σ \\ {(dⱼ, Σ(dⱼ))}."""
        dropped = set(dimensions)
        unknown = dropped - set(self._dimensions)
        if unknown:
            raise SigmaError(f"cannot drop unknown dimensions {sorted(unknown)}")
        remaining = [name for name in self._dimensions if name not in dropped]
        restrictions = {name: self._restrictions[name] for name in remaining}
        return Sigma(remaining, restrictions)

    def with_new(self, dimensions: Iterable[str]) -> "Sigma":
        """Add dimensions with full domains (DRILL-IN): Σ′ = Σ ∪ {(dⱼ, Vⱼ)}."""
        new_names = list(dimensions)
        for name in new_names:
            if name in self._restrictions:
                raise SigmaError(f"dimension {name!r} is already present")
        restrictions = dict(self._restrictions)
        for name in new_names:
            restrictions[name] = DimensionRestriction.full()
        return Sigma(tuple(self._dimensions) + tuple(new_names), restrictions)

    def reorder(self, dimensions: Iterable[str]) -> "Sigma":
        """Return Σ over the same dimensions in a different order."""
        names = tuple(dimensions)
        if set(names) != set(self._dimensions) or len(names) != len(self._dimensions):
            raise SigmaError("reorder must be given a permutation of the current dimensions")
        return Sigma(names, {name: self._restrictions[name] for name in names})

    # -- presentation ---------------------------------------------------------

    def describe(self) -> str:
        parts = [
            f"{name} ↦ {self._restrictions[name].description}" for name in self._dimensions
        ]
        return "Σ = {" + "; ".join(parts) + "}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sigma):
            return NotImplemented
        return (
            self._dimensions == other._dimensions
            and all(self._restrictions[n] == other._restrictions[n] for n in self._dimensions)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Sigma({self.describe()})"


class SigmaPredicate:
    """The σ_dice selection of Definition 5 as a compilable row predicate.

    Callable on row mappings (delegating to :meth:`Sigma.allows_row`) for
    the generic path, and compilable against a relation schema so that
    :func:`repro.algebra.operators.select` evaluates it positionally —
    directly on term ids when the relation is id-encoded.
    """

    __slots__ = ("_sigma",)

    def __init__(self, sigma: Sigma):
        self._sigma = sigma

    @property
    def sigma(self) -> Sigma:
        """The Σ this predicate selects by (used by the columnar kernels)."""
        return self._sigma

    def __call__(self, row: Mapping[str, object]) -> bool:
        return self._sigma.allows_row(row)

    def compile(self, relation):
        tests = []
        for name in self._sigma.dimensions:
            restriction = self._sigma.restriction(name)
            if restriction.is_full or not relation.has_column(name):
                # Dimensions absent from the relation are ignored (they may
                # have been drilled out), mirroring allows_row.
                continue
            index = relation.column_index(name)
            tests.append((index, restriction.value_test(relation.column_decoder(name))))
        if not tests:
            return lambda row: True
        if len(tests) == 1:
            index, test = tests[0]
            return lambda row: test(row[index])
        return lambda row: all(test(row[index]) for index, test in tests)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SigmaPredicate({self._sigma.describe()})"
