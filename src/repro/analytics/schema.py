"""Analytical schemas (AnS).

An analytical schema is "a labeled directed graph, whose nodes are analysis
classes and whose edges are analysis properties" (Section 2 of the paper).
Each node is *defined* by a unary BGP query over the base RDF graph, and
each edge by a binary BGP query; node and edge definitions are completely
independent, which is what lets an AnS describe heterogeneous RDF data.

This module holds the schema itself (:class:`AnalyticalSchema`,
:class:`AnalysisClass`, :class:`AnalysisProperty`) plus the structural
checks the analytics layer needs:

* well-formedness of the schema (unique names, edges referencing declared
  nodes, node queries unary, edge queries binary);
* the *homomorphism check* for classifier and measure queries — every
  classifier/measure must be homomorphic to the AnS, i.e. use only AnS
  classes in ``rdf:type`` atoms and AnS properties in the other atoms, in a
  way consistent with the property endpoints.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import HomomorphismError, SchemaDefinitionError
from repro.rdf.namespaces import ANS, RDF, Namespace
from repro.rdf.terms import IRI, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery

__all__ = ["AnalysisClass", "AnalysisProperty", "AnalyticalSchema"]

_RDF_TYPE = RDF.term("type")


def _as_iri(value: Union[str, IRI], namespace: Namespace) -> IRI:
    if isinstance(value, IRI):
        return value
    return namespace.term(value)


class AnalysisClass:
    """A node of the analytical schema: an analysis class.

    Attributes
    ----------
    iri:
        The IRI naming the class in the AnS instance (objects of ``rdf:type``).
    query:
        The unary BGP query defining the class extent over the base graph.
    label:
        Short human-readable name (defaults to the IRI local name).
    """

    def __init__(self, iri: IRI, query: BGPQuery, label: Optional[str] = None):
        if query.arity() != 1:
            raise SchemaDefinitionError(
                f"the query defining analysis class {iri.n3()} must be unary, "
                f"got arity {query.arity()}"
            )
        self.iri = iri
        self.query = query
        self.label = label or iri.local_name()

    def __repr__(self) -> str:  # pragma: no cover
        return f"AnalysisClass({self.label})"


class AnalysisProperty:
    """An edge of the analytical schema: an analysis property.

    Attributes
    ----------
    iri:
        The IRI naming the property in the AnS instance.
    source, target:
        IRIs of the AnS classes this property goes from / to.
    query:
        The binary BGP query returning the (subject, object) pairs of the
        property over the base graph.
    """

    def __init__(
        self,
        iri: IRI,
        source: IRI,
        target: IRI,
        query: BGPQuery,
        label: Optional[str] = None,
    ):
        if query.arity() != 2:
            raise SchemaDefinitionError(
                f"the query defining analysis property {iri.n3()} must be binary, "
                f"got arity {query.arity()}"
            )
        self.iri = iri
        self.source = source
        self.target = target
        self.query = query
        self.label = label or iri.local_name()

    def __repr__(self) -> str:  # pragma: no cover
        return f"AnalysisProperty({self.label}: {self.source.local_name()} -> {self.target.local_name()})"


class AnalyticalSchema:
    """An analytical schema: named analysis classes and properties.

    The schema behaves like a small catalog: classes and properties are
    registered with :meth:`add_class` / :meth:`add_property` (either with
    explicit defining queries, or with the identity-style defaults provided
    by :meth:`add_class_from_type` / :meth:`add_property_from_predicate`
    which are convenient when the base data is already shaped like the
    analysis view).
    """

    def __init__(self, name: str = "AnS", namespace: Namespace = ANS):
        self.name = name
        self.namespace = namespace
        self._classes: Dict[IRI, AnalysisClass] = {}
        self._properties: Dict[IRI, AnalysisProperty] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add_class(self, iri: Union[str, IRI], query: BGPQuery, label: Optional[str] = None) -> AnalysisClass:
        """Register an analysis class defined by a unary query."""
        class_iri = _as_iri(iri, self.namespace)
        if class_iri in self._classes:
            raise SchemaDefinitionError(f"analysis class {class_iri.n3()} is already defined")
        node = AnalysisClass(class_iri, query, label)
        self._classes[class_iri] = node
        return node

    def add_class_from_type(
        self,
        iri: Union[str, IRI],
        base_class: Union[str, IRI, None] = None,
        base_namespace: Optional[Namespace] = None,
        label: Optional[str] = None,
    ) -> AnalysisClass:
        """Register a class whose extent is ``?x rdf:type <base_class>`` in the base data.

        When ``base_class`` is omitted the AnS class IRI itself is used,
        which is the common case where the analysis view mirrors the data.
        """
        class_iri = _as_iri(iri, self.namespace)
        source_class = _as_iri(base_class, base_namespace or self.namespace) if base_class else class_iri
        variable = Variable("x")
        query = BGPQuery([variable], [TriplePattern(variable, _RDF_TYPE, source_class)], name=f"def_{class_iri.local_name()}")
        return self.add_class(class_iri, query, label)

    def add_property(
        self,
        iri: Union[str, IRI],
        source: Union[str, IRI],
        target: Union[str, IRI],
        query: BGPQuery,
        label: Optional[str] = None,
    ) -> AnalysisProperty:
        """Register an analysis property defined by a binary query."""
        property_iri = _as_iri(iri, self.namespace)
        if property_iri in self._properties:
            raise SchemaDefinitionError(f"analysis property {property_iri.n3()} is already defined")
        source_iri = _as_iri(source, self.namespace)
        target_iri = _as_iri(target, self.namespace)
        if source_iri not in self._classes:
            raise SchemaDefinitionError(
                f"property {property_iri.n3()} references undeclared source class {source_iri.n3()}"
            )
        if target_iri not in self._classes:
            raise SchemaDefinitionError(
                f"property {property_iri.n3()} references undeclared target class {target_iri.n3()}"
            )
        edge = AnalysisProperty(property_iri, source_iri, target_iri, query, label)
        self._properties[property_iri] = edge
        return edge

    def add_property_from_predicate(
        self,
        iri: Union[str, IRI],
        source: Union[str, IRI],
        target: Union[str, IRI],
        base_predicate: Union[str, IRI, None] = None,
        base_namespace: Optional[Namespace] = None,
        label: Optional[str] = None,
    ) -> AnalysisProperty:
        """Register a property whose pairs are ``?s <base_predicate> ?o`` in the base data."""
        property_iri = _as_iri(iri, self.namespace)
        predicate = _as_iri(base_predicate, base_namespace or self.namespace) if base_predicate else property_iri
        subject = Variable("s")
        object_ = Variable("o")
        query = BGPQuery(
            [subject, object_],
            [TriplePattern(subject, predicate, object_)],
            name=f"def_{property_iri.local_name()}",
        )
        return self.add_property(property_iri, source, target, query, label)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    @property
    def classes(self) -> Tuple[AnalysisClass, ...]:
        return tuple(self._classes.values())

    @property
    def properties(self) -> Tuple[AnalysisProperty, ...]:
        return tuple(self._properties.values())

    def analysis_class(self, iri: Union[str, IRI]) -> AnalysisClass:
        class_iri = _as_iri(iri, self.namespace)
        if class_iri not in self._classes:
            raise SchemaDefinitionError(f"unknown analysis class {class_iri.n3()}")
        return self._classes[class_iri]

    def analysis_property(self, iri: Union[str, IRI]) -> AnalysisProperty:
        property_iri = _as_iri(iri, self.namespace)
        if property_iri not in self._properties:
            raise SchemaDefinitionError(f"unknown analysis property {property_iri.n3()}")
        return self._properties[property_iri]

    def has_class(self, iri: Union[str, IRI]) -> bool:
        return _as_iri(iri, self.namespace) in self._classes

    def has_property(self, iri: Union[str, IRI]) -> bool:
        return _as_iri(iri, self.namespace) in self._properties

    def class_iris(self) -> List[IRI]:
        return list(self._classes)

    def property_iris(self) -> List[IRI]:
        return list(self._properties)

    # ------------------------------------------------------------------
    # homomorphism check (queries against the AnS)
    # ------------------------------------------------------------------

    def check_homomorphic(self, query: BGPQuery) -> None:
        """Raise :class:`HomomorphismError` unless ``query`` is homomorphic to this AnS.

        The check implements the natural notion for queries over an AnS
        instance: every ``rdf:type`` atom must reference a declared analysis
        class, every other atom must use a declared analysis property as a
        constant predicate, and the class constraints induced on a variable
        by the atoms it occurs in must be mutually consistent (a variable
        cannot be forced to be both a ``City`` and a ``Site``, say, unless
        those are the same class).
        """
        induced: Dict[Variable, set] = {}

        def constrain(term, class_iri: IRI) -> None:
            if isinstance(term, Variable):
                induced.setdefault(term, set()).add(class_iri)

        for pattern in query.body:
            predicate = pattern.predicate
            if isinstance(predicate, Variable):
                raise HomomorphismError(
                    f"query {query.name!r} uses a variable predicate {predicate.n3()}; "
                    "analytical queries must use AnS properties"
                )
            if predicate == _RDF_TYPE:
                if isinstance(pattern.object, Variable):
                    raise HomomorphismError(
                        f"query {query.name!r} has an rdf:type atom with a variable class"
                    )
                if not isinstance(pattern.object, IRI) or pattern.object not in self._classes:
                    raise HomomorphismError(
                        f"query {query.name!r} references {pattern.object.n3()} which is not an "
                        f"analysis class of schema {self.name!r}"
                    )
                constrain(pattern.subject, pattern.object)
                continue
            if predicate not in self._properties:
                raise HomomorphismError(
                    f"query {query.name!r} uses predicate {predicate.n3()} which is not an "
                    f"analysis property of schema {self.name!r}"
                )
            edge = self._properties[predicate]
            constrain(pattern.subject, edge.source)
            constrain(pattern.object, edge.target)

        for variable, classes in induced.items():
            if len(classes) > 1:
                names = sorted(iri.local_name() for iri in classes)
                raise HomomorphismError(
                    f"variable ?{variable.name} of query {query.name!r} is constrained to belong "
                    f"to multiple analysis classes {names}; the query is not homomorphic to the AnS"
                )

    def is_homomorphic(self, query: BGPQuery) -> bool:
        """Boolean variant of :meth:`check_homomorphic`."""
        try:
            self.check_homomorphic(query)
        except HomomorphismError:
            return False
        return True

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable description of the schema."""
        lines = [f"Analytical schema {self.name!r}"]
        lines.append(f"  classes ({len(self._classes)}):")
        for node in self._classes.values():
            lines.append(f"    {node.label}: {node.query.to_text()}")
        lines.append(f"  properties ({len(self._properties)}):")
        for edge in self._properties.values():
            lines.append(
                f"    {edge.label} ({edge.source.local_name()} -> {edge.target.local_name()}): "
                f"{edge.query.to_text()}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AnalyticalSchema({self.name!r}, {len(self._classes)} classes, "
            f"{len(self._properties)} properties)"
        )
