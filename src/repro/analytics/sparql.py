"""Exporting analytical queries as SPARQL 1.1 SELECT queries.

The paper's related-work section notes that SPARQL 1.1 grouping/aggregation
covers a restricted form of analytical queries.  For interoperability with
existing SPARQL engines, this module renders an
:class:`~repro.analytics.query.AnalyticalQuery` as a SPARQL 1.1 query whose
answers coincide with ``ans(Q)`` whenever the query is expressible:

* the classifier becomes an inner ``SELECT DISTINCT`` sub-query (set
  semantics);
* the measure body is placed in the outer group pattern, so each of its
  embeddings contributes one binding of the measure variable (bag
  semantics), matching the paper's measure-bag construction;
* Σ restrictions become ``VALUES`` blocks (explicit value sets) or ``FILTER``
  ranges; predicate-based restrictions are not expressible and raise.
* the aggregation function maps onto a SPARQL aggregate
  (``COUNT`` / ``SUM`` / ``AVG`` / ``MIN`` / ``MAX`` /
  ``COUNT(DISTINCT ...)``).

The output is text only — this library evaluates AnQs natively; the export
exists so that the same cube can be double-checked on, or served by, a
SPARQL endpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import QueryDefinitionError
from repro.rdf.namespaces import PrefixMap
from repro.rdf.terms import IRI, Literal, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery
from repro.analytics.query import AnalyticalQuery
from repro.analytics.sigma import DimensionRestriction

__all__ = ["to_sparql", "SPARQL_AGGREGATES"]

#: Mapping from this library's aggregate names to SPARQL aggregate syntax.
SPARQL_AGGREGATES: Dict[str, str] = {
    "count": "COUNT({value})",
    "count_distinct": "COUNT(DISTINCT {value})",
    "sum": "SUM({value})",
    "avg": "AVG({value})",
    "min": "MIN({value})",
    "max": "MAX({value})",
}


def _render_term(term, prefixes: Optional[PrefixMap]) -> str:
    if isinstance(term, Variable):
        return f"?{term.name}"
    if isinstance(term, IRI) and prefixes is not None:
        short = prefixes.shrink(term)
        if short:
            return short
    return term.n3()


def _render_patterns(patterns, prefixes: Optional[PrefixMap], indent: str) -> str:
    lines = []
    for pattern in patterns:
        subject = _render_term(pattern.subject, prefixes)
        predicate = _render_term(pattern.predicate, prefixes)
        object_ = _render_term(pattern.object, prefixes)
        lines.append(f"{indent}{subject} {predicate} {object_} .")
    return "\n".join(lines)


def _render_restriction(dimension: str, restriction: DimensionRestriction, prefixes) -> str:
    if restriction.is_full:
        return ""
    if restriction.values is not None:
        rendered = " ".join(_render_term(_as_rdf_value(value), prefixes) for value in restriction.values)
        return f"  VALUES ?{dimension} {{ {rendered} }}"
    description = restriction.description
    if description.startswith("range ["):
        bounds = description[len("range [") : -1].split(",")
        low, high = (bound.strip() for bound in bounds)
        return f"  FILTER(?{dimension} >= {low} && ?{dimension} <= {high})"
    raise QueryDefinitionError(
        f"the Σ restriction on dimension {dimension!r} ({description}) is not expressible in SPARQL"
    )


def _as_rdf_value(value) -> Term:
    if isinstance(value, Term):
        return value
    return Literal(value)


def to_sparql(query: AnalyticalQuery, prefixes: Optional[PrefixMap] = None) -> str:
    """Render an analytical query as a SPARQL 1.1 SELECT query string.

    Raises :class:`~repro.errors.QueryDefinitionError` when the aggregation
    function or a Σ restriction has no SPARQL counterpart.
    """
    aggregate_name = query.aggregate.name
    if aggregate_name not in SPARQL_AGGREGATES:
        raise QueryDefinitionError(
            f"aggregate {aggregate_name!r} has no SPARQL 1.1 counterpart; "
            f"expressible aggregates are {sorted(SPARQL_AGGREGATES)}"
        )

    fact = query.fact_variable.name
    dimensions = list(query.dimension_names)
    measure_variable = query.measure_variable.name

    prologue_lines: List[str] = []
    if prefixes is not None:
        for prefix, namespace in sorted(prefixes, key=lambda item: item[0]):
            prologue_lines.append(f"PREFIX {prefix}: <{namespace.base}>")

    dimension_list = " ".join(f"?{name}" for name in dimensions)
    aggregate_expression = SPARQL_AGGREGATES[aggregate_name].format(value=f"?{measure_variable}")
    select_line = f"SELECT {dimension_list} ({aggregate_expression} AS ?agg)".replace("SELECT  (", "SELECT (")

    inner_select_variables = " ".join(f"?{name}" for name in [fact] + dimensions)
    classifier_block = _render_patterns(query.classifier.body, prefixes, indent="      ")
    measure_block = _render_patterns(query.measure.body, prefixes, indent="  ")

    restriction_lines = []
    for dimension in dimensions:
        rendered = _render_restriction(dimension, query.sigma[dimension], prefixes)
        if rendered:
            restriction_lines.append(rendered)

    body_lines = [
        "WHERE {",
        "  {",
        f"    SELECT DISTINCT {inner_select_variables} WHERE {{",
        classifier_block,
        "    }",
        "  }",
        measure_block,
    ]
    body_lines.extend(restriction_lines)
    body_lines.append("}")

    group_by = f"GROUP BY {dimension_list}" if dimensions else ""
    parts = prologue_lines + [select_line] + body_lines
    if group_by:
        parts.append(group_by)
    return "\n".join(part for part in parts if part != "")
