"""Materialized results of analytical queries: ``ans``, ``pres``, ``int``, ``mᵏ``.

This module defines the result containers and the ``newk()`` key generator;
the evaluation logic producing them lives in
:mod:`repro.analytics.evaluator`.

Column conventions (used consistently across the library, tests and
benchmarks):

* the **fact column** is named after the query's fact variable (``x`` in the
  paper's examples);
* **dimension columns** are named after the dimension variables
  (``dage``, ``dcity``, ...);
* the **key column** added by the extended measure result ``mᵏ`` is named
  ``"k"`` (:data:`~repro.analytics.query.KEY_COLUMN`);
* the **raw measure column** is named after the measure variable (``v``,
  ``vsite``, ``vwords``, ...);
* the **aggregated measure column** of ``ans(Q)`` keeps the measure
  variable's name.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.errors import MaterializationError
from repro.algebra.relation import Relation

__all__ = ["KeyGenerator", "PartialResult", "CubeAnswer", "MaterializedQueryResults"]


class KeyGenerator:
    """The ``newk()`` key-creating function.

    Returns a distinct value at each call; the simple implementation used
    here (and suggested by the paper for illustration) returns successive
    integers 1, 2, 3, ...

    Examples
    --------
    >>> keys = KeyGenerator()
    >>> keys(), keys()
    (1, 2)
    >>> keys.take(3)
    range(3, 6)
    >>> keys()
    6
    """

    def __init__(self, start: int = 1):
        self._next = start

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def take(self, count: int) -> range:
        """Consume ``count`` consecutive keys at once (the columnar ``mᵏ``).

        Equivalent to ``count`` single calls; the returned range *is* the
        keys, ready to become an ``arange`` column without a Python loop.
        """
        start = self._next
        self._next += count
        return range(start, self._next)


class PartialResult:
    """``pres(Q, I)`` — the partial result of an AnQ (Definition 4).

    Wraps the relation ``c(I) ⋈ₓ mᵏ(I)`` together with the column names it
    was built with, so the OLAP rewriting algorithms can address the fact,
    dimension, key and measure columns by role rather than by position.

    The wrapped relation may live in **id space**
    (:class:`~repro.algebra.relation.IdRelation`): the rewriting algorithms
    consume :attr:`storage` and never decode, while :attr:`relation` is the
    decoded view for external consumers (tests, persistence, display) —
    materialized lazily, once.
    """

    def __init__(
        self,
        relation: Relation,
        fact_column: str,
        dimension_columns: Tuple[str, ...],
        key_column: str,
        measure_column: str,
    ):
        expected = (fact_column, *dimension_columns, key_column, measure_column)
        if tuple(relation.columns) != expected:
            raise MaterializationError(
                f"partial-result relation columns {relation.columns} do not match the expected "
                f"layout {expected}"
            )
        self._storage = relation
        self._decoded: Optional[Relation] = None
        self.fact_column = fact_column
        self.dimension_columns = dimension_columns
        self.key_column = key_column
        self.measure_column = measure_column

    @property
    def storage(self) -> Relation:
        """The relation in its native value space (ids when engine-built)."""
        return self._storage

    @property
    def relation(self) -> Relation:
        """The decoded view of ``pres(Q)`` (lazily materialized, cached)."""
        if self._decoded is None:
            self._decoded = self._storage.materialize()
        return self._decoded

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._storage.columns

    def facts(self) -> set:
        """The set of distinct facts appearing in the partial result (decoded)."""
        return self.relation.distinct_values(self.fact_column)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PartialResult(fact={self.fact_column!r}, dims={self.dimension_columns}, "
            f"{len(self._storage)} rows)"
        )


class CubeAnswer:
    """``ans(Q, I)`` — the answer set of an AnQ (Definition 1).

    A thin wrapper over the answer relation ``(d₁, ..., dₙ, v)`` retaining
    the dimension/measure column roles.  The richer cube abstraction (cell
    lookup, pretty-printing, pivoting) is :class:`repro.olap.cube.Cube`,
    which is constructed from a ``CubeAnswer``.
    """

    def __init__(self, relation: Relation, dimension_columns: Tuple[str, ...], measure_column: str):
        expected = (*dimension_columns, measure_column)
        if tuple(relation.columns) != expected:
            raise MaterializationError(
                f"answer relation columns {relation.columns} do not match the expected layout {expected}"
            )
        self._storage = relation
        self._decoded: Optional[Relation] = None
        self.dimension_columns = dimension_columns
        self.measure_column = measure_column

    @property
    def storage(self) -> Relation:
        """The answer relation in its native value space (ids when engine-built)."""
        return self._storage

    @property
    def relation(self) -> Relation:
        """The decoded answer relation ``(d₁, ..., dₙ, v)`` (lazy, cached)."""
        if self._decoded is None:
            self._decoded = self._storage.materialize()
        return self._decoded

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._storage.columns

    def __iter__(self):
        """Iterate over decoded answer rows without forcing full materialization."""
        if self._decoded is not None:
            return iter(self._decoded)
        return self._storage.iter_decoded()

    def __repr__(self) -> str:  # pragma: no cover
        return f"CubeAnswer(dims={self.dimension_columns}, {len(self._storage)} cells)"


class MaterializedQueryResults:
    """Everything materialized while answering a query ``Q``.

    The OLAP session stores one of these per executed query; the rewriting
    engine consumes whichever part the transformation needs (``ans`` for
    SLICE/DICE, ``pres`` for DRILL-OUT/DRILL-IN).
    """

    def __init__(
        self,
        query,
        answer: Optional[CubeAnswer] = None,
        partial: Optional[PartialResult] = None,
    ):
        self.query = query
        self._answer = answer
        self._partial = partial

    @property
    def answer(self) -> CubeAnswer:
        if self._answer is None:
            raise MaterializationError(
                f"the answer of query {self.query.name!r} has not been materialized"
            )
        return self._answer

    @property
    def partial(self) -> PartialResult:
        if self._partial is None:
            raise MaterializationError(
                f"the partial result of query {self.query.name!r} has not been materialized"
            )
        return self._partial

    def has_answer(self) -> bool:
        return self._answer is not None

    def has_partial(self) -> bool:
        return self._partial is not None

    def __repr__(self) -> str:  # pragma: no cover
        parts = []
        if self._answer is not None:
            parts.append(f"ans: {len(self._answer)} cells")
        if self._partial is not None:
            parts.append(f"pres: {len(self._partial)} rows")
        return f"MaterializedQueryResults({self.query.name}, {', '.join(parts) or 'empty'})"
