"""Materialization of analytical-schema instances.

The *instance* of an AnS with respect to a base RDF graph is itself an RDF
graph (Section 2): for each analysis class ``C`` defined by unary query
``q_C``, it holds a triple ``u rdf:type C`` for every URI ``u`` in
``q_C(base)``; for each analysis property ``p`` defined by binary query
``q_p``, it holds a triple ``s p o`` for every pair ``(s, o)`` in
``q_p(base)``.

Analytical queries are then evaluated over this instance graph.  The
instance can also be built *incrementally* class-by-class (useful in tests)
and re-saturated when the base graph carries RDFS schema statements.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import SchemaDefinitionError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF
from repro.rdf.reasoning import saturate
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triples import Triple
from repro.bgp.evaluator import BGPEvaluator
from repro.analytics.schema import AnalyticalSchema

__all__ = ["materialize_instance", "InstanceBuilder"]

_RDF_TYPE = RDF.term("type")


class InstanceBuilder:
    """Builds the instance graph of an analytical schema over a base graph.

    Parameters
    ----------
    schema:
        The analytical schema.
    base_graph:
        The base RDF data (optionally RDFS-saturated beforehand).
    saturate_base:
        When True, the base graph is RDFS-saturated (on a copy) before the
        node/edge defining queries are evaluated, so that implicit triples
        contribute to the analysis view.
    """

    def __init__(self, schema: AnalyticalSchema, base_graph: Graph, saturate_base: bool = False):
        self.schema = schema
        self._base = saturate(base_graph) if saturate_base else base_graph
        self._evaluator = BGPEvaluator(self._base)

    def build(self, name: Optional[str] = None) -> Graph:
        """Materialize the full instance graph."""
        instance = Graph(name=name or f"instance_of_{self.schema.name}")
        self.populate_classes(instance)
        self.populate_properties(instance)
        return instance

    def populate_classes(self, instance: Graph) -> int:
        """Add the ``rdf:type`` triples for every analysis class; return the count added."""
        added = 0
        for analysis_class in self.schema.classes:
            added += self.populate_class(instance, analysis_class.iri)
        return added

    def populate_class(self, instance: Graph, class_iri: IRI) -> int:
        """Add the ``rdf:type`` triples for one analysis class."""
        analysis_class = self.schema.analysis_class(class_iri)
        result = self._evaluator.evaluate(analysis_class.query, semantics="set")
        added = 0
        for (member,) in result:
            if isinstance(member, Literal):
                # Value classes (Age, Name, ...) may have literal members; RDF
                # cannot state `literal rdf:type C`, and analytical queries
                # reach such members through the analysis properties anyway,
                # so the membership triple is simply not materialized.
                continue
            if instance.add(Triple(member, _RDF_TYPE, analysis_class.iri)):
                added += 1
        return added

    def populate_properties(self, instance: Graph) -> int:
        """Add the property triples for every analysis property; return the count added."""
        added = 0
        for analysis_property in self.schema.properties:
            added += self.populate_property(instance, analysis_property.iri)
        return added

    def populate_property(self, instance: Graph, property_iri: IRI) -> int:
        """Add the triples for one analysis property."""
        analysis_property = self.schema.analysis_property(property_iri)
        result = self._evaluator.evaluate(analysis_property.query, semantics="set")
        added = 0
        for subject, object_ in result:
            if isinstance(subject, Literal):
                raise SchemaDefinitionError(
                    f"the defining query of property {analysis_property.label} returned a literal "
                    f"in subject position"
                )
            if instance.add(Triple(subject, analysis_property.iri, object_)):
                added += 1
        return added


def materialize_instance(
    schema: AnalyticalSchema,
    base_graph: Graph,
    saturate_base: bool = False,
    name: Optional[str] = None,
) -> Graph:
    """One-shot convenience wrapper around :class:`InstanceBuilder`."""
    return InstanceBuilder(schema, base_graph, saturate_base=saturate_base).build(name=name)
