"""RDF analytics: analytical schemas, analytical queries and their evaluation.

This package implements the framework of "RDF Analytics: Lenses over
Semantic Graphs" (WWW 2014) to the extent needed by the OLAP-operations
paper:

* :mod:`repro.analytics.schema` — analytical schemas (analysis classes and
  properties, defined by BGP queries);
* :mod:`repro.analytics.instance` — materialization of AnS instances;
* :mod:`repro.analytics.sigma` — the Σ dimension-restriction function of
  extended analytical queries;
* :mod:`repro.analytics.query` — analytical queries ⟨c, m, ⊕⟩;
* :mod:`repro.analytics.answer` — materialized results (``ans``, ``pres``,
  key generator);
* :mod:`repro.analytics.evaluator` — from-scratch evaluation (Definitions
  1, 3, 4 and Equation (3)).
"""

from repro.analytics.answer import (
    CubeAnswer,
    KeyGenerator,
    MaterializedQueryResults,
    PartialResult,
)
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.instance import InstanceBuilder, materialize_instance
from repro.analytics.query import KEY_COLUMN, AnalyticalQuery
from repro.analytics.schema import AnalysisClass, AnalysisProperty, AnalyticalSchema
from repro.analytics.sigma import DimensionRestriction, Sigma
from repro.analytics.sparql import to_sparql

__all__ = [
    "AnalyticalSchema",
    "AnalysisClass",
    "AnalysisProperty",
    "InstanceBuilder",
    "materialize_instance",
    "AnalyticalQuery",
    "KEY_COLUMN",
    "Sigma",
    "DimensionRestriction",
    "AnalyticalQueryEvaluator",
    "KeyGenerator",
    "PartialResult",
    "CubeAnswer",
    "MaterializedQueryResults",
    "to_sparql",
]
