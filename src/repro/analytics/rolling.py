"""Rolling a partial result through a query's ROLL-UP stage stack.

A rolled-up :class:`~repro.analytics.query.AnalyticalQuery` carries a stack
of :class:`~repro.analytics.query.RollStage` objects (see that module).  Its
``pres`` is defined from the base query's ``pres`` by the generalized
Algorithm-1 pipeline:

1. σ-select with the stage's ``sigma_before`` (the Σ at the finer level);
2. replace the rolled dimension's values by their hierarchy parents;
3. σ-select with the Σ in effect *after* the roll (the next stage's
   ``sigma_before``, or the query's own Σ after the last stage);
4. after the last stage, δ-deduplicate once — a fact whose several child
   values collapse to one parent must contribute each measure key once per
   parent, not once per child.  (Deduplicating between stages is equivalent:
   value substitution commutes with duplicate elimination.)

The helpers here operate on decoded relations and are shared by the
from-scratch evaluator, the OLAP rewriter and the planner's
``rollup-from-cached`` candidate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algebra.operators import dedup, select
from repro.algebra.relation import Relation
from repro.analytics.answer import PartialResult
from repro.errors import RewritingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analytics.query import AnalyticalQuery

__all__ = ["rolled_dimension_relation", "roll_partial"]


def rolled_dimension_relation(relation: Relation, dimension: str, hierarchy) -> Relation:
    """Replace one column's values by their hierarchy parents."""
    index = relation.column_index(dimension)

    def roll(row):
        return row[:index] + (hierarchy.parent(row[index]),) + row[index + 1 :]

    return relation.map_rows(roll)


def roll_partial(partial: PartialResult, query: "AnalyticalQuery", start: int = 0) -> PartialResult:
    """Map a finer ``pres`` at lattice level ``start`` to ``pres(query)``.

    ``partial`` must be the partial result of ``query.rollup_prefix(start)``
    — or of any query whose Σ *subsumes* that prefix's Σ (the junction
    σ-selection strengthens it to exactly the prefix's Σ).  The result has
    the standard ``(x, d₁..dₙ, k, v)`` layout and is a valid ``pres(query)``.
    """
    stages = query.rollup
    if not 0 <= start < len(stages):
        raise RewritingError(
            f"rollup start level {start} out of range 0..{len(stages) - 1} "
            f"for query {query.name!r}"
        )
    relation = select(partial.relation, stages[start].sigma_before.predicate())
    for index in range(start, len(stages)):
        stage = stages[index]
        relation = rolled_dimension_relation(relation, stage.dimension, stage.hierarchy)
        sigma_after = stages[index + 1].sigma_before if index + 1 < len(stages) else query.sigma
        relation = select(relation, sigma_after.predicate())
    relation = dedup(relation)
    return PartialResult(
        relation,
        fact_column=partial.fact_column,
        dimension_columns=partial.dimension_columns,
        key_column=partial.key_column,
        measure_column=partial.measure_column,
    )
