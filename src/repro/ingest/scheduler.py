"""Continuous refresh scheduling over session caches during ingestion.

After every published micro-batch the question is what to do with each
cached cube the batch left stale.  Three answers exist, and each is right
somewhere:

* **eager** — patch it now through the
  :class:`~repro.olap.maintenance.DeltaMaintainer`, paying refresh cost off
  the read path so the next read is a plain hit;
* **lazy** — mark it for refresh-on-read
  (:meth:`~repro.olap.cache.ResultCache.mark_lazy`): the read path patches
  it on first access without re-pricing, and entries nobody reads again
  cost nothing;
* **invalidate** — drop it when patching is priced at or above recomputing
  from scratch (keeping it would only waste memory — the read path would
  never choose the patch).

The :class:`RefreshScheduler` makes that call per entry, per batch.  Its
``"auto"`` policy follows the entry's observed hit rate
(:attr:`~repro.olap.cache.CacheEntry.hits`): hot entries refresh eagerly,
cold ones go lazy.  Pricing flows through
:meth:`~repro.olap.maintenance.DeltaMaintainer.price_refresh` — the same
calibrated :class:`~repro.olap.calibration.CostModel` numbers the planner
and the read path use, so the scheduler never eagerly applies a patch the
read path would have rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import IngestError

__all__ = ["POLICIES", "RefreshDecision", "RefreshScheduler", "SchedulerStats"]

#: Supported scheduling policies.  ``"eager"`` and ``"lazy"`` force one
#: action for every patchable entry (the benchmark baselines); ``"auto"``
#: splits by hit rate.  All three invalidate entries whose refresh is
#: priced at or above a from-scratch recomputation.
POLICIES = ("eager", "lazy", "auto")

#: ``"auto"``'s default hotness bar: an entry read at least this many
#: times since materialization refreshes eagerly, anything colder goes
#: lazy.  Matches the advisor's notion that one access is not a pattern.
DEFAULT_HOT_HITS = 2


@dataclass
class RefreshDecision:
    """One scheduling decision for one stale cache entry."""

    #: Canonical cache key of the entry.
    key: str
    query_name: str
    #: ``"eager"``, ``"lazy"``, ``"invalidate"`` or ``"dropped"`` (the
    #: cache itself discarded the entry as unpatchable before the
    #: scheduler could choose).
    action: str
    refresh_cost: float
    scratch_cost: float
    #: The entry's access count when the decision was made.
    hits: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "query_name": self.query_name,
            "action": self.action,
            "refresh_cost": self.refresh_cost,
            "scratch_cost": self.scratch_cost,
            "hits": self.hits,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RefreshDecision({self.query_name!r}: {self.action}, "
            f"refresh={self.refresh_cost:.1f} vs scratch={self.scratch_cost:.1f}, "
            f"hits={self.hits})"
        )


class SchedulerStats:
    """Cumulative decision counts of one scheduler."""

    __slots__ = ("batches", "walked", "eager_refreshes", "lazy_marks", "invalidations", "dropped")

    def __init__(self) -> None:
        #: Batches after which the scheduler walked its sessions.
        self.batches = 0
        #: Stale entries examined across all walks.
        self.walked = 0
        self.eager_refreshes = 0
        self.lazy_marks = 0
        #: Entries dropped because refresh was priced >= scratch.
        self.invalidations = 0
        #: Entries the cache discarded as unpatchable during the walk.
        self.dropped = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"SchedulerStats({parts})"


class RefreshScheduler:
    """Chooses eager / lazy / invalidate for stale cubes after each batch.

    Register the :class:`~repro.olap.session.OLAPSession` objects whose
    caches serve reads over the ingested graph (typically sessions sharing
    the ingestor's bare-graph sink); attach the scheduler to a
    :class:`~repro.ingest.stream.StreamIngestor` and it runs after every
    applied micro-batch, or call :meth:`after_batch` yourself.

    Parameters
    ----------
    sessions:
        Sessions to walk; more can join later via :meth:`register`.
    policy:
        One of :data:`POLICIES`.  ``"auto"`` (default) refreshes entries
        with at least ``hot_hits`` observed accesses eagerly and marks the
        rest lazy; ``"eager"`` / ``"lazy"`` force that action for every
        profitably-patchable entry.
    hot_hits:
        The ``"auto"`` hotness bar (ignored by the forced policies).
    """

    def __init__(self, sessions=(), policy: str = "auto", hot_hits: int = DEFAULT_HOT_HITS):
        if policy not in POLICIES:
            raise IngestError(
                f"unknown refresh policy {policy!r}; expected one of {POLICIES}"
            )
        if hot_hits < 0:
            raise IngestError(f"hot_hits must be >= 0, got {hot_hits}")
        self._sessions: List = list(sessions)
        self._policy = policy
        self._hot_hits = int(hot_hits)
        self.stats = SchedulerStats()
        #: Decisions of the most recent walk (replaced wholesale each batch).
        self.last_decisions: Tuple[RefreshDecision, ...] = ()

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def hot_hits(self) -> int:
        return self._hot_hits

    @property
    def sessions(self) -> Tuple:
        return tuple(self._sessions)

    def register(self, session) -> None:
        """Add a session whose cache this scheduler maintains."""
        if session not in self._sessions:
            self._sessions.append(session)

    def unregister(self, session) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    # ------------------------------------------------------------------

    def after_batch(self, batch=None) -> Tuple[RefreshDecision, ...]:
        """Walk every registered session cache and act on stale entries.

        ``batch`` (the :class:`~repro.ingest.stream.AppliedBatch` that just
        published) is accepted for the ingestor hook signature but the walk
        only needs the sessions' current graph versions.  Returns (and
        stores in :attr:`last_decisions`) the decisions taken.
        """
        decisions: List[RefreshDecision] = []
        for session in self._sessions:
            decisions.extend(self._walk(session))
        self.stats.batches += 1
        self.last_decisions = tuple(decisions)
        return self.last_decisions

    def _walk(self, session) -> List[RefreshDecision]:
        cache = session.cache
        graph = session.instance
        decisions: List[RefreshDecision] = []
        for entry in cache.entries():
            if entry.graph_version >= graph.version:
                continue  # fresh (or from the future of another graph)
            if cache.is_lazy(entry.key):
                continue  # already scheduled; the read path owns it now
            self.stats.walked += 1
            decisions.append(self._decide(session, cache, graph, entry))
        return decisions

    def _decide(self, session, cache, graph, entry) -> RefreshDecision:
        query = entry.query
        hits = entry.hits
        # stale_entry() re-checks patchability and drops entries whose
        # deltas outran the graph's change log — that drop is the cache's
        # own invalidation, recorded here as "dropped".
        found = cache.stale_entry(query, graph)
        if found is None:
            self.stats.dropped += 1
            return RefreshDecision(
                key=entry.key,
                query_name=query.name,
                action="dropped",
                refresh_cost=float("inf"),
                scratch_cost=0.0,
                hits=hits,
            )
        entry, delta = found
        refresh_cost, scratch_cost = session.maintainer.price_refresh(
            entry.materialized, delta, engine=session.engine
        )
        action = self._choose(refresh_cost, scratch_cost, hits)
        if action == "eager":
            refreshed = cache.refresh(query, graph, session.maintainer)
            if refreshed is None:
                # The patch failed under our feet (e.g. the log rolled on
                # between pricing and patching); the cache already dropped it.
                self.stats.dropped += 1
                action = "dropped"
            else:
                self.stats.eager_refreshes += 1
        elif action == "lazy":
            cache.mark_lazy(entry.key)
            self.stats.lazy_marks += 1
        else:  # invalidate
            cache.evict(entry.key)
            self.stats.invalidations += 1
        return RefreshDecision(
            key=entry.key,
            query_name=query.name,
            action=action,
            refresh_cost=refresh_cost,
            scratch_cost=scratch_cost,
            hits=hits,
        )

    def _choose(self, refresh_cost: float, scratch_cost: float, hits: int) -> str:
        if refresh_cost >= scratch_cost:
            # Patching costs at least a recomputation: the read path would
            # never take the patch, so a retained entry is dead weight and
            # a lazy mark would *force* the worse plan.  Drop it.
            return "invalidate"
        if self._policy == "eager":
            return "eager"
        if self._policy == "lazy":
            return "lazy"
        return "eager" if hits >= self._hot_hits else "lazy"

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RefreshScheduler(policy={self._policy!r}, {len(self._sessions)} sessions, "
            f"{self.stats.eager_refreshes} eager / {self.stats.lazy_marks} lazy / "
            f"{self.stats.invalidations} invalidated)"
        )
