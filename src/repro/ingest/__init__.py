"""Streaming ingestion: micro-batched writes with continuous refresh.

:class:`~repro.ingest.stream.StreamIngestor` turns a continuous stream of
add/remove triples into coalesced, atomic micro-batches applied to a bare
:class:`~repro.rdf.graph.Graph` or through the serving layer's single
writer, with bounded-buffer backpressure (typed error or async blocking).
:class:`~repro.ingest.scheduler.RefreshScheduler` runs after every
published batch and decides, per stale cached cube, between eager refresh,
lazy refresh-on-read and invalidation, using the calibrated cost model's
refresh-vs-scratch pricing and each entry's observed hit rate.
"""

from __future__ import annotations

from repro.ingest.scheduler import POLICIES, RefreshDecision, RefreshScheduler, SchedulerStats
from repro.ingest.stream import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CAPACITY,
    AppliedBatch,
    IngestStats,
    StreamIngestor,
)

__all__ = [
    "AppliedBatch",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CAPACITY",
    "IngestStats",
    "POLICIES",
    "RefreshDecision",
    "RefreshScheduler",
    "SchedulerStats",
    "StreamIngestor",
]
