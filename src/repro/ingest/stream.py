"""Micro-batched streaming ingestion with backpressure and coalescing.

PR 3 made cached cubes survive *batched* updates; this module turns a
continuous stream of add/remove triples into those batches.  The design is
the classic write-ahead staging buffer of streaming stores:

* **Bounded buffer, typed backpressure.**  Pending mutations live in a
  bounded net-effect buffer.  When it is full, the synchronous submit paths
  raise :class:`~repro.errors.IngestBackpressureError` (typed: carries the
  depth and the bound) and the asynchronous ones either raise or *block*
  until a flush frees space — the caller picks with ``backpressure=``.
* **Coalescing before the graph.**  The buffer keys pending mutations by
  triple and keeps only the *last* mutation of each: an ``add`` chased by
  a ``remove`` of the same triple (or vice versa) collapses to the later
  mutation in place, so at most one graph operation per triple survives a
  burst of churn.  Duplicate submissions of the same pending mutation are
  absorbed for free.  Last-writer-wins is the only sound reduction for
  set-semantics graphs: the final state of a triple is decided by its last
  mutation alone, whereas cancelling an opposite *pair* outright would
  assume the earlier mutation had been effective — wrong exactly when it
  was a no-op (adding a triple the graph already holds, or removing one it
  never did).  Mutations of distinct triples commute, and same-triple
  mutations totally order through the single buffer slot.
* **Micro-batches at a cadence.**  A batch is cut when the buffer reaches
  ``batch_size`` pending mutations (size threshold) or the oldest pending
  mutation reaches ``max_batch_age`` seconds (age threshold); an async
  pump task (:meth:`StreamIngestor.start_pump`) enforces the age cadence
  autonomously, and :meth:`~StreamIngestor.flush` /
  :meth:`~StreamIngestor.aflush` cut one on demand.
* **Atomic application.**  Batches apply through the serving layer's
  single writer (:meth:`repro.serving.service.OLAPService.update`, itself
  atomic since this PR) or directly onto a bare
  :class:`~repro.rdf.graph.Graph` with the same
  roll-back-the-applied-prefix discipline, so a failed batch never leaves
  the sink half-mutated.
* **Refresh scheduling.**  After every applied batch the attached
  :class:`~repro.ingest.scheduler.RefreshScheduler` (when given) walks its
  registered session caches and decides, per stale entry, between eager
  refresh, lazy refresh-on-read and invalidation.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    IngestBackpressureError,
    IngestClosedError,
    IngestError,
    IngestPumpError,
    InvalidTripleError,
)
from repro.rdf.triples import Triple

__all__ = ["AppliedBatch", "IngestStats", "StreamIngestor", "DEFAULT_CAPACITY", "DEFAULT_BATCH_SIZE"]

#: Default bound on pending (coalesced) mutations in the buffer.
DEFAULT_CAPACITY = 4096
#: Default size threshold: pending mutations that cut a micro-batch.
DEFAULT_BATCH_SIZE = 256
#: Default age threshold in seconds: a pending mutation older than this
#: forces a flush even when the size threshold has not been reached.
DEFAULT_MAX_BATCH_AGE = 0.05


@dataclass
class AppliedBatch:
    """One micro-batch that reached the sink, with its provenance."""

    #: Monotonic batch number within this ingestor (0-based).
    sequence: int
    adds: Tuple[Triple, ...]
    removes: Tuple[Triple, ...]
    #: What cut the batch: ``"size"``, ``"age"`` or ``"forced"``.
    reason: str
    #: Wall-clock seconds spent applying (and publishing) the batch.
    seconds: float
    #: The sink's version after the batch (service publish version, or the
    #: bare graph's change counter).
    version: int

    def __len__(self) -> int:
        return len(self.adds) + len(self.removes)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AppliedBatch(#{self.sequence}, +{len(self.adds)}/-{len(self.removes)}, "
            f"{self.reason}, v{self.version})"
        )


class IngestStats:
    """Accepted / coalesced / rejected / applied accounting of one ingestor."""

    __slots__ = (
        "submitted",
        "accepted",
        "superseded",
        "duplicates",
        "rejected",
        "blocked",
        "batches",
        "applied_adds",
        "applied_removes",
        "failed_batches",
        "flush_reasons",
    )

    def __init__(self) -> None:
        #: Mutations offered to the ingestor (before coalescing).
        self.submitted = 0
        #: Mutations that grew the pending buffer.
        self.accepted = 0
        #: Pending mutations overwritten by an opposite mutation of the
        #: same triple (last-writer-wins: the earlier one never touches
        #: the graph).
        self.superseded = 0
        #: Submissions identical to an already-pending mutation (absorbed).
        self.duplicates = 0
        #: Submissions refused with :class:`IngestBackpressureError`.
        self.rejected = 0
        #: Async submissions that had to wait for a flush to free space.
        self.blocked = 0
        self.batches = 0
        self.applied_adds = 0
        self.applied_removes = 0
        self.failed_batches = 0
        #: Batches per cut reason (``size`` / ``age`` / ``forced``).
        self.flush_reasons: Dict[str, int] = {}

    @property
    def coalesced(self) -> int:
        """Submitted mutations that never reached the sink (superseded + dups)."""
        return self.superseded + self.duplicates

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "superseded": self.superseded,
            "duplicates": self.duplicates,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "blocked": self.blocked,
            "batches": self.batches,
            "applied_adds": self.applied_adds,
            "applied_removes": self.applied_removes,
            "failed_batches": self.failed_batches,
            "flush_reasons": dict(self.flush_reasons),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IngestStats(submitted={self.submitted}, coalesced={self.coalesced}, "
            f"batches={self.batches}, rejected={self.rejected})"
        )


class StreamIngestor:
    """Turns a continuous triple stream into atomic micro-batches.

    Parameters
    ----------
    sink:
        Where batches land: an :class:`~repro.serving.service.OLAPService`
        (batches go through the single writer's atomic
        :meth:`~repro.serving.service.OLAPService.update` and republish) or
        a bare mutable :class:`~repro.rdf.graph.Graph` (batches apply
        directly, with the same rollback-on-error discipline).
    capacity:
        Bound on pending coalesced mutations (backpressure beyond it).
    batch_size:
        Size threshold: a flush cuts at most this many mutations, and the
        buffer reaching it makes a batch *due*.
    max_batch_age:
        Age threshold in seconds: a pending mutation older than this makes
        a batch due even below ``batch_size``.
    backpressure:
        ``"error"`` — a full buffer always raises
        :class:`~repro.errors.IngestBackpressureError`;
        ``"block"`` — the async submit paths instead wait for a flush to
        free space (the sync paths still raise: they have no way to wait
        without deadlocking their own consumer).
    scheduler:
        Optional :class:`~repro.ingest.scheduler.RefreshScheduler` invoked
        after every applied batch.
    clock:
        Monotonic time source (injectable for deterministic age tests).

    Examples
    --------
    >>> from repro.rdf.graph import Graph
    >>> from repro.rdf.namespaces import EX
    >>> from repro.rdf.triples import Triple
    >>> graph = Graph()
    >>> ingestor = StreamIngestor(graph, batch_size=4)
    >>> ingestor.add(Triple(EX.a, EX.p, EX.b))   # buffered, not yet applied
    >>> len(graph)
    0
    >>> ingestor.remove(Triple(EX.a, EX.p, EX.b))  # supersedes the add
    >>> ingestor.pending                           # one pending remove
    1
    >>> ingestor.add(Triple(EX.c, EX.p, EX.d))
    >>> batch = ingestor.flush(force=True)
    >>> (len(graph), batch.reason, ingestor.stats.superseded)
    (1, 'forced', 1)
    """

    def __init__(
        self,
        sink,
        capacity: int = DEFAULT_CAPACITY,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_batch_age: float = DEFAULT_MAX_BATCH_AGE,
        backpressure: str = "error",
        scheduler=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise IngestError(f"capacity must be >= 1, got {capacity}")
        if batch_size < 1:
            raise IngestError(f"batch_size must be >= 1, got {batch_size}")
        if max_batch_age < 0:
            raise IngestError(f"max_batch_age must be >= 0, got {max_batch_age}")
        if backpressure not in ("error", "block"):
            raise IngestError(
                f"backpressure must be 'error' or 'block', got {backpressure!r}"
            )
        update = getattr(sink, "update", None)
        self._service_sink = asyncio.iscoroutinefunction(update)
        if not self._service_sink and not hasattr(sink, "add"):
            raise IngestError(
                f"sink must be an OLAPService or a mutable Graph, got {type(sink).__name__}"
            )
        self._sink = sink
        self._capacity = int(capacity)
        self._batch_size = int(batch_size)
        self._max_batch_age = float(max_batch_age)
        self._backpressure = backpressure
        self._scheduler = scheduler
        self._clock = clock
        #: Triple -> (net sign: +1 add / -1 remove, arrival clock reading),
        #: oldest arrival first.  Supersession keeps slot position and
        #: arrival, so the front entry is always the oldest and the age
        #: threshold never restarts for surviving mutations.
        self._pending: "OrderedDict[Triple, Tuple[int, float]]" = OrderedDict()
        self._sequence = 0
        self._closed = False
        self._pump_task: Optional[asyncio.Task] = None
        #: Why the background pump died, when it did (see start_pump).
        self._pump_error: Optional[BaseException] = None
        # Created lazily in async context: set whenever a flush frees space.
        self._space: Optional[asyncio.Event] = None
        self._flush_lock: Optional[asyncio.Lock] = None
        self.stats = IngestStats()
        self.applied: List[AppliedBatch] = []

    # -- introspection -------------------------------------------------

    @property
    def sink(self):
        return self._sink

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def max_batch_age(self) -> float:
        return self._max_batch_age

    @property
    def backpressure(self) -> str:
        return self._backpressure

    @property
    def scheduler(self):
        return self._scheduler

    @property
    def pending(self) -> int:
        """Coalesced mutations waiting in the buffer."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pump_error(self) -> Optional[BaseException]:
        """The exception that killed the background pump, or None.

        While set, the submit paths raise
        :class:`~repro.errors.IngestPumpError` instead of quietly buffering
        into a stream nobody flushes; :meth:`start_pump` clears it.
        """
        return self._pump_error

    def _oldest_arrival(self) -> Optional[float]:
        """Arrival clock reading of the oldest pending mutation, or None."""
        if not self._pending:
            return None
        return next(iter(self._pending.values()))[1]

    def due(self) -> bool:
        """True when a micro-batch should be cut now (size or age)."""
        if not self._pending:
            return False
        if len(self._pending) >= self._batch_size:
            return True
        oldest = self._oldest_arrival()
        return oldest is not None and self._clock() - oldest >= self._max_batch_age

    # -- submission ----------------------------------------------------

    @staticmethod
    def _as_triple(triple) -> Triple:
        """Normalize to a validated :class:`Triple` at the ingest boundary.

        Malformed input is rejected *here*, before it is buffered — a bad
        triple must fail its producer, never poison a later micro-batch.
        """
        if isinstance(triple, Triple):
            return triple
        try:
            subject, predicate, object_ = triple
        except (TypeError, ValueError) as exc:
            raise InvalidTripleError(f"cannot interpret {triple!r} as a triple") from exc
        return Triple(subject, predicate, object_)

    def _enqueue(self, triple, sign: int, count_reject: bool = True) -> bool:
        """Coalesce one mutation into the buffer; True when it grew.

        Raises :class:`IngestBackpressureError` when growth would exceed
        ``capacity``; ``count_reject=False`` keeps the raise out of
        ``stats.rejected`` (blocking callers retry, they don't reject).
        """
        if self._closed:
            raise IngestClosedError()
        if self._pump_error is not None:
            raise IngestPumpError(self._pump_error) from self._pump_error
        triple = self._as_triple(triple)
        self.stats.submitted += 1
        pending = self._pending
        existing = pending.get(triple)
        if existing is not None:
            existing_sign, arrival = existing
            if existing_sign == sign:
                self.stats.duplicates += 1
                return False
            # Opposite mutation of a pending triple: the last writer wins.
            # The slot keeps its position and arrival (the oldest pending
            # intent still bounds the batch age), only the sign flips.
            # Cancelling the pair outright would be unsound: it assumes the
            # pending mutation would have been effective, which a no-op add
            # (triple already in the sink) or no-op remove (never there)
            # is not.
            pending[triple] = (sign, arrival)
            self.stats.superseded += 1
            return False
        if len(pending) >= self._capacity:
            self.stats.submitted -= 1  # not admitted; recounted on retry
            if count_reject:
                self.stats.rejected += 1
            raise IngestBackpressureError(len(pending), self._capacity)
        pending[triple] = (sign, self._clock())
        self.stats.accepted += 1
        return True

    def add(self, triple) -> None:
        """Buffer one triple addition (synchronous; raises when full)."""
        self._enqueue(triple, 1)

    def remove(self, triple) -> None:
        """Buffer one triple removal (synchronous; raises when full)."""
        self._enqueue(triple, -1)

    def ingest(self, add: Iterable = (), remove: Iterable = ()) -> None:
        """Buffer a group of mutations (synchronous; raises when full)."""
        for triple in remove:
            self._enqueue(triple, -1)
        for triple in add:
            self._enqueue(triple, 1)

    async def asubmit(self, triple, sign: int) -> None:
        """Async submit: blocks for space under ``backpressure="block"``.

        With a pump task running, a blocked producer waits for the pump's
        next flush; without one it drains a due batch inline — either way
        the await returns only once the mutation is buffered (or cancels
        with the typed error under ``backpressure="error"``).
        """
        blocking = self._backpressure == "block"
        while True:
            try:
                self._enqueue(triple, sign, count_reject=not blocking)
                return
            except IngestBackpressureError:
                if not blocking:
                    raise
                self.stats.blocked += 1
                await self._wait_for_space()

    async def _wait_for_space(self) -> None:
        pump = self._pump_task
        if pump is not None and not pump.done():
            # A live pump will flush; wait for it to signal freed space (or
            # for its failure handler to set the event and record the error
            # that the retry in asubmit then surfaces).
            if self._space is None:
                self._space = asyncio.Event()
            self._space.clear()
            await self._space.wait()
        else:
            # No pump (or a dead one): the producer is its own consumer —
            # cut a batch now.
            await self.aflush(force=True)

    async def aadd(self, triple) -> None:
        await self.asubmit(triple, 1)

    async def aremove(self, triple) -> None:
        await self.asubmit(triple, -1)

    async def aingest(self, add: Iterable = (), remove: Iterable = ()) -> None:
        for triple in remove:
            await self.asubmit(triple, -1)
        for triple in add:
            await self.asubmit(triple, 1)

    # -- flushing ------------------------------------------------------

    def _take_batch(self, force: bool) -> Optional[Tuple[List[Tuple[Triple, int, float]], str]]:
        """Pop up to ``batch_size`` pending mutations, oldest first.

        Returns ``(items, reason)`` — items are ``(triple, sign, arrival)``
        — or None when no batch is due.  Popping *before* any (possibly
        awaited) application means two concurrent flushes can never ship
        the same mutation twice; survivors keep their own arrival stamps,
        so cutting a batch never restarts their age.
        """
        if not self._pending:
            return None
        oldest = self._oldest_arrival()
        if len(self._pending) >= self._batch_size:
            reason = "size"
        elif oldest is not None and self._clock() - oldest >= self._max_batch_age:
            reason = "age"
        elif force:
            reason = "forced"
        else:
            return None
        items: List[Tuple[Triple, int, float]] = []
        pending = self._pending
        while pending and len(items) < self._batch_size:
            triple, (sign, arrival) = pending.popitem(last=False)
            items.append((triple, sign, arrival))
        return items, reason

    def _requeue(self, items: List[Tuple[Triple, int, float]]) -> None:
        """Put a failed batch's mutations back at the front of the buffer.

        The sink's rollback discipline guarantees a failed batch left it
        unchanged, so re-queuing (for the caller's retry) loses nothing and
        double-applies nothing.  The items re-enter at the front with their
        original arrival stamps — they are older than everything pending —
        except where a newer mutation of the same triple arrived while the
        batch was in flight: last-writer-wins, the newer slot stands.  The
        buffer may transiently exceed ``capacity``; refusing the re-queue
        would turn backpressure into data loss.
        """
        pending = self._pending
        for triple, sign, arrival in reversed(items):
            if triple in pending:
                continue
            pending[triple] = (sign, arrival)
            pending.move_to_end(triple, last=False)

    def _apply_to_graph(self, adds, removes) -> int:
        """Apply one batch to a bare graph atomically; returns its version.

        Mirrors the serving writer's discipline: on error the applied
        prefix is rolled back (reverse order) before the error propagates.
        """
        graph = self._sink
        applied: List[Tuple[int, Triple]] = []
        try:
            for triple in removes:
                if graph.remove(triple):
                    applied.append((-1, triple))
            for triple in adds:
                if graph.add(triple):
                    applied.append((1, triple))
        except Exception:
            for sign, triple in reversed(applied):
                if sign > 0:
                    graph.remove(triple)
                else:
                    graph.add(triple)
            raise
        return graph.version

    def _record(self, adds, removes, reason, seconds, version) -> AppliedBatch:
        batch = AppliedBatch(
            sequence=self._sequence,
            adds=adds,
            removes=removes,
            reason=reason,
            seconds=seconds,
            version=version,
        )
        self._sequence += 1
        self.stats.batches += 1
        self.stats.applied_adds += len(adds)
        self.stats.applied_removes += len(removes)
        self.stats.flush_reasons[reason] = self.stats.flush_reasons.get(reason, 0) + 1
        self.applied.append(batch)
        if self._space is not None:
            self._space.set()
        if self._scheduler is not None:
            self._scheduler.after_batch(batch)
        return batch

    def flush(self, force: bool = False) -> Optional[AppliedBatch]:
        """Cut and apply one micro-batch synchronously (bare-graph sinks).

        Returns the applied batch, or None when nothing is due (pass
        ``force=True`` to cut a below-threshold batch).  Service sinks are
        asynchronous — use :meth:`aflush` (calling ``flush`` on one raises).
        """
        if self._service_sink:
            raise IngestError(
                "this ingestor's sink is an OLAPService; use aflush()/adrain()"
            )
        taken = self._take_batch(force)
        if taken is None:
            return None
        items, reason = taken
        adds = tuple(triple for triple, sign, _ in items if sign > 0)
        removes = tuple(triple for triple, sign, _ in items if sign < 0)
        started = time.perf_counter()
        try:
            version = self._apply_to_graph(adds, removes)
        except Exception:
            # The rollback left the graph unchanged: re-queue the batch so
            # a transient failure costs a retry, not the mutations.
            self.stats.failed_batches += 1
            self._requeue(items)
            raise
        return self._record(adds, removes, reason, time.perf_counter() - started, version)

    async def aflush(self, force: bool = False) -> Optional[AppliedBatch]:
        """Cut and apply one micro-batch (any sink; service sinks await)."""
        if not self._service_sink:
            return self.flush(force=force)
        if self._flush_lock is None:
            self._flush_lock = asyncio.Lock()
        async with self._flush_lock:
            taken = self._take_batch(force)
            if taken is None:
                return None
            items, reason = taken
            adds = tuple(triple for triple, sign, _ in items if sign > 0)
            removes = tuple(triple for triple, sign, _ in items if sign < 0)
            started = time.perf_counter()
            try:
                result = await self._sink.update(add=adds, remove=removes)
            except Exception:
                # update() is atomic: the writer graph rolled back, so the
                # batch can be re-queued and retried without double-apply.
                self.stats.failed_batches += 1
                self._requeue(items)
                raise
            return self._record(
                adds, removes, reason, time.perf_counter() - started, result.version
            )

    def drain(self) -> List[AppliedBatch]:
        """Flush until the buffer is empty (synchronous sinks)."""
        batches = []
        while self._pending:
            batch = self.flush(force=True)
            if batch is not None:
                batches.append(batch)
        return batches

    async def adrain(self) -> List[AppliedBatch]:
        """Flush until the buffer is empty (any sink)."""
        batches = []
        while self._pending:
            batch = await self.aflush(force=True)
            if batch is not None:
                batches.append(batch)
        return batches

    def pump(self) -> Optional[AppliedBatch]:
        """Apply one micro-batch *if due* (the sync cadence driver).

        Callers feeding a bare graph interleave ``pump()`` with their
        submissions; it is a no-op until the size or age threshold trips.
        """
        if not self.due():
            return None
        return self.flush()

    # -- async pump / lifecycle ---------------------------------------

    def start_pump(self, interval: Optional[float] = None) -> asyncio.Task:
        """Start the background flush task enforcing the age cadence.

        Must be called with a running event loop.  The pump wakes every
        ``interval`` seconds (default: half the age threshold) and flushes
        whenever a batch is due; :meth:`aclose` cancels it and drains.  If
        a previous pump died on a flush failure (see :attr:`pump_error`),
        starting a new one clears the error and resumes ingestion — the
        failed batch is still in the buffer, re-queued.
        """
        if self._closed:
            raise IngestClosedError()
        if self._pump_task is not None and not self._pump_task.done():
            return self._pump_task
        self._pump_error = None
        loop = asyncio.get_running_loop()
        period = interval if interval is not None else max(self._max_batch_age / 2, 0.001)
        self._pump_task = loop.create_task(self._pump_loop(period))
        return self._pump_task

    async def _pump_loop(self, period: float) -> None:
        try:
            while True:
                await asyncio.sleep(period)
                while self.due():
                    await self.aflush()
        except asyncio.CancelledError:
            pass
        except Exception as exc:
            # A flush failure must not kill the pump *silently*: producers
            # blocked in _wait_for_space would sleep forever and the task
            # exception would go unretrieved.  Record the failure (the
            # submit paths re-raise it as IngestPumpError) and wake every
            # blocked producer so they observe it.
            self._pump_error = exc
            if self._space is None:
                self._space = asyncio.Event()
            self._space.set()

    async def aclose(self) -> None:
        """Stop the pump, drain the buffer, refuse further submissions."""
        if self._closed:
            return
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        await self.adrain()
        self._closed = True

    def close(self) -> None:
        """Drain and close a pump-less ingestor synchronously."""
        if self._closed:
            return
        if self._pump_task is not None and not self._pump_task.done():
            raise IngestError("a pump task is running; use aclose()")
        if self._service_sink:
            raise IngestError(
                "this ingestor's sink is an OLAPService; use aclose()"
            )
        self.drain()
        self._closed = True

    async def __aenter__(self) -> "StreamIngestor":
        self.start_pump()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __enter__(self) -> "StreamIngestor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        kind = "service" if self._service_sink else "graph"
        return (
            f"StreamIngestor({kind} sink, {self.pending}/{self._capacity} pending, "
            f"{self.stats.batches} batches)"
        )
