"""Shared fixtures for the serving-layer tests.

The suite runs over the generic star-shaped dataset, in both publication
modes: ``heap`` always, ``snapshot`` when numpy is available.
"""

import pytest

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen.generic import GenericConfig, generic_dataset
from repro.olap.cube import Cube
from repro.rdf import Literal, RDF, Triple
from repro.rdf.namespaces import EX

RDF_TYPE = RDF.term("type")


def _has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.fixture(
    params=[
        "heap",
        pytest.param(
            "snapshot",
            marks=pytest.mark.skipif(
                not _has_numpy(), reason="snapshot publication requires numpy"
            ),
        ),
    ]
)
def publish_mode(request):
    return request.param


@pytest.fixture()
def dataset():
    return generic_dataset(GenericConfig(facts=60, dimensions=2, seed=11))


@pytest.fixture()
def query(dataset):
    return dataset.query


def scratch_cube(graph, query) -> Cube:
    """From-scratch oracle: evaluate ``query`` over ``graph`` right now."""
    return Cube(AnalyticalQueryEvaluator(graph).answer(query), query)


def fact_batch(tag: str, count: int = 3):
    """Triples for ``count`` fresh facts that land in the canonical cube."""
    triples = []
    for index in range(count):
        fact = EX.term(f"fact/extra-{tag}-{index}")
        triples.append(Triple(fact, RDF_TYPE, EX.term("Fact")))
        triples.append(Triple(fact, EX.term("dim0"), EX.term("dimvalue/0/0")))
        triples.append(Triple(fact, EX.term("dim1"), EX.term("dimvalue/1/1")))
        triples.append(Triple(fact, EX.term("measure"), Literal(7 + index)))
    return triples
