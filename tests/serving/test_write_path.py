"""Write-path regressions: atomic batches, honest stats, prompt drain.

Each test here pins one of the write-path bugs the streaming-ingestion
work exposed: a failed update batch used to leave the writer graph
partially mutated (and still counted as an update), and ``aclose()`` used
to busy-poll the in-flight counter instead of being woken.
"""

import asyncio
import threading
import time

import pytest

from repro.errors import ServingError
from repro.rdf import Literal, RDF, Triple
from repro.rdf.namespaces import EX
from repro.serving import OLAPService

from tests.serving.conftest import fact_batch, scratch_cube

RDF_TYPE = RDF.term("type")


def run(coroutine):
    return asyncio.run(coroutine)


def graph_triples(graph):
    return set(graph)


class TestAtomicUpdate:
    """A failed batch must leave the writer exactly as it found it."""

    def test_failed_batch_rolls_back_applied_prefix(self, dataset, query):
        async def main():
            async with OLAPService(dataset.instance, dataset.schema) as service:
                before = graph_triples(service.generations.writer_graph)
                good_head = fact_batch("prefix", 2)
                good_tail = fact_batch("suffix", 1)
                batch = good_head + ["not a triple"] + good_tail
                with pytest.raises(Exception):
                    await service.update(add=batch)
                # Regression: the old writer kept ``good_head`` applied.
                assert graph_triples(service.generations.writer_graph) == before

        run(main())

    def test_failed_batch_is_not_published_later(self, dataset, query):
        """A later successful update must not smuggle out the torn prefix."""

        async def main():
            async with OLAPService(dataset.instance, dataset.schema) as service:
                with pytest.raises(Exception):
                    await service.update(add=fact_batch("torn", 2) + [object()])
                result = await service.update(add=fact_batch("clean", 1))
                assert result.published
                served = await service.query("alice", query)
                assert served.cube.same_cells(
                    scratch_cube(served.generation.graph, query)
                )
                # Only the clean facts are visible.
                graph = service.generations.current.graph
                assert Triple(EX.term("fact/extra-clean-0"), RDF_TYPE, EX.term("Fact")) in graph
                assert (
                    Triple(EX.term("fact/extra-torn-0"), RDF_TYPE, EX.term("Fact"))
                    not in graph
                )

        run(main())

    def test_failed_remove_prefix_is_restored(self, dataset):
        async def main():
            async with OLAPService(dataset.instance, dataset.schema) as service:
                writer = service.generations.writer_graph
                victims = list(writer)[:3]
                before = graph_triples(writer)
                with pytest.raises(Exception):
                    await service.update(remove=victims + [42])
                assert graph_triples(service.generations.writer_graph) == before

        run(main())

    def test_failed_mutate_is_rolled_back_from_the_change_log(self, dataset):
        async def main():
            async with OLAPService(dataset.instance, dataset.schema) as service:
                before = graph_triples(service.generations.writer_graph)

                def mutate(graph):
                    graph.add(Triple(EX.term("mutant"), RDF_TYPE, EX.term("Fact")))
                    graph.remove(next(iter(graph)))
                    raise RuntimeError("boom")

                with pytest.raises(RuntimeError):
                    await service.update(mutate=mutate)
                assert graph_triples(service.generations.writer_graph) == before

        run(main())

    def test_unreconstructable_mutate_failure_is_loud(self, dataset):
        """When the change log cannot replay the batch, the failure says so."""

        async def main():
            async with OLAPService(dataset.instance, dataset.schema) as service:

                def mutate(graph):
                    graph.add(Triple(EX.term("mutant"), RDF_TYPE, EX.term("Fact")))
                    graph.clear()  # the log now cannot reconstruct the batch
                    raise RuntimeError("boom")

                with pytest.raises(ServingError, match="cannot be rolled back"):
                    await service.update(mutate=mutate)

        run(main())

    def test_update_stats_stay_honest_on_failure(self, dataset):
        """Regression: a rolled-back batch used to count in ``updates``."""

        async def main():
            async with OLAPService(dataset.instance, dataset.schema) as service:
                assert service.stats.update_failures == 0
                with pytest.raises(Exception):
                    await service.update(add=["junk"])
                assert service.stats.updates == 0
                assert service.stats.update_failures == 1
                assert service.stats.publishes == 0
                await service.update(add=fact_batch("ok", 1))
                assert service.stats.updates == 1
                assert service.stats.update_failures == 1
                assert service.stats.as_dict()["update_failures"] == 1

        run(main())


class TestPromptDrain:
    """``aclose()`` waits on an event; the last query's exit wakes it."""

    def test_aclose_with_no_inflight_returns_immediately(self, dataset):
        async def main():
            service = OLAPService(dataset.instance, dataset.schema)
            async with service:
                pass  # no queries at all

        run(main())

    def test_aclose_wakes_when_the_last_query_finishes(self, dataset, query):
        async def main():
            gate = threading.Event()
            started = asyncio.Queue()
            service = OLAPService(dataset.instance, dataset.schema)

            real_execute = service._execute

            def blocking_execute(session, q, materialize_partial):
                started.put_nowait(None)
                gate.wait(timeout=10)
                return real_execute(session, q, materialize_partial)

            service._execute = blocking_execute
            task = asyncio.create_task(service.query("alice", query))
            await asyncio.wait_for(started.get(), timeout=5)

            closer = asyncio.create_task(service.aclose())
            await asyncio.sleep(0.05)
            assert not closer.done()  # still draining the in-flight query
            # The drain event exists and is armed (regression: the old
            # close path had nothing to wake and polled a counter instead).
            assert service._drained is not None
            assert not service._drained.is_set()

            gate.set()
            result = await asyncio.wait_for(task, timeout=5)
            released = time.perf_counter()
            await asyncio.wait_for(closer, timeout=5)
            woke_after = time.perf_counter() - released
            assert service._drained.is_set()
            assert result.cube is not None
            # Event wake, not a poll loop: closing completes essentially
            # together with the query (generous bound for slow CI).
            assert woke_after < 1.0

        run(main())

    def test_aclose_still_idempotent_after_event_drain(self, dataset, query):
        async def main():
            service = OLAPService(dataset.instance, dataset.schema)
            async with service:
                await service.query("alice", query)
            await service.aclose()
            await service.aclose()

        run(main())
