"""Differential suite: concurrent readers vs. a republishing writer.

The serving layer's contract under concurrency, checked end to end:

* every answered cube equals a from-scratch evaluation over the *exact*
  graph generation it was served from (snapshot isolation — no torn reads,
  no answers mixing two versions);
* rejections are typed and counted, admitted queries always answer;
* superseded generations retire once their last reader drains.
"""

import asyncio

from repro.errors import AdmissionError
from repro.serving import OLAPService

from tests.serving.conftest import fact_batch, scratch_cube


async def _reader(service, tenant, query, rounds, outcomes):
    for _ in range(rounds):
        try:
            result = await service.query(tenant, query)
        except AdmissionError as rejection:
            outcomes.append(("rejected", type(rejection).__name__))
        else:
            outcomes.append(("served", result))
        await asyncio.sleep(0)


async def _writer(service, updates, batch_tag):
    for index in range(updates):
        await service.update(add=fact_batch(f"{batch_tag}-{index}", count=2))
        await asyncio.sleep(0.001)


class TestReadersVersusWriter:
    def test_every_answer_matches_scratch_at_its_snapshot(
        self, dataset, query, publish_mode
    ):
        async def main():
            async with OLAPService(
                dataset.instance,
                dataset.schema,
                max_concurrency=4,
                max_queue_depth=8,
                per_tenant_limit=4,
                publish_mode=publish_mode,
            ) as service:
                outcomes = []
                readers = [
                    _reader(service, f"tenant-{index}", query, rounds=6, outcomes=outcomes)
                    for index in range(4)
                ]
                await asyncio.gather(
                    _writer(service, updates=5, batch_tag="race"), *readers
                )
                served = [entry[1] for entry in outcomes if entry[0] == "served"]
                assert len(served) + service.stats.rejected == 4 * 6
                assert served, "no query was ever admitted"
                # The differential core: each cube equals scratch evaluation
                # over the generation it was pinned to at admission — even
                # though the writer republished five times underneath.
                for result in served:
                    assert result.generation.version == result.graph_version
                    assert result.cube.same_cells(
                        scratch_cube(result.generation.graph, query)
                    ), f"torn read at v{result.graph_version}"
                versions = {result.graph_version for result in served}
                assert len(versions) >= 2, "updates never became visible"
                assert service.stats.publishes == 5
                assert service.stats.served == len(served)

        asyncio.run(main())

    def test_superseded_generations_retire_when_readers_drain(
        self, dataset, query, publish_mode
    ):
        async def main():
            async with OLAPService(
                dataset.instance,
                dataset.schema,
                max_concurrency=2,
                publish_mode=publish_mode,
            ) as service:
                outcomes = []
                await asyncio.gather(
                    _reader(service, "tenant-a", query, rounds=5, outcomes=outcomes),
                    _writer(service, updates=4, batch_tag="retire"),
                )
                manager = service.generations
                # Quiescent: only the current generation is live, everything
                # superseded has been retired and its sessions dropped.
                live = manager.live_generations()
                assert live == [manager.current]
                assert manager.retired_count == manager.published_count - 1
                state = service.tenant("tenant-a")
                assert set(state.sessions) <= {manager.current.version}

        asyncio.run(main())

    def test_rejections_under_pressure_are_typed_and_complete(
        self, dataset, query
    ):
        async def main():
            async with OLAPService(
                dataset.instance,
                dataset.schema,
                max_concurrency=1,
                max_queue_depth=1,
                per_tenant_limit=2,
                publish_mode="heap",
            ) as service:
                attempts = 24
                results = await asyncio.gather(
                    *[
                        service.query(f"tenant-{index % 3}", query)
                        for index in range(attempts)
                    ],
                    return_exceptions=True,
                )
                served = [r for r in results if not isinstance(r, Exception)]
                rejected = [r for r in results if isinstance(r, Exception)]
                assert all(isinstance(r, AdmissionError) for r in rejected)
                assert len(served) == service.stats.served
                assert len(rejected) == service.stats.rejected
                assert len(served) + len(rejected) == attempts
                for result in served:
                    assert result.cube.same_cells(
                        scratch_cube(result.generation.graph, query)
                    )

        asyncio.run(main())
