"""MVCC generation lifecycle: publish, pin, drain, retire."""

import os

import pytest

from repro.errors import ServingError
from repro.serving.generations import GenerationManager, resolve_publish_mode

from tests.serving.conftest import fact_batch, scratch_cube


class TestResolvePublishMode:
    def test_explicit_modes_pass_through(self):
        assert resolve_publish_mode("heap") == "heap"
        assert resolve_publish_mode("snapshot") == "snapshot"

    def test_auto_picks_an_available_mode(self):
        assert resolve_publish_mode("auto") in ("snapshot", "heap")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServingError, match="unknown publish mode"):
            resolve_publish_mode("carrier-pigeon")


class TestPublication:
    def test_initial_generation_matches_writer(self, dataset, publish_mode):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            current = manager.current
            assert current.version == dataset.instance.version
            assert len(current.graph) == len(dataset.instance)
        finally:
            manager.close()

    def test_publish_without_changes_is_noop(self, dataset, publish_mode):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            before = manager.current
            assert manager.publish() is before
            assert manager.published_count == 1
        finally:
            manager.close()

    def test_published_generation_is_isolated_from_writer(
        self, dataset, query, publish_mode
    ):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            generation = manager.pin_current()
            frozen = scratch_cube(generation.graph, query)
            for triple in fact_batch("iso"):
                dataset.instance.add(triple)
            # The pinned generation still answers the pre-mutation state.
            assert scratch_cube(generation.graph, query).same_cells(frozen)
            assert not scratch_cube(dataset.instance, query).same_cells(frozen)
            manager.unpin(generation)
        finally:
            manager.close()

    def test_generation_version_tracks_writer_version(
        self, dataset, publish_mode
    ):
        """Both modes must expose one consistent version axis: the published
        graph reports the writer's version at publish time (the heap copy is
        re-stamped — ``Graph.copy`` alone would restart the counter)."""
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            for triple in fact_batch("stamp"):
                dataset.instance.add(triple)
            generation = manager.publish()
            assert generation.version == dataset.instance.version
            assert generation.graph.version == dataset.instance.version
        finally:
            manager.close()


class TestPinRetire:
    def test_pinned_generation_survives_publications(self, dataset, publish_mode):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            pinned = manager.pin_current()
            for round_index in range(3):
                for triple in fact_batch(f"r{round_index}", count=1):
                    dataset.instance.add(triple)
                manager.publish()
            assert not pinned.retired
            assert manager.current is not pinned
            manager.unpin(pinned)
            assert pinned.retired
        finally:
            manager.close()

    def test_superseded_unpinned_generation_retires_immediately(
        self, dataset, publish_mode
    ):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            first = manager.current
            for triple in fact_batch("now", count=1):
                dataset.instance.add(triple)
            manager.publish()
            assert first.retired
            assert manager.retired_count == 1
            assert manager.live_generations() == [manager.current]
        finally:
            manager.close()

    def test_current_generation_never_retires_on_unpin(self, dataset, publish_mode):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        try:
            generation = manager.pin_current()
            manager.unpin(generation)
            assert not generation.retired
            assert manager.current is generation
        finally:
            manager.close()

    def test_retire_callback_fires_once_per_generation(self, dataset, publish_mode):
        retired = []
        manager = GenerationManager(
            dataset.instance, mode=publish_mode, on_retire=retired.append
        )
        try:
            first = manager.current
            for triple in fact_batch("cb", count=1):
                dataset.instance.add(triple)
            manager.publish()
            assert retired == [first]
        finally:
            manager.close()
        assert len(retired) == 2  # close() retired the final generation too

    def test_pin_after_close_raises(self, dataset, publish_mode):
        manager = GenerationManager(dataset.instance, mode=publish_mode)
        manager.close()
        with pytest.raises(ServingError, match="closed"):
            manager.pin_current()
        manager.close()  # idempotent


class TestSnapshotSpool:
    """Snapshot-specific behaviour: spool files appear and are reclaimed."""

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy")

    def test_spool_file_unlinked_on_retire(self, tmp_path, dataset, query):
        manager = GenerationManager(
            dataset.instance, spool_dir=str(tmp_path), mode="snapshot"
        )
        try:
            first = manager.pin_current()
            assert first.path is not None and os.path.exists(first.path)
            for triple in fact_batch("spool", count=1):
                dataset.instance.add(triple)
            manager.publish()
            assert os.path.exists(first.path)  # still pinned
            # A pinned reader can keep answering even after retirement
            # unlinks the file: the mmap stays valid.
            frozen = scratch_cube(first.graph, query)
            manager.unpin(first)
            assert not os.path.exists(first.path)
            assert scratch_cube(first.graph, query).same_cells(frozen)
        finally:
            manager.close()

    def test_owned_spool_directory_removed_on_close(self, dataset):
        manager = GenerationManager(dataset.instance, mode="snapshot")
        spool = manager._spool_dir
        assert spool is not None and os.path.isdir(spool)
        manager.close()
        assert not os.path.exists(spool)

    def test_mutating_a_published_snapshot_raises(self, dataset):
        from repro.errors import ReadOnlyGraphError

        manager = GenerationManager(dataset.instance, mode="snapshot")
        try:
            generation = manager.current
            with pytest.raises(ReadOnlyGraphError):
                generation.graph.add(next(iter(dataset.instance)))
        finally:
            manager.close()
