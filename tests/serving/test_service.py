"""OLAPService: admission control, per-tenant sessions, writer updates."""

import asyncio
import threading

import pytest

from repro.errors import (
    QueueFullError,
    ServiceClosedError,
    ServingError,
    TenantBusyError,
)
from repro.serving import OLAPService

from tests.serving.conftest import fact_batch, scratch_cube


def run(coroutine):
    return asyncio.run(coroutine)


class TestBasics:
    def test_query_matches_scratch(self, dataset, query, publish_mode):
        async def main():
            async with OLAPService(
                dataset.instance, dataset.schema, publish_mode=publish_mode
            ) as service:
                result = await service.query("alice", query)
                assert result.tenant == "alice"
                assert result.graph_version == service.current_version
                assert result.cube.same_cells(
                    scratch_cube(result.generation.graph, query)
                )
                assert service.stats.served == 1
                assert service.stats.served_by_tenant == {"alice": 1}

        run(main())

    def test_tenants_get_private_sessions_over_shared_graph(
        self, dataset, query, publish_mode
    ):
        async def main():
            async with OLAPService(
                dataset.instance, dataset.schema, publish_mode=publish_mode
            ) as service:
                first = await service.query("alice", query)
                second = await service.query("alice", query)
                other = await service.query("bob", query)
                # Same tenant, same generation: the second answer is a cache
                # hit in that tenant's private session.
                assert second.strategy in ("cache", "cache[disk]")
                # Another tenant shares the graph but not the cache.
                assert other.strategy == "scratch"
                assert first.cube.same_cells(other.cube)
                alice = service.tenant("alice")
                bob = service.tenant("bob")
                assert alice.sessions != bob.sessions
                assert service.tenants() == ["alice", "bob"]

        run(main())

    def test_constructor_validation(self, dataset):
        with pytest.raises(ServingError):
            OLAPService(dataset.instance, max_concurrency=0)
        with pytest.raises(ServingError):
            OLAPService(dataset.instance, max_queue_depth=-1)
        with pytest.raises(ServingError):
            OLAPService(dataset.instance, per_tenant_limit=0)


class TestAdmission:
    """Typed rejections: nothing queues unboundedly, every refusal counted."""

    @staticmethod
    def _blocking_execute(gate: threading.Event, started: "asyncio.Queue"):
        def execute(session, query, materialize_partial):
            started.put_nowait(None)
            gate.wait(timeout=10)
            return session.execute(query, materialize_partial=materialize_partial)

        return execute

    def test_tenant_cap_rejects_with_tenant_busy(self, dataset, query):
        async def main():
            gate = threading.Event()
            async with OLAPService(
                dataset.instance,
                dataset.schema,
                max_concurrency=4,
                per_tenant_limit=2,
                publish_mode="heap",
            ) as service:
                started = asyncio.Queue()
                service._execute = self._blocking_execute(gate, started)
                inflight = [
                    asyncio.ensure_future(service.query("alice", query))
                    for _ in range(2)
                ]
                await started.get()
                await started.get()
                with pytest.raises(TenantBusyError) as info:
                    await service.query("alice", query)
                assert info.value.tenant == "alice"
                assert info.value.limit == 2
                # Another tenant is not affected by alice's cap.
                bob_future = asyncio.ensure_future(service.query("bob", query))
                await started.get()
                gate.set()
                results = await asyncio.gather(*inflight, bob_future)
                assert all(r.cube is not None for r in results)
                assert service.stats.rejected_tenant_busy == 1
                assert service.stats.served == 3

        run(main())

    def test_queue_depth_rejects_with_queue_full(self, dataset, query):
        async def main():
            gate = threading.Event()
            async with OLAPService(
                dataset.instance,
                dataset.schema,
                max_concurrency=1,
                max_queue_depth=1,
                per_tenant_limit=16,
                publish_mode="heap",
            ) as service:
                started = asyncio.Queue()
                service._execute = self._blocking_execute(gate, started)
                # One running (holds the slot), one waiting (fills the queue).
                running = asyncio.ensure_future(service.query("alice", query))
                await started.get()
                waiting = asyncio.ensure_future(service.query("alice", query))
                await asyncio.sleep(0.02)  # let it block on the semaphore
                with pytest.raises(QueueFullError) as info:
                    await service.query("alice", query)
                assert info.value.bound == 1  # the configured queue depth
                gate.set()
                await asyncio.gather(running, waiting)
                assert service.stats.rejected_queue_full == 1
                assert service.stats.served == 2

        run(main())

    def test_rejected_queries_do_not_leak_pins_or_counters(self, dataset, query):
        async def main():
            gate = threading.Event()
            async with OLAPService(
                dataset.instance,
                dataset.schema,
                max_concurrency=1,
                max_queue_depth=0,
                per_tenant_limit=1,
                publish_mode="heap",
            ) as service:
                started = asyncio.Queue()
                service._execute = self._blocking_execute(gate, started)
                running = asyncio.ensure_future(service.query("alice", query))
                await started.get()
                with pytest.raises(TenantBusyError):
                    await service.query("alice", query)
                with pytest.raises(QueueFullError):
                    await service.query("bob", query)
                gate.set()
                await running
                assert service.inflight == 0
                assert service.tenant("alice").inflight == 0
                assert service.tenant("bob").inflight == 0
                # Only the running query's pin remains accounted: one manager
                # currency pin on the current generation, nothing leaked.
                assert service.generations.current.pins == 1

        run(main())


class TestUpdates:
    def test_update_publishes_new_generation(self, dataset, query, publish_mode):
        async def main():
            async with OLAPService(
                dataset.instance, dataset.schema, publish_mode=publish_mode
            ) as service:
                before = await service.query("alice", query)
                result = await service.update(add=fact_batch("upd"))
                assert result.published
                assert result.mutations == len(fact_batch("upd"))
                assert service.current_version == result.version
                after = await service.query("alice", query)
                assert after.graph_version > before.graph_version
                assert not after.cube.same_cells(before.cube)
                assert after.cube.same_cells(
                    scratch_cube(after.generation.graph, query)
                )
                assert service.stats.publishes == 1

        run(main())

    def test_unpublished_update_stays_invisible(self, dataset, query, publish_mode):
        async def main():
            async with OLAPService(
                dataset.instance, dataset.schema, publish_mode=publish_mode
            ) as service:
                before = await service.query("alice", query)
                result = await service.update(
                    add=fact_batch("hidden"), publish=False
                )
                assert not result.published
                mid = await service.query("alice", query)
                assert mid.graph_version == before.graph_version
                # The next published update carries the deferred delta too.
                await service.update(add=fact_batch("visible"))
                after = await service.query("alice", query)
                assert after.graph_version == service.current_version
                assert after.cube.same_cells(
                    scratch_cube(after.generation.graph, query)
                )

        run(main())

    def test_remove_and_mutate_batches(self, dataset, query, publish_mode):
        async def main():
            async with OLAPService(
                dataset.instance, dataset.schema, publish_mode=publish_mode
            ) as service:
                added = fact_batch("gone")
                await service.update(add=added)
                removal = await service.update(remove=added)
                assert removal.mutations == len(added)

                def add_more(graph):
                    for triple in fact_batch("cb"):
                        graph.add(triple)

                mutated = await service.update(mutate=add_more)
                assert mutated.mutations == len(fact_batch("cb"))
                result = await service.query("alice", query)
                assert result.cube.same_cells(
                    scratch_cube(result.generation.graph, query)
                )

        run(main())

    def test_noop_update_does_not_publish(self, dataset, publish_mode):
        async def main():
            async with OLAPService(
                dataset.instance, dataset.schema, publish_mode=publish_mode
            ) as service:
                duplicate = next(iter(dataset.instance))
                result = await service.update(add=[duplicate])
                assert result.mutations == 0
                assert not result.published
                assert service.stats.publishes == 0

        run(main())


class TestLifecycle:
    def test_closed_service_rejects_reads_and_writes(self, dataset, query):
        async def main():
            service = OLAPService(dataset.instance, dataset.schema, publish_mode="heap")
            async with service:
                await service.query("alice", query)
            with pytest.raises(ServiceClosedError):
                await service.query("alice", query)
            with pytest.raises(ServiceClosedError):
                await service.update(add=fact_batch("late"))
            assert service.stats.rejected_closed == 2
            await service.aclose()  # idempotent

        run(main())

    def test_close_drains_inflight_queries(self, dataset, query):
        async def main():
            gate = threading.Event()
            service = OLAPService(dataset.instance, dataset.schema, publish_mode="heap")
            async with service:
                started = asyncio.Queue()
                real_execute = service._execute

                def slow_execute(session, q, mp):
                    started.put_nowait(None)
                    gate.wait(timeout=10)
                    return real_execute(session, q, mp)

                service._execute = slow_execute
                inflight = asyncio.ensure_future(service.query("alice", query))
                await started.get()
                closer = asyncio.ensure_future(service.aclose())
                await asyncio.sleep(0.02)
                assert service.closed  # admissions stop immediately...
                assert not closer.done()  # ...but close waits for the reader
                gate.set()
                result = await inflight  # the admitted query still answers
                await closer
                assert result.cube.same_cells(
                    scratch_cube(result.generation.graph, query)
                )

        run(main())

    def test_close_releases_generations_and_sessions(self, dataset, query):
        async def main():
            service = OLAPService(dataset.instance, dataset.schema, publish_mode="heap")
            async with service:
                await service.query("alice", query)
                await service.update(add=fact_batch("final"))
                await service.query("bob", query)
            assert service.generations.live_generations() == []
            for state in service._tenants.values():
                assert state.sessions == {}

        run(main())

    def test_service_survives_consecutive_event_loops(self, dataset, query):
        service = OLAPService(dataset.instance, dataset.schema, publish_mode="heap")

        async def one_query(tenant):
            return await service.query(tenant, query)

        first = asyncio.run(one_query("alice"))
        second = asyncio.run(one_query("alice"))
        assert first.cube.same_cells(second.cube)
        asyncio.run(service.aclose())
