"""Unit tests for the video-portal scenario generator (Example 6)."""

import pytest

from repro.rdf import EX
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen.videos import (
    VideoConfig,
    video_base_graph,
    video_dataset,
    video_schema,
    views_per_url_query,
)


class TestConfig:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            VideoConfig(videos=0).validate()
        with pytest.raises(ValueError):
            VideoConfig(postings_per_video=0.5).validate()


class TestBaseGraph:
    def test_deterministic(self):
        config = VideoConfig(videos=20, seed=3)
        assert video_base_graph(config) == video_base_graph(config)

    def test_counts(self):
        graph = video_base_graph(VideoConfig(videos=25, websites=7))
        assert len(list(graph.instances_of(EX.Video))) == 25
        assert len(list(graph.instances_of(EX.Website))) == 7

    def test_every_video_has_views_and_a_posting(self):
        graph = video_base_graph(VideoConfig(videos=15))
        for video in graph.instances_of(EX.Video):
            assert graph.value(video, EX.viewNum) is not None
            assert graph.value(video, EX.postedOn) is not None

    def test_every_website_has_url_and_browser(self):
        graph = video_base_graph(VideoConfig(videos=10, websites=5))
        for website in graph.instances_of(EX.Website):
            assert graph.value(website, EX.hasUrl) is not None
            assert graph.value(website, EX.supportsBrowser) is not None

    def test_multivalued_browsers_exist(self):
        graph = video_base_graph(VideoConfig(videos=10, websites=20, browsers_per_website=2.5, seed=2))
        multi = [
            website
            for website in graph.instances_of(EX.Website)
            if len(list(graph.objects(website, EX.supportsBrowser))) > 1
        ]
        assert multi


class TestSchemaAndQueries:
    def test_schema_vocabulary(self):
        schema = video_schema()
        for class_name in ("Video", "Website", "Url", "Browser", "ViewCount"):
            assert schema.has_class(class_name)
        for property_name in ("postedOn", "hasUrl", "supportsBrowser", "viewNum"):
            assert schema.has_property(property_name)

    def test_views_query_structure(self):
        query = views_per_url_query()
        assert query.dimension_names == ("d2",)
        assert query.aggregate.name == "sum"
        # d3 (the browser) is an existential classifier variable: the drill-in target.
        assert "d3" in {variable.name for variable in query.classifier.existential_variables()}

    def test_dataset_end_to_end(self):
        dataset = video_dataset(VideoConfig(videos=20, websites=6))
        evaluator = AnalyticalQueryEvaluator(dataset.instance)
        answer = evaluator.answer(views_per_url_query(dataset.schema))
        assert len(answer) > 0
