"""Unit tests for the seeded random distributions."""

import random

import pytest

from repro.datagen.distributions import multi_valued_count, pick_uniform, pick_zipf, zipf_index


class TestZipf:
    def test_indexes_within_bounds(self):
        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= zipf_index(rng, 10, exponent=1.0) < 10

    def test_zero_exponent_is_uniform_range(self):
        rng = random.Random(2)
        values = {zipf_index(rng, 5, exponent=0.0) for _ in range(200)}
        assert values == {0, 1, 2, 3, 4}

    def test_skew_prefers_low_indexes(self):
        rng = random.Random(3)
        samples = [zipf_index(rng, 50, exponent=1.2) for _ in range(2000)]
        low = sum(1 for sample in samples if sample < 5)
        high = sum(1 for sample in samples if sample >= 45)
        assert low > high * 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            zipf_index(random.Random(0), 0)

    def test_determinism_with_same_seed(self):
        first = [zipf_index(random.Random(7), 20) for _ in range(1)]
        second = [zipf_index(random.Random(7), 20) for _ in range(1)]
        assert first == second

    def test_pick_helpers(self):
        rng = random.Random(4)
        values = ["a", "b", "c"]
        assert pick_zipf(rng, values) in values
        assert pick_uniform(rng, values) in values


class TestMultiValuedCount:
    def test_mean_one_always_returns_one(self):
        rng = random.Random(5)
        assert all(multi_valued_count(rng, 1.0) == 1 for _ in range(100))

    def test_counts_are_bounded(self):
        rng = random.Random(6)
        assert all(1 <= multi_valued_count(rng, 3.0, maximum=4) <= 4 for _ in range(200))

    def test_larger_mean_gives_larger_average(self):
        rng = random.Random(7)
        low = sum(multi_valued_count(rng, 1.2) for _ in range(500)) / 500
        high = sum(multi_valued_count(rng, 3.0) for _ in range(500)) / 500
        assert high > low
