"""Unit tests for the configurable generic generator used by the experiments."""

import pytest

from repro.rdf import EX
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.operations import DrillIn, DrillOut
from repro.olap.session import OLAPSession
from repro.datagen.generic import (
    GenericConfig,
    generic_base_graph,
    generic_dataset,
    generic_query,
    generic_schema,
)


class TestConfig:
    def test_invalid_configs(self):
        for bad in (
            GenericConfig(facts=0),
            GenericConfig(dimensions=0),
            GenericConfig(dimension_cardinality=0),
            GenericConfig(values_per_dimension=0.5),
            GenericConfig(measures_per_fact=0.0),
        ):
            with pytest.raises(ValueError):
                bad.validate()


class TestGeneration:
    def test_deterministic(self):
        config = GenericConfig(facts=40, seed=21)
        assert generic_base_graph(config) == generic_base_graph(config)

    def test_fact_count_and_dimensions(self):
        config = GenericConfig(facts=30, dimensions=4, with_detail=False)
        graph = generic_base_graph(config)
        facts = list(graph.instances_of(EX.term("Fact")))
        assert len(facts) == 30
        for fact in facts[:5]:
            for dimension in range(4):
                assert graph.value(fact, EX.term(f"dim{dimension}")) is not None
            assert graph.value(fact, EX.measure) is not None

    def test_fanout_one_means_single_valued(self):
        config = GenericConfig(facts=50, dimensions=2, values_per_dimension=1.0, with_detail=False)
        graph = generic_base_graph(config)
        for fact in graph.instances_of(EX.term("Fact")):
            for dimension in range(2):
                assert len(list(graph.objects(fact, EX.term(f"dim{dimension}")))) == 1

    def test_larger_fanout_produces_multivalued_facts(self):
        config = GenericConfig(facts=80, dimensions=1, values_per_dimension=2.5, seed=8, with_detail=False)
        graph = generic_base_graph(config)
        multivalued = [
            fact
            for fact in graph.instances_of(EX.term("Fact"))
            if len(list(graph.objects(fact, EX.term("dim0")))) > 1
        ]
        assert multivalued

    def test_detail_chain_generated_when_enabled(self):
        config = GenericConfig(facts=20, with_detail=True)
        graph = generic_base_graph(config)
        details = list(graph.instances_of(EX.term("Detail")))
        assert details
        for detail in details[:5]:
            assert graph.value(detail, EX.detailA) is not None
            assert graph.value(detail, EX.detailB) is not None


class TestSchemaAndQuery:
    def test_schema_matches_config(self):
        config = GenericConfig(dimensions=3, with_detail=True)
        schema = generic_schema(config)
        for dimension in range(3):
            assert schema.has_property(f"dim{dimension}")
        assert schema.has_property("hasDetail") and schema.has_class("Detail")
        without_detail = generic_schema(GenericConfig(dimensions=2, with_detail=False))
        assert not without_detail.has_property("hasDetail")

    def test_query_over_subset_of_dimensions(self):
        config = GenericConfig(facts=10, dimensions=4)
        query = generic_query(config, dimensions=[0, 2])
        assert query.dimension_names == ("d0", "d2")

    def test_detail_classifier_requires_detail_data(self):
        config = GenericConfig(facts=10, with_detail=False)
        with pytest.raises(ValueError):
            generic_query(config, include_detail_in_classifier=True)

    def test_dataset_query_is_answerable(self):
        dataset = generic_dataset(GenericConfig(facts=40, dimensions=2))
        evaluator = AnalyticalQueryEvaluator(dataset.instance)
        answer = evaluator.answer(dataset.query)
        assert len(answer) > 0

    def test_rewritings_hold_on_generic_data(self):
        config = GenericConfig(facts=60, dimensions=2, values_per_dimension=1.6, seed=17)
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)
        query = generic_query(config, aggregate="sum", include_detail_in_classifier=True)
        session.execute(query)
        assert session.compare_strategies(query, DrillOut("d1"))["equal"]
        assert session.compare_strategies(query, DrillIn("da"))["equal"]
